"""Bench-obs: the observability layer's overhead, recorded as JSON.

Measures run-only events/sec on the Fig. 9 synthetic Seen Set
workload in three configurations:

- **baseline** — metrics off (the default), exactly what every
  pre-observability caller pays;
- **disabled-registry** — identical to baseline by construction (no
  wrapper is ever installed when ``metrics`` is off); measured
  separately so a future regression that sneaks instrumentation onto
  the default path shows up as a gap between the two;
- **enabled** — ``RunOptions(metrics=True)``, the full per-update
  copy/in-place classification.

The acceptance gate is on the *disabled* path: observation must be
free when off.  The enabled-path overhead is reported for tracking
but not gated — it is the price users opt into.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py [--out BENCH_obs.json]

Exit status is non-zero when the disabled-path overhead exceeds the
threshold (default 3 %).
"""

import argparse
import gc
import json
import platform
import sys
import time

from repro import api
from repro.bench.meta import bench_metadata
from repro.workloads import seen_set_trace

SEEN_SET_TEXT = """\
in i: Int

def m  := merge(y, set_empty(unit))
def yl := last(m, i)
def y  := set_add(yl, i)
def s  := set_contains(yl, i)

out s
"""

EVENTS = 600
DOMAIN = 24
BATCH_SIZE = 4_096
REPEATS = 60
THRESHOLD_PCT = 3.0


def _events():
    traces = seen_set_trace(EVENTS, DOMAIN)
    return sorted((ts, "i", value) for ts, value in traces["i"])


def _best_interleaved(thunks, repeats=REPEATS):
    """Best-of-N for several thunks, sampled round-robin, so shared-CI
    scheduling noise degrades every configuration equally."""
    best = [float("inf")] * len(thunks)
    for _ in range(repeats):
        for index, fn in enumerate(thunks):
            start = time.perf_counter()
            fn()
            best[index] = min(best[index], time.perf_counter() - start)
    return best


def measure(events):
    sink = lambda name, ts, value: None  # noqa: E731
    batch_opts = api.RunOptions(batch_size=BATCH_SIZE)
    metered_opts = api.RunOptions(batch_size=BATCH_SIZE, metrics=True)

    baseline_monitor = api.compile(SEEN_SET_TEXT)
    metered_monitor = api.compile(SEEN_SET_TEXT)
    # Warm the instrumented twin so the one-off rebuild is not timed.
    api.run(metered_monitor, events[:2], metered_opts, on_output=sink)

    thunks = [
        lambda: api.run(baseline_monitor, events, batch_opts, on_output=sink),
        lambda: api.run(baseline_monitor, events, batch_opts, on_output=sink),
        lambda: api.run(metered_monitor, events, metered_opts, on_output=sink),
    ]

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        baseline_s, disabled_s, enabled_s = _best_interleaved(thunks)
    finally:
        if gc_was_enabled:
            gc.enable()

    # Sanity: the metered run actually counted something.
    streams = metered_monitor.metrics()["streams"]
    assert streams["y"]["inplace_updates"] > 0
    assert streams["y"]["copies_performed"] == 0

    return {
        "baseline": {
            "seconds": round(baseline_s, 6),
            "events_per_sec": round(len(events) / baseline_s),
        },
        "metrics_disabled": {
            "seconds": round(disabled_s, 6),
            "events_per_sec": round(len(events) / disabled_s),
        },
        "metrics_enabled": {
            "seconds": round(enabled_s, 6),
            "events_per_sec": round(len(events) / enabled_s),
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_obs.json", help="output JSON path"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=THRESHOLD_PCT,
        help="maximum metrics-off overhead vs baseline, percent",
    )
    args = parser.parse_args(argv)

    events = _events()
    timings = measure(events)

    disabled_overhead_pct = (
        timings["metrics_disabled"]["seconds"]
        / timings["baseline"]["seconds"]
        - 1.0
    ) * 100.0
    enabled_overhead_pct = (
        timings["metrics_enabled"]["seconds"]
        / timings["baseline"]["seconds"]
        - 1.0
    ) * 100.0

    result = {
        "benchmark": "observability-overhead",
        "meta": bench_metadata(),
        "workload": "Fig. 9 synthetic Seen Set trace",
        "spec": "seen_set (paper Fig. 1)",
        "events": len(events),
        "batch_size": BATCH_SIZE,
        "repeats": REPEATS,
        "timing": "run-only api.run, best of N, interleaved",
        "python": platform.python_version(),
        "timings": timings,
        "disabled_overhead_pct": round(disabled_overhead_pct, 2),
        "enabled_overhead_pct": round(enabled_overhead_pct, 2),
        "threshold_pct": args.threshold,
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(json.dumps(result, indent=2, sort_keys=True))
    if disabled_overhead_pct > args.threshold:
        print(
            f"FAIL: metrics-off overhead {disabled_overhead_pct:.2f}% is"
            f" above the {args.threshold:.1f}% threshold",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: metrics-off overhead {disabled_overhead_pct:.2f}%"
        f" (enabled: {enabled_overhead_pct:.2f}%)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
