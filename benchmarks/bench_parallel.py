"""Bench-parallel: multi-trace worker-pool scaling, recorded as JSON.

Measures aggregate events/sec of :class:`repro.parallel.MonitorPool`
running the paper's Fig. 1 Seen Set monitor over many independent
Fig. 9 synthetic traces, at 1/2/4/8 workers, on **both** pool
backends: the supervised ``process`` backend (forked workers,
heartbeats, restart/retry machinery live but idle on the fault-free
path) and the ``thread`` backend (the GIL-bound baseline).
Compilation happens once per worker against a warm on-disk plan cache
and is excluded from the timed region (a pool is primed with one tiny
warm-up trace before the clock starts), so the curves isolate run
throughput — the quantity the worker count actually scales.

Each backend's section carries its own provenance stamp
(``pool_backend``, supervision ``retries`` observed during the timed
runs) so a chaos artifact can never be mistaken for a clean one; this
bench runs fault-free, so ``retries`` is expected to be 0.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--out BENCH_parallel.json]

Exit status is non-zero when the process backend's 4-worker speedup
over 1 worker falls below the acceptance threshold — *enforced only on
machines with at least 4 CPUs*.  On smaller machines (the curve cannot
physically materialize there) the artifact records the measurements
with ``threshold_enforced: false`` instead of fabricating a pass or
fail.
"""

import argparse
import gc
import json
import os
import sys
import tempfile
import time

from repro import api
from repro.bench.meta import bench_metadata
from repro.parallel import MonitorPool
from repro.workloads import seen_set_trace

# The paper's Figure 1 specification (Seen Set), in concrete syntax.
SEEN_SET_TEXT = """\
in i: Int

def m  := merge(y, set_empty(unit))
def yl := last(m, i)
def y  := set_add(yl, i)
def s  := set_contains(yl, i)

out s
"""

TRACES = 32
EVENTS_PER_TRACE = 2_000
DOMAIN = 64
BATCH_SIZE = 4_096
REPEATS = 3
JOB_COUNTS = (1, 2, 4, 8)
BACKENDS = ("process", "thread")
THRESHOLD = 2.5


def _traces():
    all_traces = []
    for seed in range(TRACES):
        raw = seen_set_trace(EVENTS_PER_TRACE, DOMAIN, seed=seed)
        all_traces.append(
            sorted((ts, "i", value) for ts, value in raw["i"])
        )
    return all_traces


def _measure(backend, jobs, traces, cache_dir):
    """Best-of-N wall time for one pool size; returns (seconds, retries)."""
    options = api.CompileOptions(plan_cache=cache_dir)
    pool = MonitorPool(
        SEEN_SET_TEXT,
        compile_options=options,
        jobs=jobs,
        backend=backend,
    )
    warmup = traces[0][:10]

    def run():
        result = pool.run_many(
            traces, batch_size=BATCH_SIZE, collect_outputs=False
        )
        assert result.failures == 0
        return result

    # Warm-up: fork/spawn the workers and compile (cache hit) outside
    # the timed region.
    pool.run_many([warmup], collect_outputs=False)

    best = float("inf")
    retries = 0
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
        retries += result.report.retries
    return best, retries


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_parallel.json", help="output JSON path"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=THRESHOLD,
        help="minimum process-backend 4-worker vs 1-worker events/sec"
        " ratio (enforced only when the machine has >= 4 CPUs)",
    )
    args = parser.parse_args(argv)

    traces = _traces()
    total_events = sum(len(t) for t in traces)
    cpus = os.cpu_count() or 1

    # Prime the plan cache once; every worker warm-starts from it.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    backends = {}
    try:
        with tempfile.TemporaryDirectory(prefix="plan-cache-") as cache:
            api.compile(SEEN_SET_TEXT, api.CompileOptions(plan_cache=cache))
            for backend in BACKENDS:
                curve = {}
                retries_total = 0
                for jobs in JOB_COUNTS:
                    seconds, retries = _measure(backend, jobs, traces, cache)
                    retries_total += retries
                    curve[str(jobs)] = {
                        "seconds": round(seconds, 6),
                        "events_per_sec": round(total_events / seconds),
                    }
                backends[backend] = {
                    "jobs": curve,
                    "speedup_4_vs_1": round(
                        curve["1"]["seconds"] / curve["4"]["seconds"], 2
                    ),
                    "meta": bench_metadata(
                        pool_backend=backend, retries=retries_total
                    ),
                }
    finally:
        if gc_was_enabled:
            gc.enable()

    process = backends["process"]
    speedup_4 = process["speedup_4_vs_1"]
    threshold_enforced = cpus >= 4
    result = {
        "benchmark": "parallel-pool-scaling",
        "meta": bench_metadata(),
        "workload": (
            f"{TRACES} independent Fig. 9 synthetic Seen Set traces,"
            f" {EVENTS_PER_TRACE} events each"
        ),
        "spec": "seen_set (paper Fig. 1)",
        "traces": TRACES,
        "events_total": total_events,
        "batch_size": BATCH_SIZE,
        "repeats": REPEATS,
        "timing": "run-only (workers started and compiled against a warm"
        " plan cache before the clock starts), best of N",
        "backends": backends,
        # Headline numbers are the supervised process backend, the one
        # that can actually scale pure-Python engines past the GIL.
        "jobs": process["jobs"],
        "speedup_4_vs_1": speedup_4,
        "threshold": args.threshold,
        "threshold_enforced": threshold_enforced,
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(json.dumps(result, indent=2, sort_keys=True))
    if threshold_enforced and speedup_4 < args.threshold:
        print(
            f"FAIL: process-backend 4-worker speedup {speedup_4:.2f}x is"
            f" below the {args.threshold:.1f}x threshold on a"
            f" {cpus}-CPU machine",
            file=sys.stderr,
        )
        return 1
    if threshold_enforced and speedup_4 < backends["thread"]["speedup_4_vs_1"]:
        print(
            "FAIL: process backend scales worse than the thread backend"
            f" ({speedup_4:.2f}x vs"
            f" {backends['thread']['speedup_4_vs_1']:.2f}x)",
            file=sys.stderr,
        )
        return 1
    if not threshold_enforced:
        print(
            f"note: threshold not enforced ({cpus} CPU(s) < 4);"
            f" measured process 4-vs-1 speedup {speedup_4:.2f}x,"
            f" thread {backends['thread']['speedup_4_vs_1']:.2f}x"
        )
    else:
        print(f"ok: 4 process workers are {speedup_4:.2f}x one worker")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
