"""Bench-parallel: multi-trace worker-pool scaling, recorded as JSON.

Two sections, one artifact:

* ``scaling`` — aggregate events/sec of :class:`repro.parallel.MonitorPool`
  running the paper's Fig. 1 Seen Set monitor over many independent
  Fig. 9 synthetic traces, at 1/2/4/8 workers, on **both** pool
  backends: the supervised ``process`` backend (forked workers,
  heartbeats, restart/retry machinery live but idle on the fault-free
  path) and the ``thread`` backend (the GIL-bound baseline).
* ``transport`` — the same pool on a vector-eligible spec over dense
  >= 50k-event traces, process backend, ``pipe`` vs ``shm`` trace
  transports side by side.  The shm transport packs each trace once
  into a shared-memory arena and ships only a descriptor per dispatch;
  the pipe transport pickles the full event list per dispatch.  The
  thread backend is recorded alongside for reference — it has no
  process boundary, so its transport is honestly stamped ``inline``.

Compilation happens once per worker against a warm on-disk plan cache
and is excluded from the timed region.  Every (backend, jobs,
transport) cell gets a **full warm-up round** — the complete workload
runs once untimed before the clock starts — so fork cost, page-cache
state and allocator warm-up never pollute the curves.

Each section's cells carry their own provenance stamp
(``pool_backend``, resolved ``transport``, ``payload_bytes`` moved per
data path, supervision ``retries`` observed during the timed runs) so
a chaos or degraded-transport artifact can never be mistaken for a
clean one; this bench runs fault-free, so ``retries`` is expected to
be 0.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--out BENCH_parallel.json]

Exit status is non-zero — *enforced only on machines with at least 4
CPUs* — when any of these fail:

* the process backend's 4-worker speedup over 1 worker falls below the
  scaling threshold (default 2.5x),
* shm throughput at 4 workers falls below ``--transport-threshold``
  (default 2.0x) times pipe throughput on the transport workload,
* the shm transport's own 4-vs-1 scaling is not > 1.0.

On smaller machines (the curves cannot physically materialize there)
the artifact records the measurements with ``threshold_enforced:
false`` instead of fabricating a pass or fail.
"""

import argparse
import gc
import json
import os
import sys
import tempfile
import time

from repro import api
from repro.bench.meta import bench_metadata
from repro.obs.metrics import (
    DEFAULT_REGISTRY,
    POOL_BYTES_PICKLED,
    POOL_BYTES_SHARED,
)
from repro.parallel import MonitorPool
from repro.workloads import seen_set_trace

# The paper's Figure 1 specification (Seen Set), in concrete syntax.
SEEN_SET_TEXT = """\
in i: Int

def m  := merge(y, set_empty(unit))
def yl := last(m, i)
def y  := set_add(yl, i)
def s  := set_contains(yl, i)

out s
"""

# The transport workload: vector-eligible, so per-event compute is
# cheap and the trace data path (pickle-per-dispatch vs shared arena)
# dominates the wall clock — the quantity this section isolates.
VECTOR_TEXT = """\
in i: Int

def dbl := add(i, i)

out dbl
"""

TRACES = 32
EVENTS_PER_TRACE = 2_000
DOMAIN = 64
BATCH_SIZE = 4_096
REPEATS = 3
JOB_COUNTS = (1, 2, 4, 8)
BACKENDS = ("process", "thread")
THRESHOLD = 2.5

TRANSPORT_TRACES = 8
TRANSPORT_EVENTS_PER_TRACE = 50_000
TRANSPORT_REPEATS = 2
TRANSPORT_THRESHOLD = 2.0


def _seen_set_traces():
    all_traces = []
    for seed in range(TRACES):
        raw = seen_set_trace(EVENTS_PER_TRACE, DOMAIN, seed=seed)
        all_traces.append(
            sorted((ts, "i", value) for ts, value in raw["i"])
        )
    return all_traces


def _vector_traces():
    # Dense single-stream int traces: shm packs them columnar and the
    # worker feeds the mapped columns zero-copy.
    return [
        [
            (t, "i", (t * 7 + seed) % 1_000_003)
            for t in range(TRANSPORT_EVENTS_PER_TRACE)
        ]
        for seed in range(TRANSPORT_TRACES)
    ]


def _measure(
    spec_text,
    backend,
    jobs,
    traces,
    cache_dir,
    *,
    transport="auto",
    repeats=REPEATS,
):
    """Best-of-N wall time for one pool cell.

    Returns ``(seconds, retries, resolved_transport, payload_bytes)``.
    The full workload runs once untimed first (worker fork/compile via
    the warm plan cache plus one complete data pass), then N timed
    rounds.  Payload byte counters cover the timed rounds only.
    """
    options = api.CompileOptions(plan_cache=cache_dir)
    pool = MonitorPool(
        spec_text,
        compile_options=options,
        jobs=jobs,
        backend=backend,
        transport=transport,
    )

    def run():
        result = pool.run_many(
            traces, batch_size=BATCH_SIZE, collect_outputs=False
        )
        assert result.failures == 0
        return result

    # Full warm-up round outside the timed region.
    warm = run()

    was_enabled = DEFAULT_REGISTRY.enabled
    base = DEFAULT_REGISTRY.snapshot()["counters"]
    DEFAULT_REGISTRY.enabled = True
    best = float("inf")
    retries = 0
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            result = run()
            best = min(best, time.perf_counter() - start)
            retries += result.report.retries
    finally:
        DEFAULT_REGISTRY.enabled = was_enabled
    counters = DEFAULT_REGISTRY.snapshot()["counters"]
    payload_bytes = {
        "shared": counters.get(POOL_BYTES_SHARED, 0)
        - base.get(POOL_BYTES_SHARED, 0),
        "pickled": counters.get(POOL_BYTES_PICKLED, 0)
        - base.get(POOL_BYTES_PICKLED, 0),
    }
    return best, retries, warm.transport, payload_bytes


def _curve(
    spec_text, backend, traces, cache, total_events, *, transport, repeats
):
    curve = {}
    retries_total = 0
    resolved = None
    payload = {"shared": 0, "pickled": 0}
    for jobs in JOB_COUNTS:
        seconds, retries, resolved, cell_payload = _measure(
            spec_text,
            backend,
            jobs,
            traces,
            cache,
            transport=transport,
            repeats=repeats,
        )
        retries_total += retries
        payload["shared"] += cell_payload["shared"]
        payload["pickled"] += cell_payload["pickled"]
        curve[str(jobs)] = {
            "seconds": round(seconds, 6),
            "events_per_sec": round(total_events / seconds),
        }
    return {
        "jobs": curve,
        "speedup_4_vs_1": round(
            curve["1"]["seconds"] / curve["4"]["seconds"], 2
        ),
        "meta": bench_metadata(
            pool_backend=backend,
            retries=retries_total,
            transport=resolved,
            payload_bytes=payload,
        ),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_parallel.json", help="output JSON path"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=THRESHOLD,
        help="minimum process-backend 4-worker vs 1-worker events/sec"
        " ratio (enforced only when the machine has >= 4 CPUs)",
    )
    parser.add_argument(
        "--transport-threshold",
        type=float,
        default=TRANSPORT_THRESHOLD,
        help="minimum shm vs pipe events/sec ratio at 4 process workers"
        " on the transport workload (enforced only when the machine has"
        " >= 4 CPUs)",
    )
    args = parser.parse_args(argv)

    traces = _seen_set_traces()
    total_events = sum(len(t) for t in traces)
    vec_traces = _vector_traces()
    vec_total = sum(len(t) for t in vec_traces)
    cpus = os.cpu_count() or 1

    # Prime the plan caches once; every worker warm-starts from them.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    backends = {}
    transport_curves = {}
    try:
        with tempfile.TemporaryDirectory(prefix="plan-cache-") as cache:
            api.compile(SEEN_SET_TEXT, api.CompileOptions(plan_cache=cache))
            api.compile(VECTOR_TEXT, api.CompileOptions(plan_cache=cache))
            for backend in BACKENDS:
                backends[backend] = _curve(
                    SEEN_SET_TEXT,
                    backend,
                    traces,
                    cache,
                    total_events,
                    transport="auto",
                    repeats=REPEATS,
                )
            for transport in ("pipe", "shm"):
                transport_curves[transport] = _curve(
                    VECTOR_TEXT,
                    "process",
                    vec_traces,
                    cache,
                    vec_total,
                    transport=transport,
                    repeats=TRANSPORT_REPEATS,
                )
            # The thread backend has no process boundary; recorded for
            # reference, stamped with its honest "inline" transport.
            transport_curves["thread"] = _curve(
                VECTOR_TEXT,
                "thread",
                vec_traces,
                cache,
                vec_total,
                transport="auto",
                repeats=TRANSPORT_REPEATS,
            )
    finally:
        if gc_was_enabled:
            gc.enable()

    process = backends["process"]
    speedup_4 = process["speedup_4_vs_1"]
    shm_vs_pipe_4 = round(
        transport_curves["shm"]["jobs"]["4"]["events_per_sec"]
        / transport_curves["pipe"]["jobs"]["4"]["events_per_sec"],
        2,
    )
    shm_speedup_4 = transport_curves["shm"]["speedup_4_vs_1"]
    threshold_enforced = cpus >= 4
    result = {
        "benchmark": "parallel-pool-scaling",
        "meta": bench_metadata(),
        "workload": (
            f"{TRACES} independent Fig. 9 synthetic Seen Set traces,"
            f" {EVENTS_PER_TRACE} events each"
        ),
        "spec": "seen_set (paper Fig. 1)",
        "traces": TRACES,
        "events_total": total_events,
        "batch_size": BATCH_SIZE,
        "repeats": REPEATS,
        "timing": "run-only (workers started and compiled against a warm"
        " plan cache, one full untimed warm-up round per cell), best of N",
        "backends": backends,
        # Headline numbers are the supervised process backend, the one
        # that can actually scale pure-Python engines past the GIL.
        "jobs": process["jobs"],
        "speedup_4_vs_1": speedup_4,
        "threshold": args.threshold,
        "threshold_enforced": threshold_enforced,
        "transport": {
            "workload": (
                f"{TRANSPORT_TRACES} dense single-stream int traces,"
                f" {TRANSPORT_EVENTS_PER_TRACE} events each"
            ),
            "spec": "dbl := add(i, i) (vector-eligible)",
            "traces": TRANSPORT_TRACES,
            "events_total": vec_total,
            "repeats": TRANSPORT_REPEATS,
            "curves": transport_curves,
            "shm_vs_pipe_4_workers": shm_vs_pipe_4,
            "shm_speedup_4_vs_1": shm_speedup_4,
            "threshold": args.transport_threshold,
            "threshold_enforced": threshold_enforced,
        },
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(json.dumps(result, indent=2, sort_keys=True))
    failed = False
    if threshold_enforced and speedup_4 < args.threshold:
        print(
            f"FAIL: process-backend 4-worker speedup {speedup_4:.2f}x is"
            f" below the {args.threshold:.1f}x threshold on a"
            f" {cpus}-CPU machine",
            file=sys.stderr,
        )
        failed = True
    if threshold_enforced and speedup_4 < backends["thread"]["speedup_4_vs_1"]:
        print(
            "FAIL: process backend scales worse than the thread backend"
            f" ({speedup_4:.2f}x vs"
            f" {backends['thread']['speedup_4_vs_1']:.2f}x)",
            file=sys.stderr,
        )
        failed = True
    if threshold_enforced and shm_vs_pipe_4 < args.transport_threshold:
        print(
            f"FAIL: shm transport is {shm_vs_pipe_4:.2f}x pipe at 4"
            f" workers, below the {args.transport_threshold:.1f}x"
            f" threshold on a {cpus}-CPU machine",
            file=sys.stderr,
        )
        failed = True
    if threshold_enforced and shm_speedup_4 <= 1.0:
        print(
            f"FAIL: shm transport 4-vs-1 speedup {shm_speedup_4:.2f}x"
            " does not scale",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    if not threshold_enforced:
        print(
            f"note: thresholds not enforced ({cpus} CPU(s) < 4);"
            f" measured process 4-vs-1 speedup {speedup_4:.2f}x,"
            f" thread {backends['thread']['speedup_4_vs_1']:.2f}x,"
            f" shm-vs-pipe at 4 workers {shm_vs_pipe_4:.2f}x"
        )
    else:
        print(
            f"ok: 4 process workers are {speedup_4:.2f}x one worker;"
            f" shm is {shm_vs_pipe_4:.2f}x pipe at 4 workers"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
