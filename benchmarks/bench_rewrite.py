"""Bench-rewrite: what the spec-level rewrite optimizer buys, as JSON.

For every paper-figure spec, every Table 1 scenario and the
deliberately de-normalized fixtures, records:

- certified mutable-variable count before/after the rewrite pass;
- stream count before/after;
- per-rule fired counters (``OPT00x``);
- total ``copies_performed`` over a metered run with and without
  ``rewrite=True`` — outputs are asserted byte-identical first.

The acceptance gates mirror the PR's claims: the rewrite never
*lowers* a certified mutable count and never *adds* copies on any
spec, and on the de-normalized fixtures the mutable count strictly
rises (or copies strictly drop).

Usage::

    PYTHONPATH=src python benchmarks/bench_rewrite.py [--out BENCH_rewrite.json]
"""

import argparse
import json
import platform
import sys

from repro import api
from repro.bench.meta import bench_metadata
from repro.bench.table1 import scenarios
from repro.compiler import freeze
from repro.lang import check_types, flatten
from repro.opt import optimize_flat
from repro.speclib import (
    DENORMALIZED,
    fig1_spec,
    fig4_lower_spec,
    fig4_upper_spec,
    map_window,
    queue_window,
    seen_set,
)
from repro.workloads import seen_set_trace, window_trace

TRACE_LENGTH = 400
TABLE1_SCALE = 400
WINDOW_SIZE = 16


def _denorm_trace(spec):
    return {
        name: [(t, t % 7) for t in range(1, TRACE_LENGTH)]
        for name in spec.inputs
    }


def workloads():
    """name -> (spec, inputs), the full benchmark population."""
    population = {
        "fig1": (fig1_spec(), seen_set_trace(TRACE_LENGTH, WINDOW_SIZE)),
        "fig4_upper": (fig4_upper_spec(), None),
        "fig4_lower": (fig4_lower_spec(), None),
        "seen_set": (seen_set(), seen_set_trace(TRACE_LENGTH, WINDOW_SIZE)),
        "map_window": (map_window(WINDOW_SIZE), window_trace(TRACE_LENGTH)),
        "queue_window": (
            queue_window(WINDOW_SIZE),
            window_trace(TRACE_LENGTH),
        ),
    }
    for name, (spec, inputs) in population.items():
        if inputs is None:
            population[name] = (spec, _denorm_trace(spec))
    for name, (spec, inputs) in scenarios(TABLE1_SCALE).items():
        population[f"table1:{name}"] = (spec, inputs)
    for name, factory in DENORMALIZED.items():
        spec = factory()
        population[f"denorm:{name}"] = (spec, _denorm_trace(spec))
    return population


def copies_for(spec, inputs, rewrite):
    monitor = api.compile(
        spec, api.CompileOptions(optimize=True, rewrite=rewrite)
    )
    outputs = []
    report = api.run(
        monitor,
        inputs,
        api.RunOptions(metrics=True),
        on_output=lambda n, t, v: outputs.append((n, t, freeze(v))),
    )
    streams = (report.metrics or {}).get("streams", {})
    return sum(s["copies_performed"] for s in streams.values()), outputs


def measure(name, spec, inputs):
    flat = flatten(spec)
    check_types(flat)
    result = optimize_flat(flat)
    copies_before, out_before = copies_for(spec, inputs, rewrite=False)
    copies_after, out_after = copies_for(spec, inputs, rewrite=True)
    if out_before != out_after:
        raise AssertionError(
            f"{name}: optimized and unoptimized outputs disagree"
        )
    return {
        "streams_before": result.streams_before,
        "streams_after": result.streams_after,
        "mutable_before": result.mutable_before,
        "mutable_after": result.mutable_after,
        "rewrites_applied": len(result.applied),
        "rewrites_rejected": len(result.rejected),
        "fired": dict(result.fired),
        "copies_before": copies_before,
        "copies_after": copies_after,
    }


def gates(results):
    """Return a list of failure strings (empty = all claims hold)."""
    failures = []
    strict_gains = 0
    for name, row in results.items():
        if (
            row["mutable_before"] is not None
            and row["mutable_after"] < row["mutable_before"]
        ):
            failures.append(f"{name}: mutable count demoted")
        if row["copies_after"] > row["copies_before"]:
            failures.append(f"{name}: rewrite added copies")
        gained = (
            row["mutable_before"] is not None
            and row["mutable_after"] > row["mutable_before"]
        )
        if gained or row["copies_after"] < row["copies_before"]:
            strict_gains += 1
    if strict_gains < 3:
        failures.append(
            f"only {strict_gains} specs strictly improved (need >= 3)"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_rewrite.json", help="output JSON path"
    )
    args = parser.parse_args(argv)

    results = {
        name: measure(name, spec, inputs)
        for name, (spec, inputs) in workloads().items()
    }
    failures = gates(results)

    fired_total = {}
    for row in results.values():
        for code, count in row["fired"].items():
            fired_total[code] = fired_total.get(code, 0) + count

    payload = {
        "benchmark": "rewrite-optimizer",
        "meta": bench_metadata(),
        "workload": (
            "paper figures + Table 1 scenarios + de-normalized fixtures"
        ),
        "trace_length": TRACE_LENGTH,
        "python": platform.python_version(),
        "results": results,
        "fired_total": fired_total,
        "failures": failures,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(json.dumps(payload, indent=2, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"ok: {len(results)} specs,"
        f" {sum(fired_total.values())} rewrites fired, claims hold"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
