"""Bench-smoke: the four batch-engine quadrants, recorded as JSON.

Measures end-to-end events/sec — ``repro.api.compile`` from
specification text plus ``repro.api.run`` — for every combination of
execution path (per-event ``push`` loop vs ``feed_batch``) and plan
cache state (cold compile vs warm text-keyed hit), on the paper's
Fig. 9 synthetic Seen Set workload.  The workload is deliberately
small: the quadrants model *repeated CLI/server invocations*, where
compilation cost is paid per invocation and the plan cache earns its
keep.  Run-only throughputs (compile excluded) are reported alongside
so neither effect hides the other.

Usage::

    PYTHONPATH=src python benchmarks/bench_smoke.py [--out BENCH_batch.json]

Exit status is non-zero when the headline ratio (batch + warm cache
vs per-event cold) falls below the acceptance threshold, so CI fails
loudly if either the batch path or the cache regresses.
"""

import argparse
import gc
import json
import platform
import sys
import tempfile
import time

from repro import api
from repro.bench.meta import bench_metadata
from repro.workloads import seen_set_trace

# The paper's Figure 1 specification (Seen Set), in concrete syntax —
# the monitor benchmarked on the Fig. 9 synthetic workload.
SEEN_SET_TEXT = """\
in i: Int

def m  := merge(y, set_empty(unit))
def yl := last(m, i)
def y  := set_add(yl, i)
def s  := set_contains(yl, i)

out s
"""

EVENTS = 600
DOMAIN = 24
BATCH_SIZE = 4_096
REPEATS = 40
THRESHOLD = 3.0


def _events():
    traces = seen_set_trace(EVENTS, DOMAIN)
    return sorted((ts, "i", value) for ts, value in traces["i"])


def _best(fn, repeats=REPEATS):
    """Best-of-N wall time: the standard microbenchmark estimator."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _best_interleaved(thunks, repeats=REPEATS):
    """Best-of-N for several thunks, sampled round-robin.

    Interleaving means a noisy scheduling window (CI machines share
    cores) degrades every measurement equally instead of poisoning
    whichever quadrant happened to be running.
    """
    best = [float("inf")] * len(thunks)
    for _ in range(repeats):
        for index, fn in enumerate(thunks):
            start = time.perf_counter()
            fn()
            best[index] = min(best[index], time.perf_counter() - start)
    return best


def measure(events, cache_dir):
    sink = lambda name, ts, value: None  # noqa: E731
    # Pinned to codegen: this benchmark tracks the scalar batch path and
    # the text-keyed cache fast path; engine="auto" would re-resolve per
    # numpy availability and make the series incomparable over time.
    cold_opts = api.CompileOptions(engine="codegen")
    warm_opts = api.CompileOptions(engine="codegen", plan_cache=cache_dir)
    batch_opts = api.RunOptions(batch_size=BATCH_SIZE)

    # Prime the cache, and assert the hit is observable.
    api.compile(SEEN_SET_TEXT, warm_opts)
    assert api.compile(SEEN_SET_TEXT, warm_opts).plan_cache_hit is True

    labels = ["per_event_cold", "per_event_warm", "batch_cold", "batch_warm"]
    configs = [
        (cold_opts, None),
        (warm_opts, None),
        (cold_opts, batch_opts),
        (warm_opts, batch_opts),
    ]

    def invocation(compile_opts, run_opts):
        def run():
            monitor = api.compile(SEEN_SET_TEXT, compile_opts)
            api.run(monitor, events, run_opts, on_output=sink)

        return run

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        times = _best_interleaved(
            [invocation(c, r) for c, r in configs]
        )
    finally:
        if gc_was_enabled:
            gc.enable()
    quadrants = {
        label: {
            "seconds": round(seconds, 6),
            "events_per_sec": round(len(events) / seconds),
        }
        for label, seconds in zip(labels, times)
    }

    compile_ms = {
        "cold": round(
            _best(lambda: api.compile(SEEN_SET_TEXT, cold_opts)) * 1e3, 3
        ),
        "warm_cache_hit": round(
            _best(lambda: api.compile(SEEN_SET_TEXT, warm_opts)) * 1e3, 3
        ),
    }

    # Run-only throughput (compile outside the timed region), so the
    # batch-path speedup is visible independently of the cache.
    monitor = api.compile(SEEN_SET_TEXT, cold_opts)
    run_only = {
        "per_event_events_per_sec": round(
            len(events)
            / _best(lambda: api.run(monitor, events, on_output=sink))
        ),
        "batch_events_per_sec": round(
            len(events)
            / _best(
                lambda: api.run(monitor, events, batch_opts, on_output=sink)
            )
        ),
    }
    return quadrants, compile_ms, run_only


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_batch.json", help="output JSON path"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=THRESHOLD,
        help="minimum batch_warm / per_event_cold events/sec ratio",
    )
    args = parser.parse_args(argv)

    events = _events()
    with tempfile.TemporaryDirectory(prefix="plan-cache-") as cache_dir:
        quadrants, compile_ms, run_only = measure(events, cache_dir)

    ratio = (
        quadrants["per_event_cold"]["seconds"]
        / quadrants["batch_warm"]["seconds"]
    )
    result = {
        "benchmark": "batch-engine-smoke",
        "meta": bench_metadata(),
        "workload": "Fig. 9 synthetic Seen Set trace",
        "spec": "seen_set (paper Fig. 1)",
        "events": len(events),
        "batch_size": BATCH_SIZE,
        "repeats": REPEATS,
        "timing": "end-to-end api.compile(text) + api.run, best of N",
        "python": platform.python_version(),
        "quadrants": quadrants,
        "compile_ms": compile_ms,
        "run_only": run_only,
        "speedup_batch_warm_vs_per_event_cold": round(ratio, 2),
        "threshold": args.threshold,
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(json.dumps(result, indent=2, sort_keys=True))
    if ratio < args.threshold:
        print(
            f"FAIL: batch+warm vs per-event cold ratio {ratio:.2f}x is"
            f" below the {args.threshold:.1f}x threshold",
            file=sys.stderr,
        )
        return 1
    print(f"ok: batch+warm is {ratio:.2f}x per-event cold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
