"""Bench-vector: columnar engine throughput vs the plan engine.

Measures run-only events/sec (compile excluded, monitors built once
outside the timed region) for the plan engine's batch path against the
vector engine's two ingestion paths — row batches (``feed_batch``) and
columnar handoff (``feed_columns``) — on the paper's Fig. 9 synthetic
trace and the Fig. 10 trace-length scaling sweep.

Honesty note, recorded in the JSON as well: the paper's Fig. 9/10
*monitor* is the Seen Set, whose set-typed family is vector-ineligible
by design — under ``engine="vector"`` it takes the certified per-family
fallback and runs at plan speed (measured here as
``seen_set_fallback``).  The columnar speedup is therefore measured on
a vector-eligible scalar alert chain driven by the *same* Fig. 9/10
synthetic traces, which is the workload shape the vector engine exists
for.  The ≥10x gate applies to the columnar-ingestion headline and is
enforced only when numpy is importable (``threshold_enforced``).

Usage::

    PYTHONPATH=src python benchmarks/bench_vector.py [--out BENCH_vector.json]
"""

import argparse
import gc
import json
import platform
import sys
import time

from repro import api
from repro.bench.meta import bench_metadata
from repro.compiler.kernels import numpy_available
from repro.workloads import seen_set_trace

# Vector-eligible scalar alert chain over the Fig. 9/10 traces: a
# last/sub feed-forward chain with a sparse filtered alert output.
# seen_set_trace(length, size=200) draws values from [0, 400).
SCALAR_ALERT_TEXT = """\
in i: Int

def prev  := last(i, i)
def diff  := sub(i, prev)
def s     := add(diff, i)
def spike := filter(s, gt(s, 700))

out spike
"""

SET_SIZE = 200
FIG9_EVENTS = 50_000
FIG10_LENGTHS = (5_000, 20_000, 50_000)
BATCH_SIZE = 4_096
REPEATS = 5
THRESHOLD = 10.0


def _trace(length):
    events = seen_set_trace(length, SET_SIZE)["i"]
    rows = [(ts, "i", value) for ts, value in events]
    ts_column = [ts for ts, _value in events]
    value_column = [value for _ts, value in events]
    return rows, ts_column, value_column


def _best(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_pair(spec_text, length):
    """plan feed_batch vs vector feed_batch / feed_columns, run-only."""
    rows, ts_column, value_column = _trace(length)
    sink = lambda name, ts, value: None  # noqa: E731
    run_opts = api.RunOptions(batch_size=BATCH_SIZE)
    plan = api.compile(spec_text, api.CompileOptions(engine="plan"))
    vector = api.compile(spec_text, api.CompileOptions(engine="vector"))
    assert vector.engine_resolved == "vector"

    columns = {"i": value_column}
    timings = {
        "plan_feed_batch": _best(
            lambda: api.run(plan, rows, run_opts, on_output=sink)
        ),
        "vector_feed_batch": _best(
            lambda: api.run(vector, rows, run_opts, on_output=sink)
        ),
        "vector_feed_columns": _best(
            lambda: vector.feed_columns(ts_column, columns, on_output=sink)
        ),
    }
    result = {
        "events": length,
        "events_per_sec": {
            label: round(length / seconds)
            for label, seconds in timings.items()
        },
        "speedup_feed_batch": round(
            timings["plan_feed_batch"] / timings["vector_feed_batch"], 2
        ),
        "speedup_feed_columns": round(
            timings["plan_feed_batch"] / timings["vector_feed_columns"], 2
        ),
    }
    return result


def measure_seen_set_fallback(length=10_000):
    """The paper's own monitor: ineligible, must run at plan speed."""
    from repro.speclib import seen_set

    inputs = seen_set_trace(length, SET_SIZE)
    rows = sorted(
        (ts, name, value)
        for name, trace in inputs.items()
        for ts, value in trace
    )
    sink = lambda name, ts, value: None  # noqa: E731
    run_opts = api.RunOptions(batch_size=BATCH_SIZE)
    plan = api.compile(seen_set(), api.CompileOptions(engine="plan"))
    vector = api.compile(seen_set(), api.CompileOptions(engine="vector"))
    fallback = [d.code for d in vector.diagnostics()]
    plan_s = _best(lambda: api.run(plan, rows, run_opts, on_output=sink), 3)
    vec_s = _best(lambda: api.run(vector, rows, run_opts, on_output=sink), 3)
    return {
        "events": length,
        "diagnostics": fallback,
        "plan_events_per_sec": round(length / plan_s),
        "vector_events_per_sec": round(length / vec_s),
        "speedup": round(plan_s / vec_s, 2),
        "note": "set-typed family is vector-ineligible; the vector"
        " engine takes the certified plan fallback, so ~1.0x here"
        " is correct behavior, not a regression",
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_vector.json", help="output JSON path"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=THRESHOLD,
        help="minimum columnar-ingestion speedup vs the plan engine",
    )
    args = parser.parse_args(argv)

    enforced = numpy_available()
    result = {
        "benchmark": "vector-engine",
        "meta": bench_metadata(),
        "python": platform.python_version(),
        "spec": "scalar alert chain (last/sub/add/gt/filter)",
        "workload": "Fig. 9 synthetic trace + Fig. 10 length sweep"
        " (seen_set_trace, set size 200)",
        "substitution_note": "the paper's Seen Set monitor itself is"
        " vector-ineligible (set-typed) and measured separately as"
        " seen_set_fallback; the speedup target applies to the"
        " vector-eligible scalar chain on the same traces",
        "batch_size": BATCH_SIZE,
        "repeats": REPEATS,
        "timing": "run-only, best of N (compile excluded; monitors"
        " built once outside the timed region)",
        "threshold": args.threshold,
        "threshold_enforced": enforced,
    }
    if not enforced:
        result["skipped"] = "numpy not importable; vector engine absent"
        with open(args.out, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(json.dumps(result, indent=2, sort_keys=True))
        print("ok: numpy absent, threshold not enforced")
        return 0

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        fig9 = measure_pair(SCALAR_ALERT_TEXT, FIG9_EVENTS)
        fig10 = {
            str(length): measure_pair(SCALAR_ALERT_TEXT, length)
            for length in FIG10_LENGTHS
        }
        fallback = measure_seen_set_fallback()
    finally:
        if gc_was_enabled:
            gc.enable()

    headline = fig9["speedup_feed_columns"]
    result.update(
        {
            "fig9": fig9,
            "fig10_scaling": fig10,
            "seen_set_fallback": fallback,
            "headline_speedup_columnar": headline,
        }
    )
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(result, indent=2, sort_keys=True))

    if headline < args.threshold:
        print(
            f"FAIL: columnar ingestion is {headline:.2f}x the plan"
            f" engine, below the {args.threshold:.1f}x threshold",
            file=sys.stderr,
        )
        return 1
    print(f"ok: columnar ingestion is {headline:.2f}x the plan engine")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
