"""Bench-window: O(1) delta maintenance vs the O(window) fold fallback.

Measures run-only events/sec for sliding windows whose aggregate is
maintained by the invertible **delta** path (SUM: add the new event,
subtract the evicted prefix) against the library's own **fold**
fallback (MAX: recompute over the live queue), at growing window
sizes.  Both sides share identical queue maintenance — certified
mutable, zero structural copies — so the ratio isolates exactly the
aggregation step the paper's invertibility distinction is about.

Honesty note, recorded in the JSON as well: SUM cannot be forced onto
the fold path (invertible aggregates always take the delta path — that
is the feature), so the fold comparator is MAX, the library's real
recompute fallback over the same queues.  The ≥3x gate applies to the
largest measured window; at tiny windows the fold is legitimately
cheap and the ratio approaches 1x.

A secondary section measures the vector engine's prefix-scan lowering
of ``running_aggregate`` (seeded ``np.add.accumulate``) against the
scalar plan loop; it is reported but not gated, and skipped without
numpy.

Usage::

    PYTHONPATH=src python benchmarks/bench_window.py [--out BENCH_window.json]
"""

import argparse
import gc
import json
import platform
import sys
import time

from repro import api
from repro.bench.meta import bench_metadata
from repro.compiler.kernels import numpy_available
from repro.speclib import running_aggregate, sliding_window

EVENTS = 10_000
PERIODS = (16, 128, 512)
REPEATS = 3
THRESHOLD = 3.0
SCAN_EVENTS = 50_000
BATCH_SIZE = 4_096


def _trace(length):
    # Dense timestamps: every event both enters and (eventually) leaves
    # the window, so the delta and fold paths do maximal honest work.
    return [(t, "x", (t * 37) % 100) for t in range(1, length + 1)]


def _best(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_window_pair(period, length=EVENTS):
    """Sliding SUM (delta) vs sliding MAX (fold) at one window size."""
    rows = _trace(length)
    sink = lambda name, ts, value: None  # noqa: E731
    delta = api.compile(
        sliding_window("sum", period=period),
        api.CompileOptions(engine="codegen"),
    )
    fold = api.compile(
        sliding_window("max", period=period),
        api.CompileOptions(engine="codegen"),
    )
    delta_s = _best(lambda: api.run(delta, rows, on_output=sink))
    fold_s = _best(lambda: api.run(fold, rows, on_output=sink))

    # Path certification on the instrumented twin: the delta spec must
    # never recompute, the fold spec must recompute once per event, and
    # both keep the queues copy-free.
    report = api.run(delta, rows, api.RunOptions(metrics=True), on_output=sink)
    counters = report.metrics["counters"]
    assert counters.get("window.delta_updates") == length
    assert "window.recomputes" not in counters
    queue_stats = report.metrics["streams"]["tq"]
    assert queue_stats["copies_performed"] == 0
    fold_report = api.run(
        fold, rows, api.RunOptions(metrics=True), on_output=sink
    )
    assert fold_report.metrics["counters"].get("window.recomputes") == length

    return {
        "period": period,
        "events": length,
        "delta_events_per_sec": round(length / delta_s),
        "fold_events_per_sec": round(length / fold_s),
        "speedup_delta_vs_fold": round(fold_s / delta_s, 2),
        "queue_copies_performed": queue_stats["copies_performed"],
    }


def measure_scan(length=SCAN_EVENTS):
    """Vector prefix scan vs the scalar plan loop (reported, ungated)."""
    rows = [(t, "x", (t * 13) % 1000 - 500) for t in range(1, length + 1)]
    sink = lambda name, ts, value: None  # noqa: E731
    run_opts = api.RunOptions(batch_size=BATCH_SIZE)
    spec = running_aggregate("sum")
    plan = api.compile(spec, api.CompileOptions(engine="plan"))
    vector = api.compile(spec, api.CompileOptions(engine="vector"))
    assert vector.engine_resolved == "vector"
    plan_s = _best(lambda: api.run(plan, rows, run_opts, on_output=sink))
    vec_s = _best(lambda: api.run(vector, rows, run_opts, on_output=sink))
    return {
        "events": length,
        "batch_size": BATCH_SIZE,
        "plan_events_per_sec": round(length / plan_s),
        "vector_scan_events_per_sec": round(length / vec_s),
        "speedup": round(plan_s / vec_s, 2),
        "note": "running_aggregate('sum') recognized as a prefix-scan"
        " triple and executed as one seeded np.add.accumulate per batch",
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_window.json", help="output JSON path"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=THRESHOLD,
        help="minimum delta-vs-fold speedup at the largest window",
    )
    args = parser.parse_args(argv)

    result = {
        "benchmark": "window-library",
        "meta": bench_metadata(),
        "python": platform.python_version(),
        "spec": "sliding_window(sum) [delta] vs sliding_window(max)"
        " [fold], codegen engine",
        "workload": f"dense synthetic trace, {EVENTS} events, window"
        f" periods {list(PERIODS)}",
        "substitution_note": "SUM always takes the delta path"
        " (invertible by design), so the fold side is MAX — the"
        " library's real recompute fallback over identical certified-"
        "mutable queues; the ratio isolates the aggregation step",
        "repeats": REPEATS,
        "timing": "run-only, best of N (compile excluded; monitors"
        " built once outside the timed region)",
        "threshold": args.threshold,
        "threshold_enforced": True,
    }

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        sweep = {
            str(period): measure_window_pair(period) for period in PERIODS
        }
        scan = measure_scan() if numpy_available() else {
            "skipped": "numpy not importable; vector engine absent"
        }
    finally:
        if gc_was_enabled:
            gc.enable()

    headline = sweep[str(max(PERIODS))]["speedup_delta_vs_fold"]
    result.update(
        {
            "window_sweep": sweep,
            "vector_scan": scan,
            "headline_speedup_delta": headline,
        }
    )
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(result, indent=2, sort_keys=True))

    if headline < args.threshold:
        print(
            f"FAIL: delta maintenance is {headline:.2f}x the fold"
            f" fallback at period {max(PERIODS)}, below the"
            f" {args.threshold:.1f}x threshold",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: delta maintenance is {headline:.2f}x the fold fallback"
        f" at period {max(PERIODS)}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
