"""Shared fixtures for the benchmark suite.

Benchmarks time the *monitor run* only: specs are compiled and traces
materialized once per parametrization, outside the timed region.
"""

import pytest

from repro.bench.runners import flatten_inputs
from repro.compiler import compile_spec, counting_callback


def make_runner(spec, inputs, **compile_kwargs):
    """Return a zero-argument callable that runs one fresh monitor."""
    compiled = compile_spec(spec, **compile_kwargs)
    events = flatten_inputs(inputs)

    def run():
        on_output, _ = counting_callback()
        monitor = compiled.new_monitor(on_output)
        push = monitor.push
        for ts, name, value in events:
            push(name, ts, value)
        monitor.finish()

    return run


@pytest.fixture(scope="session")
def runner_factory():
    return make_runner
