"""Shared fixtures for the benchmark suite.

Benchmarks time the *monitor run* only: specs are compiled and traces
materialized once per parametrization, outside the timed region.
"""

import pytest

from repro.bench.runners import flatten_inputs
from repro.compiler import build_compiled_spec, counting_callback


def make_runner(spec, inputs, batch_size=None, **compile_kwargs):
    """Return a zero-argument callable that runs one fresh monitor.

    ``batch_size`` switches the timed loop to the monitor's
    ``feed_batch`` hot path (chunks are pre-materialized outside the
    timed region); the remaining keywords go to the compiler.
    """
    compiled = build_compiled_spec(spec, **compile_kwargs)
    events = flatten_inputs(inputs)
    batches = None
    if batch_size is not None:
        from repro.semantics.traceio import batch_events

        batches = list(batch_events(events, batch_size))

    def run():
        on_output, _ = counting_callback()
        monitor = compiled.new_monitor(on_output)
        if batches is not None:
            feed = monitor.feed_batch
            for batch in batches:
                feed(batch)
        else:
            push = monitor.push
            for ts, name, value in events:
                push(name, ts, value)
        monitor.finish()

    return run


@pytest.fixture(scope="session")
def runner_factory():
    return make_runner
