"""Ablation: mutable vs persistent vs naive-copy collections.

Justifies the paper's combination of approaches: persistent structures
(approach 2) already beat naive copying, and the static analysis
(approach 3) adds in-place updates on top.  Expected order per spec:
optimized < non-optimized < copying for set/map-dominated monitors.
"""

import pytest

from repro.speclib import seen_set, spectrum_calculation
from repro.structures import Backend
from repro.workloads import power_trace, seen_set_trace

from conftest import make_runner

MODE_KWARGS = {
    "mutable": {"optimize": True},
    "persistent": {"optimize": False},
    "copying": {"backend_override": Backend.COPYING},
}


@pytest.mark.parametrize("mode", list(MODE_KWARGS))
def test_seen_set_backends(benchmark, mode):
    inputs = seen_set_trace(3_000, 200)
    run = make_runner(seen_set(), inputs, **MODE_KWARGS[mode])
    benchmark.group = "ablation backends: seen_set/medium"
    benchmark(run)


@pytest.mark.parametrize("mode", list(MODE_KWARGS))
def test_spectrum_backends(benchmark, mode):
    inputs = power_trace(3_000)
    run = make_runner(spectrum_calculation(), inputs, **MODE_KWARGS[mode])
    benchmark.group = "ablation backends: spectrum"
    benchmark(run)
