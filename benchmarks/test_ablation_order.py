"""Ablation: optimal vs pessimal translation order.

The contribution the paper claims over prior fixed-schedule work
(§IV-E step 4 / Fig. 7): choosing the order that satisfies the
read-before-write constraints keeps the aggregates mutable; a valid but
badly chosen order forces them persistent.
"""

import pytest

from repro.bench.ablation import (
    compile_with_order,
    mutable_under_order,
    pessimal_order,
)
from repro.analysis import analyze_mutability
from repro.bench.runners import flatten_inputs
from repro.compiler import counting_callback
from repro.lang import check_types, flatten
from repro.speclib import seen_set
from repro.workloads import seen_set_trace


def order_runner(variant):
    flat = flatten(seen_set())
    check_types(flat)
    result = analyze_mutability(flat)
    if variant == "optimal":
        order, mutable = result.order, result.mutable
    else:
        order = pessimal_order(flat, result)
        mutable = mutable_under_order(result, order)
    compiled = compile_with_order(flat, order, mutable)
    events = flatten_inputs(seen_set_trace(3_000, 200))

    def run():
        on_output, _ = counting_callback()
        monitor = compiled.new_monitor(on_output)
        for ts, name, value in events:
            monitor.push(name, ts, value)
        monitor.finish()

    return run


@pytest.mark.parametrize("variant", ["optimal", "pessimal"])
def test_order_ablation(benchmark, variant):
    benchmark.group = "ablation order: seen_set/medium"
    benchmark(order_runner(variant))
