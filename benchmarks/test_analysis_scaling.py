"""Analysis scaling: compile time over specification size.

The hard steps (implication checking, optimal ordering) are coNP/NP-
complete in theory; this benchmark shows they behave near-linearly on
realistically-shaped specifications — N independent accumulator
families plus cross-family scalar reads — supporting the paper's
"no unusual long compilation time" claim beyond the six fixed specs.
"""

import pytest

from repro.compiler import compile_spec
from repro.lang import INT, Last, Lift, Merge, Specification, UnitExpr, Var
from repro.lang.builtins import builtin


def chain_spec(families: int) -> Specification:
    """N Fig.-1-shaped set accumulators over one input, each read once."""
    definitions = {}
    outputs = []
    for k in range(families):
        m, last, acc, read = f"m{k}", f"l{k}", f"a{k}", f"r{k}"
        definitions[m] = Merge(
            Var(acc), Lift(builtin("set_empty"), (UnitExpr(),))
        )
        definitions[last] = Last(Var(m), Var("i"))
        definitions[acc] = Lift(builtin("set_add"), (Var(last), Var("i")))
        definitions[read] = Lift(
            builtin("set_contains"), (Var(last), Var("i"))
        )
        outputs.append(read)
    return Specification({"i": INT}, definitions, outputs)


@pytest.mark.parametrize("families", [5, 15, 30])
def test_analysis_scaling(benchmark, families):
    spec = chain_spec(families)
    benchmark.group = "analysis scaling (families)"
    result = benchmark(lambda: compile_spec(spec, optimize=True))
    # every family must come out fully mutable
    assert len(result.mutable_streams) == 4 * families
