"""Analysis scaling: compile time over specification size.

The hard steps (implication checking, optimal ordering) are coNP/NP-
complete in theory; this benchmark shows they behave near-linearly on
realistically-shaped specifications — N independent accumulator
families plus cross-family scalar reads — supporting the paper's
"no unusual long compilation time" claim beyond the six fixed specs.
"""

import pytest

from repro.compiler import build_compiled_spec
from repro.lang import INT, Last, Lift, Merge, Specification, UnitExpr, Var
from repro.lang.builtins import builtin


def chain_spec(families: int) -> Specification:
    """N Fig.-1-shaped set accumulators over one input, each read once."""
    definitions = {}
    outputs = []
    for k in range(families):
        m, last, acc, read = f"m{k}", f"l{k}", f"a{k}", f"r{k}"
        definitions[m] = Merge(
            Var(acc), Lift(builtin("set_empty"), (UnitExpr(),))
        )
        definitions[last] = Last(Var(m), Var("i"))
        definitions[acc] = Lift(builtin("set_add"), (Var(last), Var("i")))
        definitions[read] = Lift(
            builtin("set_contains"), (Var(last), Var("i"))
        )
        outputs.append(read)
    return Specification({"i": INT}, definitions, outputs)


@pytest.mark.parametrize("families", [5, 15, 30])
def test_analysis_scaling(benchmark, families):
    spec = chain_spec(families)
    benchmark.group = "analysis scaling (families)"
    result = benchmark(lambda: build_compiled_spec(spec, optimize=True))
    # every family must come out fully mutable
    assert len(result.mutable_streams) == 4 * families


def shared_trigger_spec(families: int) -> Specification:
    """Double-last accumulator families over one shared trigger.

    Proving each family's lasts replicating needs the implication
    ``ev'(t) → ev'(m_k)``; the triggering formulas are structurally
    identical across families, so with hash-consed formulas the
    memoized ``implies`` answers all but the first from cache.
    """
    definitions = {"t": Merge(Var("i1"), Var("i2"))}
    outputs = []
    for k in range(families):
        e = Lift(builtin("set_empty"), (UnitExpr(),))
        definitions[f"m{k}"] = Merge(Var(f"y{k}"), e)
        definitions[f"yl1_{k}"] = Last(Var(f"m{k}"), Var("t"))
        definitions[f"ml{k}"] = Merge(
            Var(f"yl1_{k}"), Lift(builtin("set_empty"), (UnitExpr(),))
        )
        definitions[f"yl2_{k}"] = Last(Var(f"ml{k}"), Var("t"))
        definitions[f"y{k}"] = Lift(
            builtin("set_add"), (Var(f"yl2_{k}"), Var("t"))
        )
        definitions[f"r{k}"] = Lift(
            builtin("set_size"), (Var(f"yl2_{k}"),)
        )
        outputs.append(f"r{k}")
    return Specification({"i1": INT, "i2": INT}, definitions, outputs)


@pytest.mark.parametrize("families", [10, 30])
def test_memoized_implication_scaling(benchmark, families):
    from repro.analysis.formula import cache_stats, clear_caches

    spec = shared_trigger_spec(families)
    benchmark.group = "memoized implication scaling (families)"

    def compile_fresh():
        clear_caches()
        return build_compiled_spec(spec, optimize=True)

    result = benchmark(compile_fresh)
    assert len(result.mutable_streams) >= 4 * families
    stats = cache_stats()
    # the families share triggering formulas: interning must collapse
    # the per-family implication queries onto a handful of cache entries
    assert stats["implies_calls"] >= families
    assert stats["implies_hits"] >= stats["implies_calls"] - 4


def test_diagnostics_overhead_is_bounded(benchmark):
    """Witness collection must not change the analysis asymptotics."""
    from repro.analysis import analyze_mutability, collect_diagnostics
    from repro.lang import check_types, flatten

    flat = flatten(chain_spec(20))
    check_types(flat)
    result = analyze_mutability(flat)
    benchmark.group = "diagnostics overhead"
    diags = benchmark(lambda: collect_diagnostics(flat, result))
    assert diags == []  # fully mutable, lint-clean
