"""Compilation-time claim (paper §V): "Compilation took less than half
a minute for all mentioned specifications" — despite the coNP-hard
implication checks and the NP-complete ordering step, typical
specifications compile quickly.  We benchmark the full pipeline
(flatten → analyses → ordering → codegen) per evaluation spec and
assert the 30-second bound with orders of magnitude to spare.
"""

import time

import pytest

from repro.compiler import build_compiled_spec
from repro.speclib import (
    db_access_constraint,
    db_time_constraint,
    map_window,
    peak_detection,
    queue_window,
    seen_set,
    spectrum_calculation,
)

SPEC_FACTORIES = {
    "seen_set": seen_set,
    "map_window": lambda: map_window(200),
    "queue_window": lambda: queue_window(200),
    "db_time": db_time_constraint,
    "db_access": db_access_constraint,
    "peak_detection": peak_detection,
    "spectrum": spectrum_calculation,
}


@pytest.mark.parametrize("name", list(SPEC_FACTORIES))
def test_compile_time(benchmark, name):
    factory = SPEC_FACTORIES[name]
    benchmark.group = "compile time"
    start = time.perf_counter()
    benchmark(lambda: build_compiled_spec(factory(), optimize=True))
    # the paper's bound, with huge margin: one compile stays under 30 s
    assert time.perf_counter() - start < 30.0


@pytest.mark.parametrize("name", list(SPEC_FACTORIES))
def test_compile_time_warm_caches(benchmark, name):
    """Recompilation with warm formula caches (IDE / watch-mode shape).

    The hash-consed formula layer keeps its implication memo across
    compilations; recompiling the same specification must stay inside
    the paper's bound and never be pathologically slower than cold.
    """
    factory = SPEC_FACTORIES[name]
    benchmark.group = "compile time (warm formula caches)"
    build_compiled_spec(factory(), optimize=True)  # warm the memo tables
    start = time.perf_counter()
    benchmark(lambda: build_compiled_spec(factory(), optimize=True))
    assert time.perf_counter() - start < 30.0
