"""Execution-engine comparison: generated code vs interpreted steps
vs the flat dispatch plan, per-event vs batched.

All engines use the identical analysis results; the differences are
local-variable straight-line code vs dictionary-driven step closures
vs opcode dispatch over slot arrays, and the per-event ``push``
protocol vs the amortized ``feed_batch`` hot path.
"""

import pytest

from repro.speclib import seen_set
from repro.workloads import seen_set_trace

from conftest import make_runner

VARIANTS = {
    "codegen": {"engine": "codegen"},
    "interpreted": {"engine": "interpreted"},
    "plan": {"engine": "plan"},
}


@pytest.mark.parametrize("engine", list(VARIANTS))
@pytest.mark.parametrize("optimize", [True, False], ids=["opt", "nonopt"])
def test_engines(benchmark, engine, optimize):
    inputs = seen_set_trace(3_000, 200)
    run = make_runner(
        seen_set(), inputs, optimize=optimize, **VARIANTS[engine]
    )
    benchmark.group = f"engines seen_set/{'opt' if optimize else 'nonopt'}"
    benchmark(run)


@pytest.mark.parametrize("engine", list(VARIANTS))
@pytest.mark.parametrize(
    "batch_size", [None, 256, 4096], ids=["push", "batch256", "batch4k"]
)
def test_engines_batched(benchmark, engine, batch_size):
    inputs = seen_set_trace(3_000, 200)
    run = make_runner(
        seen_set(), inputs, batch_size=batch_size, **VARIANTS[engine]
    )
    benchmark.group = "engines seen_set/batching"
    benchmark(run)
