"""Execution-engine comparison: generated code vs interpreted steps.

Both engines use the identical analysis results; the difference is
local-variable straight-line code vs dictionary-driven step closures.
Records the cost of avoiding ``exec``.
"""

import pytest

from repro.speclib import seen_set
from repro.workloads import seen_set_trace

from conftest import make_runner

VARIANTS = {
    "codegen": {"engine": "codegen"},
    "interpreted": {"engine": "interpreted"},
}


@pytest.mark.parametrize("engine", list(VARIANTS))
@pytest.mark.parametrize("optimize", [True, False], ids=["opt", "nonopt"])
def test_engines(benchmark, engine, optimize):
    inputs = seen_set_trace(3_000, 200)
    run = make_runner(
        seen_set(), inputs, optimize=optimize, **VARIANTS[engine]
    )
    benchmark.group = f"engines seen_set/{'opt' if optimize else 'nonopt'}"
    benchmark(run)
