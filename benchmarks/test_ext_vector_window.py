"""Extension benchmark: Vector Window (arrays — the original aggregate
update subject) and the delay-driven watchdog baseline."""

import pytest

from repro.speclib import vector_window, watchdog
from repro.workloads import uniform_int_trace, window_trace

from conftest import make_runner

MODE_KWARGS = {
    "optimized": {"optimize": True},
    "non-optimized": {"optimize": False},
}


@pytest.mark.parametrize("mode", list(MODE_KWARGS))
@pytest.mark.parametrize("size", [10, 200, 2000])
def test_vector_window(benchmark, size, mode):
    inputs = window_trace(4_000)
    run = make_runner(vector_window(size), inputs, **MODE_KWARGS[mode])
    benchmark.group = f"ext vector_window/{size}"
    benchmark(run)


@pytest.mark.parametrize("mode", list(MODE_KWARGS))
def test_watchdog_baseline(benchmark, mode):
    # aggregate-free: the optimization must cost nothing (speedup ~1)
    inputs = {"hb": uniform_int_trace(4_000, 10, step=2)}
    run = make_runner(watchdog(timeout=5), inputs, **MODE_KWARGS[mode])
    benchmark.group = "ext watchdog"
    benchmark(run)
