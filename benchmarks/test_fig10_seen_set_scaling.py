"""Figure 10: Seen Set runtime over the trace length, per set size.

The paper's observation to reproduce: the optimized runtime scales with
the trace length but is hardly influenced by the set size, while the
non-optimized runtime grows with both.  (The JIT warm-up non-linearity
of the JVM curves has no CPython counterpart.)
"""

import pytest

from repro.speclib import seen_set
from repro.workloads import SIZES, seen_set_trace

from conftest import make_runner

LENGTHS = (1_000, 4_000, 16_000)


@pytest.mark.parametrize("mode,kwargs", [
    ("optimized", {"optimize": True}),
    ("non-optimized", {"optimize": False}),
])
@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("size_name", list(SIZES))
def test_fig10(benchmark, size_name, length, mode, kwargs):
    inputs = seen_set_trace(length, SIZES[size_name])
    run = make_runner(seen_set(), inputs, **kwargs)
    benchmark.group = f"fig10 {size_name}/n={length}"
    benchmark(run)
