"""Figure 9: synthetic speedups — Seen Set / Map Window / Queue Window
at small/medium/large data-structure sizes, optimized vs non-optimized.

Each (spec, size, mode) cell is one pytest benchmark; the paper's
speedup for a cell is the ratio of its ``non-optimized`` to its
``optimized`` time.  Expected shape (paper §V-A): optimized wins
everywhere; the gap grows with the structure size; Seen Set shows the
largest speedup, Queue Window the smallest (the two-list persistent
queue loses less than the HAMT).
"""

import pytest

from repro.bench.fig9 import SPECS, spec_for, trace_for
from repro.workloads import SIZES

from conftest import make_runner

LENGTH = 4_000

MODE_KWARGS = {
    "optimized": {"optimize": True},
    "non-optimized": {"optimize": False},
}


@pytest.mark.parametrize("mode", list(MODE_KWARGS))
@pytest.mark.parametrize("size_name", list(SIZES))
@pytest.mark.parametrize("spec_name", SPECS)
def test_fig9(benchmark, spec_name, size_name, mode):
    size = SIZES[size_name]
    spec = spec_for(spec_name, size)
    inputs = trace_for(spec_name, size, LENGTH)
    run = make_runner(spec, inputs, **MODE_KWARGS[mode])
    benchmark.group = f"fig9 {spec_name}/{size_name}"
    benchmark(run)
