"""Overhead of the hardened runtime's opt-in layers.

Each mode runs the same spec/trace; the interesting ratios are against
``seed`` (the plain compiled monitor driven by a bare push loop):

* ``hardened-off``    — a :class:`MonitorRunner` with every hardening
  option disabled.  The codegen is byte-identical to the seed (asserted
  in ``tests/compiler/test_runtime_errors.py``); what this measures is
  the runner's per-event bookkeeping, which must stay small (<5%).
* ``error-propagate`` — error-propagating codegen on a clean trace:
  the cost of threading the report through wrapped lifts when nothing
  ever fails.
* ``validate-inputs`` — per-event type validation on top of the runner.
* ``alias-guard``     — generation-checked aggregates in place of the
  analysis-chosen mutable backends (a sanitizer mode: correctness
  checking, not production).
"""

import pytest

from repro.bench.fig9 import spec_for, trace_for
from repro.bench.runners import flatten_inputs
from repro.compiler import MonitorRunner, build_compiled_spec, counting_callback
from repro.workloads import SIZES

from conftest import make_runner

LENGTH = 4_000
SIZE = SIZES["medium"]
SPECS = ("seen_set", "queue_window")


def make_hardened_runner(spec, inputs, *, runner_kwargs=None, **compile_kwargs):
    compiled = build_compiled_spec(spec, **compile_kwargs)
    events = flatten_inputs(inputs)

    def run():
        on_output, _ = counting_callback()
        runner = MonitorRunner(compiled, on_output, **(runner_kwargs or {}))
        runner.run(events)

    return run


def build(mode, spec, inputs):
    if mode == "seed":
        return make_runner(spec, inputs)
    if mode == "hardened-off":
        return make_hardened_runner(spec, inputs)
    if mode == "error-propagate":
        return make_hardened_runner(spec, inputs, error_policy="propagate")
    if mode == "validate-inputs":
        return make_hardened_runner(
            spec, inputs, runner_kwargs={"validate_inputs": True}
        )
    if mode == "alias-guard":
        return make_runner(spec, inputs, alias_guard=True)
    raise ValueError(mode)


MODES = (
    "seed",
    "hardened-off",
    "error-propagate",
    "validate-inputs",
    "alias-guard",
)


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("spec_name", SPECS)
def test_guard_overhead(benchmark, spec_name, mode):
    spec = spec_for(spec_name, SIZE)
    inputs = trace_for(spec_name, SIZE, LENGTH)
    run = build(mode, spec, inputs)
    benchmark.group = f"hardened {spec_name}"
    benchmark(run)
