"""Micro-benchmarks of the data-structure substrate.

Supports the paper's §V-A explanation of why Queue Window gains less
than Seen Set: "the persistent queue ... requires less restructuring
after a modification [than] a persistent set which is implemented as an
adjusted Hash-Array Mapped Trie.  Hence the persistent queues are more
efficient compared to their mutable counterpart than sets."  The ratio
persistent/mutable should come out larger for sets than for queues.
"""

import pytest

from repro.structures import (
    Backend,
    empty_map,
    empty_queue,
    empty_set,
    empty_vector,
)

N = 3_000
BACKENDS = ["mutable", "persistent", "copying"]
_BACKEND = {
    "mutable": Backend.MUTABLE,
    "persistent": Backend.PERSISTENT,
    "copying": Backend.COPYING,
}


@pytest.mark.parametrize("backend", BACKENDS)
def test_set_add_churn(benchmark, backend):
    def run():
        s = empty_set(_BACKEND[backend])
        for i in range(N):
            s = s.add(i % 500)
        return s

    benchmark.group = "micro set add"
    benchmark(run)


@pytest.mark.parametrize("backend", ["mutable", "persistent"])
def test_map_put_churn(benchmark, backend):
    def run():
        m = empty_map(_BACKEND[backend])
        for i in range(N):
            m = m.put(i % 500, i)
        return m

    benchmark.group = "micro map put"
    benchmark(run)


@pytest.mark.parametrize("backend", ["mutable", "persistent"])
def test_queue_window_churn(benchmark, backend):
    def run():
        q = empty_queue(_BACKEND[backend])
        for i in range(N):
            q = q.enqueue(i)
            if len(q) > 200:
                q = q.dequeue()
        return q

    benchmark.group = "micro queue window"
    benchmark(run)


@pytest.mark.parametrize("backend", ["mutable", "persistent"])
def test_vector_append_set(benchmark, backend):
    def run():
        v = empty_vector(_BACKEND[backend])
        for i in range(N):
            v = v.append(i)
        for i in range(0, N, 7):
            v = v.set(i, -i)
        return v

    benchmark.group = "micro vector"
    benchmark(run)
