"""Table I: the four real-world monitors on simulated traces.

Rows (paper): DBTimeConstraint (speedup 1.3), DBAccessConstraint full
(> 15.5, the persistent monitor effectively diverges on the growing id
set) and at 33 % of the trace (2.1), PeakDetection (1.9),
SpectrumCalculation (2.0).  Expected shape here: every optimized cell
beats its non-optimized partner; DBAccessConstraint(full) shows the
largest gap because its set grows with the trace.
"""

import pytest

from repro.bench.table1 import scenarios

from conftest import make_runner

SCALE = 6_000

MODE_KWARGS = {
    "optimized": {"optimize": True},
    "non-optimized": {"optimize": False},
}


@pytest.mark.parametrize("mode", list(MODE_KWARGS))
@pytest.mark.parametrize("scenario", list(scenarios(100)))
def test_table1(benchmark, scenario, mode):
    spec, inputs = scenarios(SCALE)[scenario]
    run = make_runner(spec, inputs, **MODE_KWARGS[mode])
    benchmark.group = f"table1 {scenario}"
    benchmark(run)
