#!/usr/bin/env python3
"""Extending the language: user-defined lifted functions.

Shows the extension surface a downstream user needs: define your own
lifted function with access-class and event-pattern metadata (so the
analysis can reason about it), plug it into a specification, and let
the compiler decide mutability.  The example maintains a sliding
top-score table in a Vector with a custom in-place `bump` operation.
"""

from repro import INT, Last, Lift, Merge, Specification, UnitExpr, Var, compile_spec
from repro.lang.builtins import Access, EventPattern, LiftedFunction, builtin, pointwise
from repro.lang.types import VectorType


def make_bump():
    """bump(v, i): increment slot ``i % len`` of the score vector, or
    append a new slot while the vector is short.  WRITE access on the
    vector, strict (ALL) event pattern."""

    def bump(vector, index):
        if len(vector) < 8:
            return vector.append(1)
        slot = index % len(vector)
        return vector.set(slot, vector.get(slot) + 1)

    return LiftedFunction(
        "bump",
        EventPattern.ALL,
        (Access.WRITE, Access.NONE),
        (VectorType(INT), INT),
        VectorType(INT),
        lambda backend: bump,
    )


def main() -> None:
    bump = make_bump()
    best_of = pointwise(
        "best_of",
        lambda v: max(v) if len(v) else 0,
        (VectorType(INT),),
        INT,
        access=(Access.READ,),
    )

    spec = Specification(
        inputs={"hit": INT},
        definitions={
            "scores_m": Merge(
                Var("scores"), Lift(builtin("vec_empty"), (UnitExpr(),))
            ),
            "scores_l": Last(Var("scores_m"), Var("hit")),
            "best": Lift(best_of, (Var("scores_l"),)),
            "scores": Lift(bump, (Var("scores_l"), Var("hit"))),
        },
        outputs=["best"],
        type_annotations={"scores": VectorType(INT)},
    )

    compiled = compile_spec(spec, optimize=True)
    print("mutability analysis for the custom operator:")
    print(compiled.analysis.summary())
    print()

    trace = {"hit": [(t, t * 13 % 31) for t in range(1, 40)]}
    out = compiled.run(trace)
    print("best-score stream (last 5 events):", out["best"].events[-5:])
    print(
        "\nThe custom `bump` writes its vector in place:",
        sorted(compiled.mutable_streams),
    )


if __name__ == "__main__":
    main()
