#!/usr/bin/env python3
"""Database-log monitoring (the paper's §V-B DB scenarios).

Runs the two database monitors on a simulated operation log:

* **DBAccessConstraint** — "a record may not be accessed before it was
  inserted or after it was deleted"; a set of live record ids is
  maintained and checked on every access.
* **DBTimeConstraint** — "if data was added to db3 then it had to be
  added to db2 during the last 60 seconds"; a map of db2 insertion
  times is maintained and consulted on every db3 insert.

Both monitors' aggregate state is proven in-place-updatable by the
analysis; we report the violations found and the speedup over the
persistent baseline.
"""

import time

from repro import compile_spec
from repro.speclib import db_access_constraint, db_time_constraint
from repro.workloads import db_access_trace, db_time_trace

EVENTS = 20_000


def timed_run(compiled, inputs):
    violations = [0]
    checks = [0]

    def on_output(name, ts, value):
        checks[0] += 1
        if value is False:
            violations[0] += 1

    monitor = compiled.new_monitor(on_output)
    start = time.perf_counter()
    monitor.run(inputs)
    return time.perf_counter() - start, checks[0], violations[0]


def report(title, spec, inputs):
    optimized = compile_spec(spec, optimize=True)
    baseline = compile_spec(spec, optimize=False)
    t_opt, checks, violations = timed_run(optimized, inputs)
    t_base, _, violations_base = timed_run(baseline, inputs)
    assert violations == violations_base
    print(f"{title}:")
    print(f"  mutable aggregates : {sorted(optimized.mutable_streams)}")
    print(f"  checks performed   : {checks}")
    print(f"  violations found   : {violations}")
    print(f"  optimized runtime  : {t_opt:.3f}s")
    print(f"  persistent runtime : {t_base:.3f}s")
    print(f"  speedup            : {t_base / t_opt:.2f}x")
    print()


def main() -> None:
    print(f"Simulated database log, ~{EVENTS} operations each\n")
    report(
        "DBAccessConstraint (no access before insert / after delete)",
        db_access_constraint(),
        db_access_trace(EVENTS, seed=42),
    )
    report(
        "DBTimeConstraint (db3 insert within 60s of db2 insert)",
        db_time_constraint(limit=60),
        db_time_trace(EVENTS, seed=42),
    )


if __name__ == "__main__":
    main()
