#!/usr/bin/env python3
"""Operational features for long-running monitors.

Combines several library facilities around one scenario — a service
emitting request events, monitored for (a) duplicate request ids,
(b) silence (watchdog timeout), with:

* **composition** — the two properties are written as separate specs
  and merged into ONE compiled monitor (one analysis, one event loop);
* **advance()** — a wall-clock driver lets the delay-based watchdog
  fire while the input is silent;
* **checkpoint/restore** — the monitor state is snapshotted mid-run and
  resumed in a fresh process-like monitor, with identical results.
"""

from repro import compile_spec
from repro.compiler import collecting_callback
from repro.lang import INT, Specification
from repro.lang.compose import compose, substitute_inputs
from repro.speclib import seen_set, watchdog


def duplicate_detector() -> Specification:
    """seen_set over request ids, renamed to read naturally."""
    spec = seen_set()
    spec.inputs = {"i": INT}
    return spec


def main() -> None:
    # one monitor, two properties over the same input stream "i"; the
    # watchdog spec is written against "hb", so rewire its input first
    wd_over_i = substitute_inputs(watchdog(timeout=25), {"hb": "i"})
    combined = compose(duplicate_detector(), wd_over_i)
    compiled = compile_spec(combined)
    print("combined monitor:")
    print("  outputs:", compiled.monitor_class.OUTPUTS)
    print("  mutable:", sorted(compiled.mutable_streams))

    on_output, collected = collecting_callback()
    monitor = compiled.new_monitor(on_output)

    # phase 1: requests flow
    for ts, request_id in [(1, 101), (4, 102), (7, 101)]:
        monitor.push("i", ts, request_id)
    monitor.advance(8)
    checkpoint = monitor.snapshot()
    print("\nafter phase 1:", dict(collected))

    # phase 2a: the service goes silent; the wall clock advances
    monitor.advance(60)
    print("after silence :", collected.get("alarm_at"))

    # phase 2b: alternative future from the checkpoint — requests resume
    on2, collected2 = collecting_callback()
    resumed = compiled.new_monitor(on2)
    resumed.restore(checkpoint)
    resumed.push("i", 20, 103)
    resumed.push("i", 30, 102)
    resumed.finish(end_time=40)
    print("resumed future:", dict(collected2))


if __name__ == "__main__":
    main()
