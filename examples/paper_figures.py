#!/usr/bin/env python3
"""Walk through the paper's worked examples (Figures 1, 3, 4 and 7).

For each figure-spec this prints the classified usage graph, the
triggering formulas, the replicating lasts, the mutability analysis
outcome and the chosen translation order — the artifacts the paper
develops in §III/§IV — so you can follow the algorithm on the exact
examples of the paper.
"""

from repro import analyze_mutability, build_usage_graph, flatten
from repro.analysis import AliasAnalysis, TriggeringAnalysis
from repro.graph import EdgeClass
from repro.speclib import fig1_spec, fig4_lower_spec, fig4_upper_spec


def describe(title, spec):
    print("=" * 72)
    print(title)
    print("=" * 72)
    flat = flatten(spec)
    graph = build_usage_graph(flat)

    print("\nflattened equations:")
    for name, expr in flat.definitions.items():
        print(f"  {name} = {expr}")

    print("\nclassified edges (W=write, R=read, L=last, P=pass):")
    for edge in graph.edges:
        if edge.cls is not EdgeClass.PLAIN:
            print(f"  {edge}")

    triggering = TriggeringAnalysis(flat)
    print("\ntriggering formulas ev'(s):")
    for name in flat.definitions:
        if graph.flat.types[name].is_complex:
            print(f"  ev'({name}) = {triggering.formula(name)}")

    alias = AliasAnalysis(graph, triggering)
    replicating = alias.replicating_lasts()
    print(f"\nreplicating lasts: {replicating or 'none'}")

    result = analyze_mutability(flat)
    print(f"\nmutable   : {sorted(result.mutable) or '∅'}")
    print(f"persistent: {sorted(result.persistent) or '∅'}")
    if result.active_constraints:
        print("read-before-write constraints (the Fig. 7 blue edge):")
        for constraint in result.active_constraints:
            print(f"  {constraint.reader} before {constraint.writer}")
    print(f"translation order: {result.order}")
    print()


def main() -> None:
    describe("Figure 1 — seen-set accumulator (M = {∅, m, y, y_l})", fig1_spec())
    describe(
        "Figure 4 upper — accumulate on i1, query on i2 (all in-place)",
        fig4_upper_spec(),
    )
    describe(
        "Figure 4 lower — the replicated set is modified (all persistent)",
        fig4_lower_spec(),
    )


if __name__ == "__main__":
    main()
