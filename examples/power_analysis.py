#!/usr/bin/env python3
"""Energy-consumption analysis (the paper's §V-B ReNuBiL scenarios).

Runs PeakDetection (queue-based moving average; flags samples deviating
more than 40 % from the window mean) and SpectrumCalculation (map-based
histogram of power values plus an above-threshold counter) on a
simulated building power trace with injected peaks.
"""

import time

from repro import compile_spec
from repro.speclib import peak_detection, spectrum_calculation
from repro.workloads import power_trace

SAMPLES = 20_000


def main() -> None:
    inputs = power_trace(SAMPLES, seed=7, peak_rate=0.01)
    values = [v for _, v in inputs["x"]]
    print(
        f"Simulated power trace: {SAMPLES} samples,"
        f" {min(values):.0f}-{max(values):.0f} W\n"
    )

    # --- PeakDetection ---------------------------------------------------
    spec = peak_detection(window=30, deviation=0.4)
    optimized = compile_spec(spec, optimize=True)
    peaks = [0]
    optimized_monitor = optimized.new_monitor(
        lambda n, t, v: peaks.__setitem__(0, peaks[0] + (1 if v else 0))
    )
    start = time.perf_counter()
    optimized_monitor.run(inputs)
    t_opt = time.perf_counter() - start

    baseline = compile_spec(spec, optimize=False)
    baseline_monitor = baseline.new_monitor()
    start = time.perf_counter()
    baseline_monitor.run(inputs)
    t_base = time.perf_counter() - start

    print("PeakDetection (30-sample moving average, 40% deviation):")
    print(f"  peaks flagged      : {peaks[0]}")
    print(f"  optimized runtime  : {t_opt:.3f}s")
    print(f"  persistent runtime : {t_base:.3f}s")
    print(f"  speedup            : {t_base / t_opt:.2f}x\n")

    # --- SpectrumCalculation ----------------------------------------------
    spec = spectrum_calculation(bucket_width=250.0, threshold=5000.0)
    compiled = compile_spec(spec, optimize=True)
    above = [0]

    def on_output(name, ts, value):
        if name == "above":
            above[0] = value

    compiled.new_monitor(on_output).run(inputs)
    print("SpectrumCalculation (250 W histogram buckets):")
    print(f"  samples above 5 kW : {above[0]}"
          f" ({100 * above[0] / SAMPLES:.2f}% of the trace)")
    print(f"  mutable aggregates : {sorted(compiled.mutable_streams)}")


if __name__ == "__main__":
    main()
