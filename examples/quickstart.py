#!/usr/bin/env python3
"""Quickstart: write a spec, compile it, run it, inspect the optimization.

The specification is the paper's Figure 1: accumulate input values in a
set and report whether the current value was seen before.  We compile
it twice — optimized (mutable set, in-place updates) and non-optimized
(persistent HAMT set) — run both on the same trace, and show that they
agree while the optimized monitor updates one single object in place.
"""

from repro import compile_spec, parse_spec

SPEC = """
-- Figure 1 of the paper: "was this value seen before?"
in i: Int

def m  := merge(y, set_empty(unit))   -- the set, initialized empty at t=0
def yl := last(m, i)                  -- its previous version, sampled at i
def y  := set_add(yl, i)              -- the next version
def s  := set_contains(yl, i)         -- the check (reads the OLD version)

out s
"""


def main() -> None:
    spec = parse_spec(SPEC)

    optimized = compile_spec(spec, optimize=True)
    baseline = compile_spec(spec, optimize=False)

    print("=== mutability analysis ===")
    print(optimized.analysis.summary())
    print()
    print("=== generated calculation section (optimized) ===")
    print(optimized.source)

    trace = {"i": [(1, 4), (2, 7), (3, 4), (5, 9), (8, 7)]}
    out_opt = optimized.run(trace)
    out_base = baseline.run(trace)

    print("=== outputs ===")
    print("optimized:    ", out_opt["s"].events)
    print("non-optimized:", out_base["s"].events)
    assert out_opt["s"] == out_base["s"], "both variants must agree"
    print("\nBoth monitors agree; the optimized one performed every set")
    print("update in place (streams", sorted(optimized.mutable_streams),
          "are mutable).")


if __name__ == "__main__":
    main()
