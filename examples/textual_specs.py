#!/usr/bin/env python3
"""The textual frontend end to end: parse, analyze, emit, run.

A spec written in the concrete syntax (with derived-operator macros and
signal-semantics ``slift``) is compiled to both the Python monitor and
Scala source, and run on a trace in the TeSSLa trace format.
"""

from repro import analyze_mutability, compile_spec, flatten, parse_spec
from repro.compiler import generate_scala_source
from repro.semantics import read_trace, write_trace

SPEC = """
-- Sensor health monitor:
--  * how many samples arrived, and their running sum (macros)
--  * the gap since the previous sample (timestamp arithmetic)
--  * flag gaps longer than 10 time units
in sample: Int

def n      := count(sample)
def total  := sum(sample)
def gap    := time_since_last(sample)
def stale  := gap > 10

out n, total, gap, stale
"""

TRACE = """
1:  sample = 100
4:  sample = 103
18: sample = 90   -- a 14-unit gap: stale
20: sample = 95
"""


def main() -> None:
    spec = parse_spec(SPEC)
    flat = flatten(spec)
    compiled = compile_spec(flat)

    print("=== analysis ===")
    print(analyze_mutability(flat).summary())

    inputs = read_trace(TRACE)
    outputs = compiled.run(inputs)
    print("\n=== outputs (TeSSLa trace format) ===")
    print(write_trace({name: s.events for name, s in outputs.items()}), end="")

    print("\n=== Scala emission (first lines) ===")
    scala = generate_scala_source(
        flat, compiled.order, compiled.backends
    )
    print("\n".join(scala.splitlines()[:12]))


if __name__ == "__main__":
    main()
