"""repro — Aggregate Update Optimization for Multi-clocked Dataflow Languages.

A Python reproduction of "Aggregate Update Problem for Multi-clocked
Dataflow Languages" (CGO 2022): a TeSSLa-like timed-event-stream
language, the static triggering/aliasing/mutability analysis that
decides which aggregate data structures a generated monitor may update
in place, and a compiler emitting Python monitors that mix mutable and
persistent (HAMT-based) collections accordingly.

Quick start::

    from repro import api

    monitor = api.compile('''
        in i: Int
        def m  := merge(y, set_empty(unit))
        def yl := last(m, i)
        def y  := set_add(yl, i)
        def s  := set_contains(yl, i)
        out s
    ''')                                   # optimized: set updated in place
    outputs = monitor.run_traces({"i": [(1, 4), (2, 7), (3, 4)]})
    print(outputs["s"].events)             # [(1, False), (2, False), (3, True)]

``api.compile``/``api.run`` with :class:`~repro.api.CompileOptions` and
:class:`~repro.api.RunOptions` cover the full option space (engines,
plan cache, batching, checkpoints, tolerant ingestion) — see
docs/api.md.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the paper-vs-measured evaluation results.
"""

from . import api
from .analysis import (
    AliasAnalysis,
    MutabilityAnalysis,
    MutabilityResult,
    TriggeringAnalysis,
    analyze_mutability,
)
from .api import CompileOptions, Monitor, RunOptions
from .compiler import (
    CompiledSpec,
    HardenedRunner,
    build_compiled_spec,
    MonitorBase,
    MonitorError,
    MonitorRunner,
    PlanCache,
    RunReport,
    build_compiled_spec,
    compile_spec,
    freeze,
)
from .errors import ErrorPolicy, ErrorValue, LiftError, is_error
from .frontend import FrontendError, parse_spec
from .graph import EdgeClass, UsageGraph, build_usage_graph, translation_order
from .lang import (
    BOOL,
    Const,
    Default,
    Delay,
    FLOAT,
    FlatSpec,
    INT,
    Last,
    Lift,
    MapType,
    Merge,
    Nil,
    QueueType,
    STR,
    SetType,
    SpecError,
    Specification,
    TimeExpr,
    UNIT,
    UnitExpr,
    Var,
    VectorType,
    check_types,
    flatten,
)
from .semantics import Stream, interpret
from .structures import AliasGuardError, Backend

__version__ = "1.0.0"

__all__ = [
    "AliasAnalysis",
    "AliasGuardError",
    "BOOL",
    "Backend",
    "CompileOptions",
    "CompiledSpec",
    "Const",
    "Default",
    "Delay",
    "EdgeClass",
    "ErrorPolicy",
    "ErrorValue",
    "FLOAT",
    "FlatSpec",
    "FrontendError",
    "HardenedRunner",
    "INT",
    "Last",
    "Lift",
    "LiftError",
    "MapType",
    "Merge",
    "Monitor",
    "MonitorBase",
    "MonitorError",
    "MonitorRunner",
    "MutabilityAnalysis",
    "MutabilityResult",
    "Nil",
    "PlanCache",
    "QueueType",
    "RunOptions",
    "RunReport",
    "STR",
    "SetType",
    "SpecError",
    "Specification",
    "Stream",
    "TimeExpr",
    "TriggeringAnalysis",
    "UNIT",
    "UnitExpr",
    "UsageGraph",
    "Var",
    "VectorType",
    "analyze_mutability",
    "api",
    "build_usage_graph",
    "check_types",
    "build_compiled_spec",
    "compile_spec",
    "flatten",
    "freeze",
    "interpret",
    "is_error",
    "parse_spec",
    "translation_order",
]
