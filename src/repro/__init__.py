"""repro — Aggregate Update Optimization for Multi-clocked Dataflow Languages.

A Python reproduction of "Aggregate Update Problem for Multi-clocked
Dataflow Languages" (CGO 2022): a TeSSLa-like timed-event-stream
language, the static triggering/aliasing/mutability analysis that
decides which aggregate data structures a generated monitor may update
in place, and a compiler emitting Python monitors that mix mutable and
persistent (HAMT-based) collections accordingly.

Quick start::

    from repro import compile_spec, parse_spec

    spec = parse_spec('''
        in i: Int
        def m  := merge(y, set_empty(unit))
        def yl := last(m, i)
        def y  := set_add(yl, i)
        def s  := set_contains(yl, i)
        out s
    ''')
    monitor = compile_spec(spec)           # optimized: set updated in place
    outputs = monitor.run({"i": [(1, 4), (2, 7), (3, 4)]})
    print(outputs["s"].events)             # [(1, False), (2, False), (3, True)]

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured evaluation results.
"""

from .analysis import (
    AliasAnalysis,
    MutabilityAnalysis,
    MutabilityResult,
    TriggeringAnalysis,
    analyze_mutability,
)
from .compiler import (
    CompiledSpec,
    HardenedRunner,
    MonitorBase,
    MonitorError,
    RunReport,
    compile_spec,
    freeze,
)
from .errors import ErrorPolicy, ErrorValue, LiftError, is_error
from .frontend import FrontendError, parse_spec
from .graph import EdgeClass, UsageGraph, build_usage_graph, translation_order
from .lang import (
    BOOL,
    Const,
    Default,
    Delay,
    FLOAT,
    FlatSpec,
    INT,
    Last,
    Lift,
    MapType,
    Merge,
    Nil,
    QueueType,
    STR,
    SetType,
    SpecError,
    Specification,
    TimeExpr,
    UNIT,
    UnitExpr,
    Var,
    VectorType,
    check_types,
    flatten,
)
from .semantics import Stream, interpret
from .structures import AliasGuardError, Backend

__version__ = "1.0.0"

__all__ = [
    "AliasAnalysis",
    "AliasGuardError",
    "BOOL",
    "Backend",
    "CompiledSpec",
    "Const",
    "Default",
    "Delay",
    "EdgeClass",
    "ErrorPolicy",
    "ErrorValue",
    "FLOAT",
    "FlatSpec",
    "FrontendError",
    "HardenedRunner",
    "INT",
    "Last",
    "Lift",
    "LiftError",
    "MapType",
    "Merge",
    "MonitorBase",
    "MonitorError",
    "MutabilityAnalysis",
    "MutabilityResult",
    "Nil",
    "QueueType",
    "RunReport",
    "STR",
    "SetType",
    "SpecError",
    "Specification",
    "Stream",
    "TimeExpr",
    "TriggeringAnalysis",
    "UNIT",
    "UnitExpr",
    "UsageGraph",
    "Var",
    "VectorType",
    "analyze_mutability",
    "build_usage_graph",
    "check_types",
    "compile_spec",
    "flatten",
    "freeze",
    "interpret",
    "is_error",
    "parse_spec",
    "translation_order",
]
