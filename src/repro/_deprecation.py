"""Once-per-process deprecation warnings.

Every legacy entry point (``compile_spec``, ``CompiledSpec.run``,
``MonitorBase.run``, ``HardenedRunner``) funnels its
``DeprecationWarning`` through :func:`warn_once`, keyed by entry-point
name: a busy process calling a deprecated API thousands of times warns
exactly once, not per call (Python's default warning filter dedups by
code location, but ``always``/``error`` filters — common under pytest
and in hardened deployments — would otherwise flood the log).

Tests that assert individual warnings reset the registry between test
cases via :func:`reset` (see ``tests/conftest.py``).
"""

from __future__ import annotations

import threading
import warnings
from typing import Set

_emitted: Set[str] = set()
_lock = threading.Lock()


class ReproDeprecationWarning(DeprecationWarning):
    """Deprecation warnings emitted by repro's own legacy entry points.

    A distinct subclass so test suites can promote *repro-owned*
    deprecations to errors (``error::repro._deprecation.ReproDeprecationWarning``
    in pytest's ``filterwarnings``) without also erroring on
    third-party ``DeprecationWarning`` noise from the interpreter or
    dependencies.
    """


def warn_once(key: str, message: str, *, stacklevel: int = 3) -> None:
    """Emit ``ReproDeprecationWarning(message)`` once per process per *key*."""
    with _lock:
        if key in _emitted:
            return
        _emitted.add(key)
    warnings.warn(message, ReproDeprecationWarning, stacklevel=stacklevel)


def reset() -> None:
    """Forget all emitted warnings (test isolation only)."""
    with _lock:
        _emitted.clear()
