"""Static analyses: triggering behaviour, aliasing, mutability (paper §IV)."""

from .aliasing import AliasAnalysis
from .formula import FALSE, And, Atom, Formula, Or, conj, disj, implies
from .mutability import (
    MutabilityAnalysis,
    MutabilityResult,
    ReadBeforeWrite,
    Rule1Violation,
    analyze_mutability,
)
from .triggering import TriggeringAnalysis, always_initialized
from .unionfind import UnionFind

__all__ = [
    "AliasAnalysis",
    "And",
    "Atom",
    "FALSE",
    "Formula",
    "MutabilityAnalysis",
    "MutabilityResult",
    "Or",
    "ReadBeforeWrite",
    "Rule1Violation",
    "TriggeringAnalysis",
    "UnionFind",
    "always_initialized",
    "analyze_mutability",
    "conj",
    "disj",
    "implies",
]
