"""Static analyses: triggering behaviour, aliasing, mutability (paper §IV)."""

from .aliasing import AliasAnalysis
from .diagnostics import (
    CATALOG,
    Diagnostic,
    Severity,
    collect_diagnostics,
    lint_diagnostic,
    mutability_diagnostics,
    strict_failures,
    to_json,
    to_sarif,
)
from .formula import (
    FALSE,
    And,
    Atom,
    Formula,
    Or,
    cache_stats,
    clear_caches,
    conj,
    disj,
    implies,
)
from .mutability import (
    InputAggregateWitness,
    MutabilityAnalysis,
    MutabilityResult,
    OrderingConflict,
    ReadBeforeWrite,
    Rule1Violation,
    analyze_mutability,
)
from .triggering import TriggeringAnalysis, always_initialized
from .unionfind import UnionFind

__all__ = [
    "AliasAnalysis",
    "And",
    "Atom",
    "CATALOG",
    "Diagnostic",
    "FALSE",
    "Formula",
    "InputAggregateWitness",
    "MutabilityAnalysis",
    "MutabilityResult",
    "Or",
    "OrderingConflict",
    "ReadBeforeWrite",
    "Rule1Violation",
    "Severity",
    "TriggeringAnalysis",
    "UnionFind",
    "always_initialized",
    "analyze_mutability",
    "cache_stats",
    "clear_caches",
    "collect_diagnostics",
    "conj",
    "disj",
    "implies",
    "lint_diagnostic",
    "mutability_diagnostics",
    "strict_failures",
    "to_json",
    "to_sarif",
]
