"""Aliasing analysis (paper §IV-B, Definitions 4-6).

Two stream variables *potentially alias* when they may carry the same
data structure at the same timestamp.  The analysis proves pairs
*aliasing-safe* via path-pair reasoning in the Pass/Last subgraph:

* no common ancestor → the variables can never see the same event;
* otherwise, for **every** common ancestor ``c`` and **every** pair of
  P/L paths from ``c`` to the two variables, one path must contain
  strictly more ``last`` hops, the extra hops must be matched by
  triggering implications (the events on the longer path cannot outpace
  the shorter one), and every ``last`` on the shorter path must be
  non-replicating (Def. 5) so the earlier event cannot be re-issued.

Path enumeration is edge-simple (each edge used at most once per path),
which covers one traversal of every recursion cycle; if enumeration
overflows, the pair is conservatively declared a potential alias.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..lang.ast import Last
from ..graph.usage_graph import Edge, EdgeClass, UsageGraph
from .triggering import TriggeringAnalysis

Path = List[Edge]


def _render_path(path: Path) -> List[str]:
    """Serialize a P/L path as edge strings for witness payloads."""
    return [f"{e.src} -[{e.cls.value}]-> {e.dst}" for e in path]


class AliasAnalysis:
    """Potential-alias and replicating-last queries for one usage graph."""

    def __init__(
        self,
        graph: UsageGraph,
        triggering: Optional[TriggeringAnalysis] = None,
        path_limit: int = 256,
    ) -> None:
        self.graph = graph
        self.triggering = triggering or TriggeringAnalysis(graph.flat)
        #: cap on P/L paths enumerated per (ancestor, node) pair; an
        #: overflow degrades the pair to "potential alias" (safe)
        self.path_limit = path_limit
        self._replicating: Dict[str, bool] = {}
        self._safe: Dict[Tuple[str, str], bool] = {}
        self._paths: Dict[Tuple[str, str], Optional[List[Path]]] = {}
        #: (u, v, ancestor) triples where path enumeration overflowed and
        #: the pair was conservatively declared a potential alias.
        self.path_overflows: List[Tuple[str, str, str]] = []

    def _paths_from(self, ancestor: str, node: str):
        """Cached edge-simple P/L paths from *ancestor* to *node*."""
        key = (ancestor, node)
        if key not in self._paths:
            self._paths[key] = self.graph.pl_paths(
                ancestor, node, limit=self.path_limit
            )
        return self._paths[key]

    # -- Definition 5: replicating lasts -----------------------------------

    def is_replicating_last(self, name: str) -> bool:
        """Is the ``last``-defined stream *name* replicating?

        ``s = last(v, t)`` is replicating iff it may produce an event
        without a new event on ``v`` — conservatively: unless
        ``ev'(s) → ev'(v)`` is a tautology.
        """
        cached = self._replicating.get(name)
        if cached is not None:
            return cached
        expr = self.graph.flat.definitions.get(name)
        if not isinstance(expr, Last):
            raise ValueError(f"{name!r} is not defined by a last expression")
        result = not self.triggering.implies_events(name, expr.value.name)
        self._replicating[name] = result
        return result

    def replicating_lasts(self) -> List[str]:
        """All replicating last streams of the specification."""
        return [
            name
            for name, expr in self.graph.flat.definitions.items()
            if isinstance(expr, Last) and self.is_replicating_last(name)
        ]

    # -- Definition 6: aliasing safety --------------------------------------

    def aliasing_safe(self, u: str, v: str) -> bool:
        """Can we prove *u* and *v* never carry the same event together?"""
        if u == v:
            return False  # a variable trivially aliases itself
        key = (u, v) if u <= v else (v, u)
        cached = self._safe.get(key)
        if cached is not None:
            return cached
        result = self._check_safe(u, v)
        self._safe[key] = result
        return result

    def potential_alias(self, u: str, v: str) -> bool:
        """``u ≃ v``: the complement of provable aliasing-safety."""
        return not self.aliasing_safe(u, v)

    def _check_safe(self, u: str, v: str) -> bool:
        common = self.graph.pl_ancestors(u) & self.graph.pl_ancestors(v)
        if not common:
            return True
        for ancestor in common:
            paths_u = self._paths_from(ancestor, u)
            paths_v = self._paths_from(ancestor, v)
            if paths_u is None or paths_v is None:
                # enumeration overflow: be conservative, but record the
                # precision loss so diagnostics can surface it (MUT005)
                self.path_overflows.append((u, v, ancestor))
                return False
            for path_u in paths_u:
                for path_v in paths_v:
                    if not self._pair_safe(path_u, path_v):
                        return False
        return True

    def explain_alias(self, u: str, v: str) -> Optional[Dict[str, Any]]:
        """A machine-checkable witness for why ``u ≃ v`` (potential alias).

        Returns ``None`` when the pair is provably aliasing-safe.  The
        witness names the failure mode of the Def. 6 proof attempt:

        * ``self-alias`` — a variable trivially aliases itself;
        * ``path-overflow`` — P/L path enumeration exceeded
          ``path_limit`` under some common ancestor (conservative);
        * ``unsafe-path-pair`` — a concrete pair of P/L paths from a
          common ancestor violates Def. 6 in both orientations; the
          payload carries the rendered paths and any replicating lasts
          on them (the usual culprit).
        """
        if u == v:
            return {"kind": "self-alias", "stream": u}
        if self.aliasing_safe(u, v):
            return None
        common = self.graph.pl_ancestors(u) & self.graph.pl_ancestors(v)
        for ancestor in sorted(common):
            paths_u = self._paths_from(ancestor, u)
            paths_v = self._paths_from(ancestor, v)
            if paths_u is None or paths_v is None:
                return {
                    "kind": "path-overflow",
                    "ancestor": ancestor,
                    "pair": [u, v],
                    "path_limit": self.path_limit,
                }
            for path_u in paths_u:
                for path_v in paths_v:
                    if not self._pair_safe(path_u, path_v):
                        lasts = {
                            e.dst
                            for e in path_u + path_v
                            if e.cls is EdgeClass.LAST
                        }
                        return {
                            "kind": "unsafe-path-pair",
                            "ancestor": ancestor,
                            "pair": [u, v],
                            "path_to_first": _render_path(path_u),
                            "path_to_second": _render_path(path_v),
                            "replicating_lasts": sorted(
                                name
                                for name in lasts
                                if self.is_replicating_last(name)
                            ),
                        }
        # Unreachable for consistent caches, but never let diagnostics
        # construction crash the analysis.
        return {"kind": "unknown", "pair": [u, v]}  # pragma: no cover

    def _pair_safe(self, path_a: Path, path_b: Path) -> bool:
        """Def. 6 for one concrete path pair, trying both orientations."""
        return self._oriented_safe(path_a, path_b) or self._oriented_safe(
            path_b, path_a
        )

    def _oriented_safe(self, long_path: Path, short_path: Path) -> bool:
        """Is (long_path ↦ u, short_path ↦ v) a valid Def. 6 witness?

        ``long_path`` must decompose into n+1 groups ``(P*L)+`` ending at
        intermediate nodes ``u_i`` (targets of last edges) such that
        ``ev(u_i) ⊆ ev(v_i)`` for the short path's last targets ``v_i``,
        and the short path's lasts must all be non-replicating.
        """
        long_lasts = [e.dst for e in long_path if e.cls is EdgeClass.LAST]
        short_lasts = [e.dst for e in short_path if e.cls is EdgeClass.LAST]
        n, m = len(short_lasts), len(long_lasts)
        if m < n + 1:
            return False
        if any(self.is_replicating_last(name) for name in short_lasts):
            return False
        # Greedy leftmost matching of the n implication obligations onto
        # the long path's last targets; index i may use positions up to
        # m - n - 1 + i so that at least one last remains for the final
        # (P*L)+ group.
        position = -1
        for i, v_i in enumerate(short_lasts):
            bound = m - n - 1 + i
            found = None
            for j in range(position + 1, bound + 1):
                if self.triggering.implies_events(long_lasts[j], v_i):
                    found = j
                    break
            if found is None:
                return False
            position = found
        return True
