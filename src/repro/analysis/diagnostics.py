"""Unified static-analysis diagnostics (lint + mutability provenance).

Everything the compiler's static passes conclude about a specification
is surfaced here as :class:`Diagnostic` records with **stable codes**,
so results are auditable (why is this stream persistent?) and gateable
(fail CI on precision loss or spec foot-guns).  Three code families:

* ``LINT00x`` — the specification linter's foot-gun checks
  (:mod:`repro.lang.lint`), always warning severity;
* ``MUT00x`` — provenance of the aggregate-update analysis.  Streams
  demoted to persistent backends carry a machine-checkable *witness*
  (the offending rule, edge and alias explanation) as a note; analysis
  *precision losses* — implicant-cap or path-enumeration overflows,
  where a stream may be persistent only because the analysis gave up —
  are warnings;
* ``OPT00x`` — provenance of the spec-level rewrite optimizer
  (:mod:`repro.opt`), one note per applied (or guard-rejected)
  rewrite, attached by :meth:`repro.compiler.pipeline.CompiledSpec.diagnostics`
  when compiled with ``rewrite=True``.

The full catalogue lives in ``docs/analysis.md`` ("Diagnostics codes").

Output shapes: :func:`to_json` (a JSON array of the records, round-
trips through ``json.loads``) and :func:`to_sarif` (SARIF 2.1.0, for
code-scanning UIs).  The ``repro-compile lint`` subcommand exposes
both; ``--strict`` turns any diagnostic of warning severity or above
into a nonzero exit for CI gating.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..lang.lint import LINT_CODES, LintWarning, lint
from ..lang.spec import FlatSpec
from .mutability import (
    InputAggregateWitness,
    MutabilityResult,
    OrderingConflict,
    Rule1Violation,
    analyze_mutability,
)


class Severity(enum.IntEnum):
    """Diagnostic severity; ordered so severities can be compared."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @property
    def sarif_level(self) -> str:
        return {"note": "note", "warning": "warning", "error": "error"}[
            self.label
        ]


#: code → (title, default severity); LINT_CODES (the slug → code map)
#: is owned by :mod:`repro.lang.lint`.
CATALOG: Dict[str, Any] = {
    "LINT001": ("starved strict lift", Severity.WARNING),
    "LINT002": ("dead stream", Severity.WARNING),
    "LINT003": ("unused input", Severity.WARNING),
    "LINT004": ("constant output", Severity.WARNING),
    "LINT005": ("never-firing stream", Severity.WARNING),
    "MUT001": ("double write/reproduction (rule 1)", Severity.NOTE),
    "MUT002": ("read-before-write ordering conflict", Severity.NOTE),
    "MUT003": ("input aggregate family", Severity.NOTE),
    "MUT004": ("triggering implication unknown (cap)", Severity.WARNING),
    "MUT005": ("alias path enumeration overflow", Severity.WARNING),
    "OPT001": ("duplicate stream eliminated", Severity.NOTE),
    "OPT002": ("identity lift eliminated", Severity.NOTE),
    "OPT003": ("lifts fused", Severity.NOTE),
    "OPT004": ("constant expression folded", Severity.NOTE),
    "OPT005": ("dead stream eliminated", Severity.NOTE),
    "OPT006": ("never-firing stream normalized to nil", Severity.NOTE),
    "OPT007": ("rewrite rejected by mutable-share guard", Severity.NOTE),
    "VEC001": ("vector-ineligible family (plan fallback)", Severity.NOTE),
    "VEC002": ("vector engine unavailable (numpy missing)", Severity.NOTE),
    "WIN001": ("window aggregate on the O(1) delta path", Severity.NOTE),
    "WIN002": ("window aggregate recomputed by fold", Severity.NOTE),
    "WIN003": ("window parameter conflict", Severity.WARNING),
}


@dataclass
class Diagnostic:
    """One structured diagnostic record.

    ``witness`` is a JSON-serializable payload that makes the claim
    machine-checkable — for persistence diagnostics it names the rule
    and the offending edge/path, for overflow diagnostics the query and
    the cap that was hit.
    """

    code: str
    severity: Severity
    stream: str
    message: str
    source: str  # "lint" | "mutability" | "triggering" | "aliasing"
    witness: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        rule = self.witness.get("rule")
        tag = f"{self.code}:{rule}" if rule else self.code
        return (
            f"[{tag}] {self.severity.label} {self.stream}:"
            f" {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.label,
            "stream": self.stream,
            "message": self.message,
            "source": self.source,
            "witness": self.witness,
        }


# -- lint unification --------------------------------------------------------


def lint_diagnostic(warning: LintWarning) -> Diagnostic:
    """Lift a legacy :class:`LintWarning` into a :class:`Diagnostic`."""
    return Diagnostic(
        code=LINT_CODES.get(warning.code, "LINT000"),
        severity=Severity.WARNING,
        stream=warning.stream,
        message=warning.message,
        source="lint",
        witness={"rule": warning.code},
    )


# -- mutability provenance ---------------------------------------------------


def _witness_payload(witness: Any) -> Dict[str, Any]:
    """Serialize one persistence witness to a JSON-safe mapping."""
    if isinstance(witness, Rule1Violation):
        payload: Dict[str, Any] = {
            "rule": "no-double-write",
            "written": witness.written,
            "write_target": witness.write_target,
            "alias": witness.alias,
            "conflict": witness.conflict,
            "conflict_class": witness.conflict_class.value,
            "edge": list(witness.edge),
        }
        if witness.alias_reason is not None:
            payload["alias_reason"] = witness.alias_reason
        return payload
    if isinstance(witness, OrderingConflict):
        return {
            "rule": "read-before-write-cycle",
            "family": sorted(witness.family),
            "dropped_constraints": [
                {
                    "reader": c.reader,
                    "writer": c.writer,
                    "written": c.written,
                    "edge": list(c.edge),
                }
                for c in witness.dropped
            ],
        }
    if isinstance(witness, InputAggregateWitness):
        return {"rule": "input-aggregate", "input": witness.input_stream}
    return {"rule": "unknown", "repr": repr(witness)}  # pragma: no cover


def _witness_code(witness: Any) -> str:
    if isinstance(witness, Rule1Violation):
        return "MUT001"
    if isinstance(witness, OrderingConflict):
        return "MUT002"
    if isinstance(witness, InputAggregateWitness):
        return "MUT003"
    return "MUT000"  # pragma: no cover


def _witness_message(witness: Any) -> str:
    if isinstance(witness, Rule1Violation):
        reason = ""
        if witness.alias_reason and witness.alias_reason.get(
            "replicating_lasts"
        ):
            lasts = ", ".join(witness.alias_reason["replicating_lasts"])
            reason = f" (alias reproduced by replicating last {lasts})"
        return (
            f"persistent backend forced by rule 1: write"
            f" {witness.written} -> {witness.write_target} conflicts with"
            f" alias {witness.alias}"
            f" -[{witness.conflict_class.value}]-> {witness.conflict}"
            + reason
        )
    if isinstance(witness, OrderingConflict):
        edges = ", ".join(f"{r} < {w}" for r, w in witness.edges)
        return (
            "persistent backend forced by rule 2: read-before-write"
            f" constraints [{edges}] participate in a dependency cycle;"
            " the family was the minimum-weight drop"
        )
    if isinstance(witness, InputAggregateWitness):
        return (
            "persistent backend forced: family contains the input"
            f" aggregate {witness.input_stream!r} whose construction the"
            " monitor does not control"
        )
    return f"persistent backend forced ({witness!r})"  # pragma: no cover


def mutability_diagnostics(result: MutabilityResult) -> List[Diagnostic]:
    """Provenance of *result* as diagnostics.

    One ``MUT001``/``MUT002``/``MUT003`` note per (persistent stream,
    witness) pair, plus one ``MUT004``/``MUT005`` warning per recorded
    precision loss.
    """
    diags: List[Diagnostic] = []
    for stream, witnesses in sorted(result.witnesses.items()):
        for witness in witnesses:
            diags.append(
                Diagnostic(
                    code=_witness_code(witness),
                    severity=CATALOG[_witness_code(witness)][1],
                    stream=stream,
                    message=_witness_message(witness),
                    source="mutability",
                    witness=_witness_payload(witness),
                )
            )
    for u, v, cap in result.implication_unknowns:
        diags.append(
            Diagnostic(
                code="MUT004",
                severity=Severity.WARNING,
                stream=u,
                message=(
                    f"implication ev'({u}) → ev'({v}) undecided: prime-"
                    f"implicant expansion exceeded the cap ({cap});"
                    " assumed non-implication — streams may be persistent"
                    " only because of this precision loss"
                ),
                source="triggering",
                witness={
                    "rule": "implication-unknown",
                    "premise": u,
                    "conclusion": v,
                    "cap": cap,
                },
            )
        )
    for u, v, ancestor in result.alias_path_overflows:
        diags.append(
            Diagnostic(
                code="MUT005",
                severity=Severity.WARNING,
                stream=u,
                message=(
                    f"alias check {u} ≃ {v} degraded to 'potential alias':"
                    f" P/L path enumeration under ancestor {ancestor!r}"
                    " overflowed the path limit"
                ),
                source="aliasing",
                witness={
                    "rule": "alias-path-overflow",
                    "pair": [u, v],
                    "ancestor": ancestor,
                },
            )
        )
    return diags


def window_diagnostics(flat: FlatSpec) -> List[Diagnostic]:
    """Eligibility notes for specs built by the windowing macros.

    Reads the ``window_info`` metadata the macros attach (and flattening
    carries over): which streams maintain the aggregate by O(1) deltas
    (WIN001) vs. O(window) fold recomputation (WIN002), plus parameter
    combinations the macro ignored (WIN003).
    """
    info = getattr(flat, "window_info", None)
    if not info:
        return []
    diags: List[Diagnostic] = []
    describe = info.get("describe", info.get("kind", "window"))
    aggregate = info.get("aggregate", "?")
    for stream in info.get("delta_streams", ()):
        diags.append(
            Diagnostic(
                code="WIN001",
                severity=Severity.NOTE,
                stream=stream,
                message=(
                    f"{describe} {aggregate}: invertible aggregate maintained"
                    " by delta updates (add new, subtract expired)"
                ),
                source="window",
                witness={"rule": "delta-path", "aggregate": aggregate},
            )
        )
    for stream in info.get("fold_streams", ()):
        diags.append(
            Diagnostic(
                code="WIN002",
                severity=Severity.NOTE,
                stream=stream,
                message=(
                    f"{describe} {aggregate}: no inverse — recomputed by"
                    " folding over the window contents"
                ),
                source="window",
                witness={"rule": "fold-fallback", "aggregate": aggregate},
            )
        )
    output = info.get("output", "win")
    for conflict in info.get("conflicts", ()):
        diags.append(
            Diagnostic(
                code="WIN003",
                severity=Severity.WARNING,
                stream=output,
                message=f"{describe}: {conflict}",
                source="window",
                witness={"rule": "parameter-conflict"},
            )
        )
    return diags


def collect_diagnostics(
    flat: FlatSpec, result: Optional[MutabilityResult] = None
) -> List[Diagnostic]:
    """Lint warnings + analysis provenance for one specification."""
    if result is None:
        result = analyze_mutability(flat)
    diags = [lint_diagnostic(w) for w in lint(flat)]
    diags.extend(mutability_diagnostics(result))
    diags.extend(window_diagnostics(flat))
    return sorted(diags, key=lambda d: (d.code, d.stream, d.message))


# -- gating ------------------------------------------------------------------


def max_severity(diags: Iterable[Diagnostic]) -> Optional[Severity]:
    severities = [d.severity for d in diags]
    return max(severities) if severities else None


def strict_failures(diags: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Diagnostics that fail a ``--strict`` run (severity ≥ warning)."""
    return [d for d in diags if d.severity >= Severity.WARNING]


# -- serialisation -----------------------------------------------------------


def to_json(diags: Sequence[Diagnostic], indent: Optional[int] = 2) -> str:
    """The diagnostics as a JSON array (stable, ``json.loads``-safe)."""
    return json.dumps([d.to_dict() for d in diags], indent=indent)


def to_sarif(
    diags: Sequence[Diagnostic],
    tool_name: str = "repro-lint",
    spec_uri: str = "spec.tessla",
) -> Dict[str, Any]:
    """A SARIF 2.1.0 log object for code-scanning consumers.

    Streams have no source positions in the flattened representation,
    so results carry logical locations (the stream name) rather than
    physical regions.
    """
    rules = []
    for code in sorted({d.code for d in diags}):
        title = CATALOG.get(code, (code, Severity.NOTE))[0]
        rules.append({"id": code, "shortDescription": {"text": title}})
    results = [
        {
            "ruleId": d.code,
            "level": d.severity.sarif_level,
            "message": {"text": f"{d.stream}: {d.message}"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": spec_uri}
                    },
                    "logicalLocations": [
                        {"name": d.stream, "kind": "variable"}
                    ],
                }
            ],
            "properties": {"witness": d.witness, "source": d.source},
        }
        for d in diags
    ]
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
