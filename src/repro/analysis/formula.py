"""Positive boolean formulas over stream atoms (paper §IV-C).

The triggering approximation ``ev'`` maps each stream to a formula from
``B⁺(V)`` — conjunctions and disjunctions of stream names, without
negation, plus ``false`` for the empty stream.  The analysis needs one
query: is ``f → g`` a tautology?  For *monotone* formulas this holds iff
``g`` evaluates true under every **prime implicant** of ``f`` (every
assignment satisfying ``f`` dominates one of its implicants, and ``g``
is monotone), which is what :func:`implies` checks.

The problem is coNP-complete in general (the paper cites Bloniarz et
al.) and the DNF can blow up exponentially, so the implicant expansion
carries a size cap; on overflow :func:`implies` answers ``None``
("unknown") and callers must treat that conservatively — exactly the
paper's stance that the approximation "may cause some variables to be
implemented with persistent data structures while mutable ones would be
possible".
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set, Tuple

#: One prime implicant: the set of atoms that must be true.
Implicant = FrozenSet[str]


class Formula:
    """Base class; use the smart constructors below."""

    def atoms(self) -> Set[str]:
        raise NotImplementedError

    def evaluate(self, true_atoms: Set[str]) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return str(self)


class _False(Formula):
    __slots__ = ()

    def atoms(self) -> Set[str]:
        return set()

    def evaluate(self, true_atoms: Set[str]) -> bool:
        return False

    def __str__(self) -> str:
        return "false"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _False)

    def __hash__(self) -> int:
        return hash("false")


FALSE = _False()


class Atom(Formula):
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def atoms(self) -> Set[str]:
        return {self.name}

    def evaluate(self, true_atoms: Set[str]) -> bool:
        return self.name in true_atoms

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Atom) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("atom", self.name))


class _Nary(Formula):
    symbol = "?"

    __slots__ = ("children",)

    def __init__(self, children: Tuple[Formula, ...]) -> None:
        self.children = children

    def atoms(self) -> Set[str]:
        result: Set[str] = set()
        for child in self.children:
            result |= child.atoms()
        return result

    def __str__(self) -> str:
        inner = f" {self.symbol} ".join(
            f"({c})" if isinstance(c, _Nary) else str(c) for c in self.children
        )
        return inner

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and set(other.children) == set(self.children)
        )

    def __hash__(self) -> int:
        return hash((self.symbol, frozenset(self.children)))


class And(_Nary):
    symbol = "∧"

    def evaluate(self, true_atoms: Set[str]) -> bool:
        return all(c.evaluate(true_atoms) for c in self.children)


class Or(_Nary):
    symbol = "∨"

    def evaluate(self, true_atoms: Set[str]) -> bool:
        return any(c.evaluate(true_atoms) for c in self.children)


def conj(parts: Iterable[Formula]) -> Formula:
    """Smart conjunction: flattens, deduplicates, propagates ``false``."""
    flat: list = []
    seen = set()
    for part in parts:
        if part is FALSE or isinstance(part, _False):
            return FALSE
        for child in part.children if isinstance(part, And) else (part,):
            if child not in seen:
                seen.add(child)
                flat.append(child)
    if not flat:
        raise ValueError("empty conjunction (would be 'true', not positive)")
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(parts: Iterable[Formula]) -> Formula:
    """Smart disjunction: flattens, deduplicates, drops ``false``."""
    flat: list = []
    seen = set()
    for part in parts:
        if part is FALSE or isinstance(part, _False):
            continue
        for child in part.children if isinstance(part, Or) else (part,):
            if child not in seen:
                seen.add(child)
                flat.append(child)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


class ImplicantOverflow(Exception):
    """Internal: DNF expansion exceeded the size cap."""


def _absorb(implicants: Set[Implicant]) -> Set[Implicant]:
    """Remove non-minimal implicants (supersets of another implicant)."""
    result: Set[Implicant] = set()
    for cand in sorted(implicants, key=len):
        if not any(prev <= cand for prev in result):
            result.add(cand)
    return result


def prime_implicants(
    formula: Formula, cap: int = 4096
) -> Optional[Set[Implicant]]:
    """The minimal satisfying atom-sets of *formula*, or None on overflow."""
    try:
        return _implicants(formula, cap)
    except ImplicantOverflow:
        return None


def _implicants(formula: Formula, cap: int) -> Set[Implicant]:
    if isinstance(formula, _False):
        return set()
    if isinstance(formula, Atom):
        return {frozenset({formula.name})}
    if isinstance(formula, Or):
        union: Set[Implicant] = set()
        for child in formula.children:
            union |= _implicants(child, cap)
            if len(union) > cap:
                raise ImplicantOverflow
        return _absorb(union)
    assert isinstance(formula, And)
    product: Set[Implicant] = {frozenset()}
    for child in formula.children:
        child_imps = _implicants(child, cap)
        if not child_imps:  # conjunct is unsatisfiable
            return set()
        product = {a | b for a in product for b in child_imps}
        if len(product) > cap:
            raise ImplicantOverflow
        product = _absorb(product)
    return product


def implies(f: Formula, g: Formula, cap: int = 4096) -> Optional[bool]:
    """Is ``f → g`` a tautology?  ``None`` means "could not decide".

    Sound and complete for positive formulas (monotone reasoning over
    prime implicants), except that an implicant-expansion overflow
    yields ``None``; treat ``None`` as "not implied" for a conservative
    analysis.
    """
    if f == g:
        return True
    if isinstance(f, _False):
        return True
    implicants = prime_implicants(f, cap)
    if implicants is None:
        return None
    return all(g.evaluate(set(imp)) for imp in implicants)
