"""Positive boolean formulas over stream atoms (paper §IV-C).

The triggering approximation ``ev'`` maps each stream to a formula from
``B⁺(V)`` — conjunctions and disjunctions of stream names, without
negation, plus ``false`` for the empty stream.  The analysis needs one
query: is ``f → g`` a tautology?  For *monotone* formulas this holds iff
``g`` evaluates true under every **prime implicant** of ``f`` (every
assignment satisfying ``f`` dominates one of its implicants, and ``g``
is monotone), which is what :func:`implies` checks.

The problem is coNP-complete in general (the paper cites Bloniarz et
al.) and the DNF can blow up exponentially, so the implicant expansion
carries a size cap; on overflow :func:`implies` answers ``None``
("unknown") and callers must treat that conservatively — exactly the
paper's stance that the approximation "may cause some variables to be
implemented with persistent data structures while mutable ones would be
possible".

Hash-consing
------------

Formulas are **interned**: structurally equal formulas are the *same*
object (``Atom("x") is Atom("x")``; ``conj`` / ``disj`` normalise order
so ``x ∧ y`` and ``y ∧ x`` intern to one node).  Equality and hashing
are therefore O(1) identity operations, and the expensive queries —
:func:`prime_implicants` and :func:`implies` — are memoized in
module-level caches keyed by formula identity.  The O(V²) alias and
triggering queries of one analysis (and of repeated analyses over the
same specification shapes) thus share all implicant work instead of
recomputing the coNP expansion per query.  :func:`cache_stats` exposes
hit counts; :func:`clear_caches` drops the memo tables (the intern
tables themselves are kept — dropping them would break the identity
invariant for formulas still alive).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

#: One prime implicant: the set of atoms that must be true.
Implicant = FrozenSet[str]


class Formula:
    """Base class; use the smart constructors below.

    Instances are hash-consed: equality is identity.  Do not mutate.
    """

    __slots__ = ()

    def atoms(self) -> Set[str]:
        raise NotImplementedError

    def evaluate(self, true_atoms: Set[str]) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return str(self)


class _False(Formula):
    __slots__ = ()

    _instance: Optional["_False"] = None

    def __new__(cls) -> "_False":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def atoms(self) -> Set[str]:
        return set()

    def evaluate(self, true_atoms: Set[str]) -> bool:
        return False

    def __str__(self) -> str:
        return "false"


FALSE = _False()

_ATOMS: Dict[str, "Atom"] = {}
_NODES: Dict[Tuple[type, FrozenSet[Formula]], "_Nary"] = {}


class Atom(Formula):
    __slots__ = ("name",)

    def __new__(cls, name: str) -> "Atom":
        cached = _ATOMS.get(name)
        if cached is None:
            cached = super().__new__(cls)
            object.__setattr__(cached, "name", name)
            _ATOMS[name] = cached
        return cached

    def __init__(self, name: str) -> None:  # attributes set in __new__
        pass

    def atoms(self) -> Set[str]:
        return {self.name}

    def evaluate(self, true_atoms: Set[str]) -> bool:
        return self.name in true_atoms

    def __str__(self) -> str:
        return self.name


class _Nary(Formula):
    symbol = "?"

    __slots__ = ("children",)

    def __new__(cls, children: Tuple[Formula, ...]) -> "_Nary":
        key = (cls, frozenset(children))
        cached = _NODES.get(key)
        if cached is None:
            cached = super().__new__(cls)
            object.__setattr__(cached, "children", tuple(children))
            _NODES[key] = cached
        return cached

    def __init__(self, children: Tuple[Formula, ...]) -> None:
        pass

    def atoms(self) -> Set[str]:
        result: Set[str] = set()
        for child in self.children:
            result |= child.atoms()
        return result

    def __str__(self) -> str:
        inner = f" {self.symbol} ".join(
            f"({c})" if isinstance(c, _Nary) else str(c) for c in self.children
        )
        return inner


class And(_Nary):
    symbol = "∧"
    __slots__ = ()

    def evaluate(self, true_atoms: Set[str]) -> bool:
        return all(c.evaluate(true_atoms) for c in self.children)


class Or(_Nary):
    symbol = "∨"
    __slots__ = ()

    def evaluate(self, true_atoms: Set[str]) -> bool:
        return any(c.evaluate(true_atoms) for c in self.children)


def conj(parts: Iterable[Formula]) -> Formula:
    """Smart conjunction: flattens, deduplicates, propagates ``false``."""
    flat: list = []
    seen = set()
    for part in parts:
        if part is FALSE:
            return FALSE
        for child in part.children if isinstance(part, And) else (part,):
            if child not in seen:
                seen.add(child)
                flat.append(child)
    if not flat:
        raise ValueError("empty conjunction (would be 'true', not positive)")
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(parts: Iterable[Formula]) -> Formula:
    """Smart disjunction: flattens, deduplicates, drops ``false``."""
    flat: list = []
    seen = set()
    for part in parts:
        if part is FALSE:
            continue
        for child in part.children if isinstance(part, Or) else (part,):
            if child not in seen:
                seen.add(child)
                flat.append(child)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


class ImplicantOverflow(Exception):
    """Internal: DNF expansion exceeded the size cap."""


# -- memoization ------------------------------------------------------------

#: (formula, cap) → frozenset of implicants, or None on overflow.
_IMPLICANT_CACHE: Dict[Tuple[Formula, int], Optional[FrozenSet[Implicant]]] = {}
#: (premise, conclusion, cap) → True / False / None (unknown).
_IMPLIES_CACHE: Dict[Tuple[Formula, Formula, int], Optional[bool]] = {}

_STATS = {
    "implies_calls": 0,
    "implies_hits": 0,
    "implicant_calls": 0,
    "implicant_hits": 0,
}


def cache_stats() -> Dict[str, int]:
    """Counters for the memoized query caches (plus current sizes)."""
    stats = dict(_STATS)
    stats["implies_entries"] = len(_IMPLIES_CACHE)
    stats["implicant_entries"] = len(_IMPLICANT_CACHE)
    stats["interned_nodes"] = len(_ATOMS) + len(_NODES)
    return stats


def clear_caches() -> None:
    """Drop the memoized query results (keeps the intern tables)."""
    _IMPLICANT_CACHE.clear()
    _IMPLIES_CACHE.clear()
    for key in _STATS:
        _STATS[key] = 0


def _absorb(implicants: Set[Implicant]) -> Set[Implicant]:
    """Remove non-minimal implicants (supersets of another implicant)."""
    result: Set[Implicant] = set()
    for cand in sorted(implicants, key=len):
        if not any(prev <= cand for prev in result):
            result.add(cand)
    return result


def prime_implicants(
    formula: Formula, cap: int = 4096
) -> Optional[Set[Implicant]]:
    """The minimal satisfying atom-sets of *formula*, or None on overflow.

    Memoized on (formula identity, cap); a fresh mutable set is returned
    per call so callers may modify it freely.
    """
    cached = _cached_implicants(formula, cap)
    if cached is None:
        return None
    return set(cached)


def _cached_implicants(
    formula: Formula, cap: int
) -> Optional[FrozenSet[Implicant]]:
    key = (formula, cap)
    _STATS["implicant_calls"] += 1
    if key in _IMPLICANT_CACHE:
        _STATS["implicant_hits"] += 1
        return _IMPLICANT_CACHE[key]
    try:
        result: Optional[FrozenSet[Implicant]] = frozenset(
            _implicants(formula, cap)
        )
    except ImplicantOverflow:
        result = None
    _IMPLICANT_CACHE[key] = result
    return result


def _implicants(formula: Formula, cap: int) -> Set[Implicant]:
    # Memoized at sub-formula granularity too: hash-consing shares
    # sub-terms across ev' formulas, so And/Or children computed for one
    # query are reused verbatim by every later query that contains them.
    if isinstance(formula, _False):
        return set()
    if isinstance(formula, Atom):
        return {frozenset({formula.name})}
    if isinstance(formula, Or):
        union: Set[Implicant] = set()
        for child in formula.children:
            child_imps = _cached_implicants(child, cap)
            if child_imps is None:
                raise ImplicantOverflow
            union |= child_imps
            if len(union) > cap:
                raise ImplicantOverflow
        return _absorb(union)
    assert isinstance(formula, And)
    product: Set[Implicant] = {frozenset()}
    for child in formula.children:
        child_imps = _cached_implicants(child, cap)
        if child_imps is None:
            raise ImplicantOverflow
        if not child_imps:  # conjunct is unsatisfiable
            return set()
        product = {a | b for a in product for b in child_imps}
        if len(product) > cap:
            raise ImplicantOverflow
        product = _absorb(product)
    return product


def implies(f: Formula, g: Formula, cap: int = 4096) -> Optional[bool]:
    """Is ``f → g`` a tautology?  ``None`` means "could not decide".

    Sound and complete for positive formulas (monotone reasoning over
    prime implicants), except that an implicant-expansion overflow
    yields ``None``; treat ``None`` as "not implied" for a conservative
    analysis.  ``None`` is *only* ever returned on cap overflow, so a
    ``None`` answer is itself a precision-loss witness (surfaced as the
    ``MUT004`` diagnostic by the analysis layers).

    Memoized on (f, g, cap) formula identity.
    """
    if f is g:
        return True
    if isinstance(f, _False):
        return True
    key = (f, g, cap)
    _STATS["implies_calls"] += 1
    if key in _IMPLIES_CACHE:
        _STATS["implies_hits"] += 1
        return _IMPLIES_CACHE[key]
    implicants = _cached_implicants(f, cap)
    if implicants is None:
        result: Optional[bool] = None
    else:
        result = all(g.evaluate(set(imp)) for imp in implicants)
    _IMPLIES_CACHE[key] = result
    return result
