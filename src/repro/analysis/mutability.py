"""The mutability criterion and the overall algorithm (paper §IV-D/E).

Given a flat specification, decide which aggregate-carrying stream
variables can be implemented with mutable (in-place updated) data
structures, and compute the translation order that makes the maximal
such set valid — the paper's Fig. 8:

1. **Families** — union all Pass/Write/Last edges: variables connected
   by them must share a backend (Def. 7 rule 3, consistent mutability).
2. **No double write/reproduction** — for every write edge ``u → v``,
   every potential alias ``u'`` of ``u`` (found by walking up and down
   the Pass/Last subgraph) with a Write or Last out-edge to some
   ``v' ≠ v`` forces the family persistent (Def. 7 rule 1).
3. **Read-before-write constraints** — aliases ``u'`` read by ``v'``
   contribute a constraint edge ``(v', v)``: the read must be computed
   before the write (Def. 7 rule 2).
4. **Optimal ordering** — add the constraint edges to the usage graph;
   find the minimum-weight set of variable *families* whose constraint
   edges must be dropped (those become persistent — persistent
   structures may be written before being read) so the remaining graph
   is acyclic.  This weighted feedback-edge-group problem is
   NP-complete (reduction from Feedback Arc Set, paper §IV-E.2); we
   solve it exactly for up to ``exact_limit`` candidate families and
   fall back to a greedy heuristic beyond that.

Additional rule beyond the paper's text: families containing *input*
streams are forced persistent — the monitor does not control how the
environment constructed (and may reuse) input aggregates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..graph.order import translation_order
from ..graph.usage_graph import EdgeClass, UsageGraph, build_usage_graph
from ..lang.spec import FlatSpec
from ..structures import Backend
from .aliasing import AliasAnalysis
from .triggering import TriggeringAnalysis
from .unionfind import UnionFind

Family = FrozenSet[str]


@dataclass(frozen=True)
class ReadBeforeWrite:
    """A rule-2 constraint: *reader* must be computed before *writer*.

    ``written`` is the variable whose structure is at stake (the source
    of the write edge); its family is the group that must turn
    persistent if the constraint cannot be ordered.
    """

    reader: str
    writer: str
    written: str

    @property
    def edge(self) -> Tuple[str, str]:
        return (self.reader, self.writer)


@dataclass(frozen=True)
class Rule1Violation:
    """Why a family was forced persistent in step 2.

    ``alias_reason`` (when present) is the :meth:`AliasAnalysis
    .explain_alias` witness for the ``written ≃ alias`` pair — the
    provenance of the aliasing claim itself (e.g. the replicating last
    or path-enumeration overflow that prevented a safety proof).
    """

    written: str  # u of the offending write edge u -> v
    write_target: str  # v
    alias: str  # u' ≃ u
    conflict: str  # v' ≠ v with u' -W/L-> v'
    conflict_class: EdgeClass
    alias_reason: Optional[Dict[str, Any]] = field(
        default=None, compare=False
    )

    @property
    def edge(self) -> Tuple[str, str]:
        """The offending conflict edge ``alias -> conflict``."""
        return (self.alias, self.conflict)


@dataclass(frozen=True)
class InputAggregateWitness:
    """A family was forced persistent because it contains an input
    aggregate — the monitor does not control how the environment
    constructed (and may reuse) input data structures."""

    input_stream: str


@dataclass(frozen=True)
class OrderingConflict:
    """A family turned persistent in step 4: its read-before-write
    constraints participate in a dependency cycle, so no translation
    order can satisfy them; dropping the family (persistent structures
    may be written before being read) was the minimum-weight fix."""

    family: Family
    dropped: Tuple[ReadBeforeWrite, ...]

    @property
    def edges(self) -> List[Tuple[str, str]]:
        return [c.edge for c in self.dropped]


#: Union of the witness record types attached to persistent streams.
PersistenceWitness = Any  # Rule1Violation | InputAggregateWitness | OrderingConflict


@dataclass
class MutabilityResult:
    """Outcome of the analysis: the mutability set and the order."""

    graph: UsageGraph
    mutable: FrozenSet[str]
    persistent: FrozenSet[str]
    families: List[Family]
    order: List[str]
    constraints: List[ReadBeforeWrite] = field(default_factory=list)
    active_constraints: List[ReadBeforeWrite] = field(default_factory=list)
    rule1_violations: List[Rule1Violation] = field(default_factory=list)
    dropped_families: List[Family] = field(default_factory=list)
    used_exact_step4: bool = True
    #: stream name → the witnesses that forced its family persistent;
    #: every stream in ``persistent`` has a non-empty entry.
    witnesses: Dict[str, List[PersistenceWitness]] = field(
        default_factory=dict
    )
    #: ``ev'`` implication queries that hit the implicant cap (u, v, cap).
    implication_unknowns: List[Tuple[str, str, int]] = field(
        default_factory=list
    )
    #: alias path enumerations that hit ``path_limit`` (u, v, ancestor).
    alias_path_overflows: List[Tuple[str, str, str]] = field(
        default_factory=list
    )

    def backend_for(self, name: str) -> Backend:
        """Collection backend for the stream *name* (Backend.PERSISTENT
        for everything outside the mutability set)."""
        return Backend.MUTABLE if name in self.mutable else Backend.PERSISTENT

    def witness_for(self, name: str) -> List[PersistenceWitness]:
        """Why stream *name* was classified persistent (empty if it
        wasn't, i.e. it is mutable or carries no aggregate data)."""
        return list(self.witnesses.get(name, ()))

    def summary(self) -> str:
        lines = [
            f"mutable   ({len(self.mutable)}): {sorted(self.mutable)}",
            f"persistent({len(self.persistent)}): {sorted(self.persistent)}",
            f"order: {self.order}",
        ]
        if self.rule1_violations:
            lines.append("rule-1 violations:")
            lines.extend(
                f"  {v.written} -> {v.write_target} vs alias {v.alias}"
                f" -[{v.conflict_class.value}]-> {v.conflict}"
                for v in self.rule1_violations
            )
        if self.active_constraints:
            lines.append("read-before-write constraints:")
            lines.extend(
                f"  {c.reader} < {c.writer}" for c in self.active_constraints
            )
        return "\n".join(lines)


class MutabilityAnalysis:
    """Single-use driver object for the Fig. 8 algorithm."""

    def __init__(
        self,
        flat: FlatSpec,
        graph: Optional[UsageGraph] = None,
        exact_limit: int = 16,
        assume_all_alias: bool = False,
        implicant_cap: int = 4096,
    ) -> None:
        from ..obs.trace import TRACER

        self.flat = flat
        if graph is None:
            # Edge classification happens while the usage graph is
            # built, so its cost is reported under this span.
            with TRACER.span("compile.usage_graph"):
                graph = build_usage_graph(flat)
        self.graph = graph
        with TRACER.span("compile.triggering"):
            self.triggering = TriggeringAnalysis(
                flat, implicant_cap=implicant_cap
            )
        with TRACER.span("compile.aliasing"):
            self.alias = AliasAnalysis(self.graph, self.triggering)
        self.exact_limit = exact_limit
        #: Ablation switch: skip the Def. 6 aliasing-safety reasoning and
        #: treat every P/L-connected pair as a potential alias.
        self.assume_all_alias = assume_all_alias
        self.complex_nodes = set(self.graph.complex_nodes())

    # -- step 1 ---------------------------------------------------------

    def _families(self) -> UnionFind:
        uf = UnionFind(self.complex_nodes)
        for edge in self.graph.edges_of_class(
            EdgeClass.WRITE, EdgeClass.PASS, EdgeClass.LAST
        ):
            if edge.dst in self.complex_nodes:
                uf.union(edge.src, edge.dst)
        return uf

    # -- steps 2 & 3 ------------------------------------------------------

    def _aliases_of(self, u: str) -> Set[str]:
        """Every potential alias of *u*, found via common P/L ancestors."""
        candidates: Set[str] = set()
        for ancestor in self.graph.pl_ancestors(u):
            candidates |= self.graph.pl_descendants(ancestor)
        if self.assume_all_alias:
            return {node for node in candidates if node in self.complex_nodes}
        return {
            node
            for node in candidates
            if node in self.complex_nodes and self.alias.potential_alias(u, node)
        }

    def _alias_reason(self, u: str, u2: str) -> Optional[Dict[str, Any]]:
        """Provenance for the ``u ≃ u2`` claim behind a rule-1 violation."""
        if self.assume_all_alias:
            return {"kind": "assumed", "pair": [u, u2]}
        return self.alias.explain_alias(u, u2)

    def run(self) -> MutabilityResult:
        from ..obs.trace import TRACER

        with TRACER.span("compile.mutability"):
            return self._run()

    def _run(self) -> MutabilityResult:
        from ..obs.trace import TRACER

        uf = self._families()
        persistent_roots: Set[str] = set()
        rule1: List[Rule1Violation] = []
        constraints: List[ReadBeforeWrite] = []
        seen_constraints: Set[Tuple[str, str, str]] = set()
        #: family root → why that family was forced persistent
        reasons: Dict[str, List[PersistenceWitness]] = {}

        def force_persistent(root: str, witness: PersistenceWitness) -> None:
            persistent_roots.add(root)
            reasons.setdefault(root, []).append(witness)

        # Families containing input aggregates are never ours to mutate.
        for name in self.flat.inputs:
            if name in self.complex_nodes:
                force_persistent(uf.find(name), InputAggregateWitness(name))

        for write in self.graph.write_edges:
            u, v = write.src, write.dst
            for u2 in sorted(self._aliases_of(u)):
                for out in self.graph.out_edges(u2):
                    if out.cls in (EdgeClass.WRITE, EdgeClass.LAST):
                        if out.dst != v:
                            violation = Rule1Violation(
                                u, v, u2, out.dst, out.cls,
                                alias_reason=self._alias_reason(u, u2),
                            )
                            force_persistent(uf.find(u), violation)
                            rule1.append(violation)
                    elif out.cls is EdgeClass.READ:
                        if out.dst == v:
                            # the writer itself reads an alias: no order
                            # can separate read from write
                            violation = Rule1Violation(
                                u, v, u2, out.dst, out.cls,
                                alias_reason=self._alias_reason(u, u2),
                            )
                            force_persistent(uf.find(u), violation)
                            rule1.append(violation)
                            continue
                        key = (out.dst, v, uf.find(u))
                        if key not in seen_constraints:
                            seen_constraints.add(key)
                            constraints.append(
                                ReadBeforeWrite(out.dst, v, u)
                            )

        # -- step 4 -----------------------------------------------------

        active = [
            c for c in constraints if uf.find(c.written) not in persistent_roots
        ]
        chosen_roots, used_exact = self._min_weight_removal(uf, active)
        for root in sorted(chosen_roots):
            dropped = tuple(c for c in active if uf.find(c.written) == root)
            force_persistent(root, OrderingConflict(uf.family(root), dropped))
        final_constraints = [
            c for c in active if uf.find(c.written) not in persistent_roots
        ]

        persistent_nodes = frozenset(
            n for n in self.complex_nodes if uf.find(n) in persistent_roots
        )
        mutable_nodes = frozenset(self.complex_nodes - persistent_nodes)
        with TRACER.span("compile.translation_order"):
            order = translation_order(
                self.graph, extra=[c.edge for c in final_constraints]
            )
        return MutabilityResult(
            graph=self.graph,
            mutable=mutable_nodes,
            persistent=persistent_nodes,
            families=uf.families(),
            order=order,
            constraints=constraints,
            active_constraints=final_constraints,
            rule1_violations=rule1,
            dropped_families=[uf.family(root) for root in sorted(chosen_roots)],
            used_exact_step4=used_exact,
            witnesses={
                n: list(reasons.get(uf.find(n), ()))
                for n in sorted(persistent_nodes)
            },
            implication_unknowns=self.triggering.implication_unknowns(),
            alias_path_overflows=sorted(set(self.alias.path_overflows)),
        )

    # -- step 4 core: minimum-weight constraint-family removal ------------

    def _acyclic_with(
        self, constraints: Sequence[ReadBeforeWrite]
    ) -> bool:
        try:
            translation_order(self.graph, extra=[c.edge for c in constraints])
            return True
        except Exception:
            return False

    def _min_weight_removal(
        self, uf: UnionFind, active: List[ReadBeforeWrite]
    ) -> Tuple[Set[str], bool]:
        """Choose the cheapest set of family roots whose constraints to
        drop (turning those families persistent) so ordering succeeds."""
        if self._acyclic_with(active):
            return set(), True
        roots = sorted({uf.find(c.written) for c in active})
        weights = {root: len(uf.family(root)) for root in roots}

        def remaining(removed: Set[str]) -> List[ReadBeforeWrite]:
            return [c for c in active if uf.find(c.written) not in removed]

        if len(roots) <= self.exact_limit:
            options = []
            for size in range(1, len(roots) + 1):
                for combo in itertools.combinations(roots, size):
                    options.append(
                        (sum(weights[r] for r in combo), size, combo)
                    )
            options.sort()
            for _weight, _size, combo in options:
                removed = set(combo)
                if self._acyclic_with(remaining(removed)):
                    return removed, True
            raise AssertionError(  # pragma: no cover
                "removing all constraint families must yield a valid order"
            )
        # Greedy heuristic: repeatedly drop the lightest family that
        # still has active constraints until the graph orders.
        removed: Set[str] = set()
        for root in sorted(roots, key=lambda r: (weights[r], r)):
            removed.add(root)
            if self._acyclic_with(remaining(removed)):
                return removed, False
        return set(roots), False  # pragma: no cover


def analyze_mutability(
    flat: FlatSpec,
    graph: Optional[UsageGraph] = None,
    exact_limit: int = 16,
    implicant_cap: int = 4096,
) -> MutabilityResult:
    """Run the full aggregate-update analysis on *flat*."""
    return MutabilityAnalysis(
        flat, graph, exact_limit, implicant_cap=implicant_cap
    ).run()
