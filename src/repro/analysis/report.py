"""Human-readable analysis reports and GraphViz export.

Renders everything the paper's §IV develops for a specification — the
classified usage graph, triggering formulas, replicating lasts,
potential-alias pairs, rule violations, the mutability set and the
chosen translation order — as text (for CLI / debugging) or DOT (for
visualisation; mutable families green, persistent red, as a Fig. 3/7
style picture).
"""

from __future__ import annotations

from typing import List, Optional

from ..graph.usage_graph import EdgeClass, UsageGraph
from ..lang.ast import Last
from ..lang.spec import FlatSpec
from .aliasing import AliasAnalysis
from .diagnostics import Diagnostic, collect_diagnostics
from .mutability import MutabilityResult, analyze_mutability
from .triggering import TriggeringAnalysis


class AnalysisReport:
    """Bundles every analysis artifact for one specification."""

    def __init__(self, flat: FlatSpec, result: Optional[MutabilityResult] = None):
        self.flat = flat
        self.result = result or analyze_mutability(flat)
        self.graph: UsageGraph = self.result.graph
        self.triggering = TriggeringAnalysis(flat)
        self.alias = AliasAnalysis(self.graph, self.triggering)
        self._diagnostics: Optional[List[Diagnostic]] = None

    # -- text ---------------------------------------------------------------

    def _equations_section(self) -> List[str]:
        lines = ["flattened equations:"]
        for name in self.result.order:
            if name in self.flat.inputs:
                lines.append(f"  in  {name}: {self.flat.types[name]}")
            else:
                lines.append(
                    f"  def {name}: {self.flat.types[name]}"
                    f" = {self.flat.definitions[name]}"
                )
        return lines

    def _edges_section(self) -> List[str]:
        lines = ["classified edges (W/R/L/P; --> marks special edges):"]
        classified = [
            e for e in self.graph.edges if e.cls is not EdgeClass.PLAIN
        ]
        lines.extend(f"  {edge}" for edge in classified)
        if not classified:
            lines.append("  (none — no aggregate data flows)")
        return lines

    def _triggering_section(self) -> List[str]:
        lines = ["triggering formulas ev'(s) for aggregate streams:"]
        complexes = self.graph.complex_nodes()
        for name in complexes:
            lines.append(f"  ev'({name}) = {self.triggering.formula(name)}")
        if not complexes:
            lines.append("  (no aggregate streams)")
        return lines

    def _aliasing_section(self) -> List[str]:
        lines = []
        replicating = self.alias.replicating_lasts()
        lines.append(
            "replicating lasts: "
            + (", ".join(replicating) if replicating else "none")
        )
        complexes = self.graph.complex_nodes()
        pairs = [
            (a, b)
            for i, a in enumerate(complexes)
            for b in complexes[i + 1:]
            if self.alias.potential_alias(a, b)
        ]
        lines.append(
            "potential aliases: "
            + (", ".join(f"{a}≃{b}" for a, b in pairs) if pairs else "none")
        )
        return lines

    def _mutability_section(self) -> List[str]:
        result = self.result
        lines = [
            f"mutable    ({len(result.mutable)}): "
            + (", ".join(sorted(result.mutable)) or "∅"),
            f"persistent ({len(result.persistent)}): "
            + (", ".join(sorted(result.persistent)) or "∅"),
        ]
        if result.rule1_violations:
            lines.append("rule-1 violations (double write/reproduction):")
            lines.extend(
                f"  write {v.written} -> {v.write_target} conflicts with"
                f" alias {v.alias} -[{v.conflict_class.value}]-> {v.conflict}"
                for v in result.rule1_violations
            )
        if result.active_constraints:
            lines.append("read-before-write constraints (satisfied by the order):")
            lines.extend(
                f"  {c.reader} < {c.writer}" for c in result.active_constraints
            )
        if result.dropped_families:
            lines.append("families dropped to persistent by step 4:")
            lines.extend(
                "  {" + ", ".join(sorted(f)) + "}"
                for f in result.dropped_families
            )
        lines.append("translation order: " + " < ".join(result.order))
        return lines

    def _diagnostics_section(self) -> List[str]:
        lines = ["diagnostics:"]
        diags = self.diagnostics()
        if diags:
            lines.extend(f"  {diag}" for diag in diags)
        else:
            lines.append("  (none)")
        return lines

    def diagnostics(self) -> List[Diagnostic]:
        """Unified lint + mutability-provenance diagnostics (cached)."""
        if self._diagnostics is None:
            self._diagnostics = collect_diagnostics(self.flat, self.result)
        return list(self._diagnostics)

    def text(self) -> str:
        """The full report as plain text."""
        sections = [
            self._equations_section(),
            self._edges_section(),
            self._triggering_section(),
            self._aliasing_section(),
            self._mutability_section(),
            self._diagnostics_section(),
        ]
        return "\n\n".join("\n".join(section) for section in sections)

    # -- DOT ------------------------------------------------------------------

    def dot(self) -> str:
        """GraphViz rendering with the mutability verdict colour-coded."""
        lines = ["digraph analysis {", "  rankdir=LR;"]
        for node in self.graph.nodes:
            if node in self.result.mutable:
                colour = ', style=filled, fillcolor="palegreen"'
            elif node in self.result.persistent:
                colour = ', style=filled, fillcolor="lightcoral"'
            else:
                colour = ""
            shape = "box" if self.flat.types[node].is_complex else "ellipse"
            lines.append(f'  "{node}" [shape={shape}{colour}];')
        for edge in self.graph.edges:
            style = "dashed" if edge.special else "solid"
            label = edge.cls.value if edge.cls is not EdgeClass.PLAIN else ""
            lines.append(
                f'  "{edge.src}" -> "{edge.dst}"'
                f' [style={style}, label="{label}"];'
            )
        for constraint in self.result.active_constraints:
            lines.append(
                f'  "{constraint.reader}" -> "{constraint.writer}"'
                ' [color=blue, style=dotted, label="before"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def last_streams(self) -> List[str]:
        """All streams defined by ``last`` (for diagnostics)."""
        return [
            name
            for name, expr in self.flat.definitions.items()
            if isinstance(expr, Last)
        ]


def report(flat: FlatSpec) -> AnalysisReport:
    """Build an :class:`AnalysisReport` (type-checking *flat* if needed)."""
    return AnalysisReport(flat)
