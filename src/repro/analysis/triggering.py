"""Triggering-behaviour approximation ``ev'`` (paper §IV-C).

For every stream we compute a positive boolean formula over stream
atoms that describes *when the stream has events*:

* ``ev'(nil) = false``
* ``ev'(time(x)) = ev'(x)``
* ``ev'(lift(f)(x₁…xₙ))`` — the ALL pattern gives the conjunction, the
  ANY pattern the disjunction of the argument formulas; CUSTOM functions
  with an exact trigger spec get the corresponding combination, all
  others become atoms
* ``ev'(last(x, y)) = ev'(y)`` *if x is always initialized*
* everything else (inputs, delays, uninitialized lasts, unit) is an atom

An implication ``ev'(u) → ev'(v)`` being a tautology proves
``∀I: ev(u) \\ {0} ⊆ ev(v)`` — timestamp 0 is excluded, which is sound
because the analysis only asks this for ``last`` streams on the left,
and lasts never fire at 0.

The *always initialized* side analysis is the paper's "simple graph
analysis where it is tested if every value parameter of a last node has
a direct connection to a unit node without a filtering operation in
between": a stream is always-initialized when it provably has an event
at timestamp 0 (unit and anything strictly derived from it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..lang.ast import Delay, Last, Lift, Nil, TimeExpr, UnitExpr
from ..lang.builtins import TriggerSpec
from ..lang.spec import FlatSpec
from .formula import FALSE, Atom, Formula, conj, disj, implies


class TriggeringError(Exception):
    """Raised on malformed trigger specs or unexpected recursion."""


def always_initialized(flat: FlatSpec) -> Set[str]:
    """Streams guaranteed to carry an event at timestamp 0.

    Least fixpoint of: ``unit`` is initialized; ``time`` propagates;
    a lift is initialized when its *exact trigger spec* evaluates true
    under the arguments' initializations (ALL → all, ANY/merge → any;
    value-dependent functions like ``filter`` never are).
    """
    initialized: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, expr in flat.definitions.items():
            if name in initialized:
                continue
            if _initialized_now(expr, initialized):
                initialized.add(name)
                changed = True
    return initialized


def _initialized_now(expr, initialized: Set[str]) -> bool:
    if isinstance(expr, UnitExpr):
        return True
    if isinstance(expr, TimeExpr):
        return expr.operand.name in initialized
    if isinstance(expr, Lift):
        trigger = expr.func.trigger
        if trigger is None:
            return False
        flags = [arg.name in initialized for arg in expr.args]
        return _eval_trigger(trigger, flags, expr.func.name)
    return False  # nil, last, delay, inputs


def _eval_trigger(spec: TriggerSpec, flags, func_name: str) -> bool:
    if isinstance(spec, int):
        try:
            return flags[spec]
        except IndexError:
            raise TriggeringError(
                f"{func_name}: trigger index {spec} out of range"
            ) from None
    if isinstance(spec, tuple) and spec and spec[0] in ("and", "or"):
        parts = [_eval_trigger(s, flags, func_name) for s in spec[1:]]
        return all(parts) if spec[0] == "and" else any(parts)
    raise TriggeringError(f"{func_name}: malformed trigger spec {spec!r}")


class TriggeringAnalysis:
    """Computes and caches ``ev'`` formulas and implication queries.

    ``implicant_cap`` bounds the prime-implicant expansion of the
    tautology check; queries that overflow it are answered ``False``
    (conservative) and recorded in :meth:`implication_unknowns` so the
    precision loss is auditable instead of silent.
    """

    def __init__(self, flat: FlatSpec, implicant_cap: int = 4096) -> None:
        self.flat = flat
        self.implicant_cap = implicant_cap
        self.initialized = always_initialized(flat)
        self._formulas: Dict[str, Formula] = {}
        self._visiting: Set[str] = set()
        self._implications: Dict[tuple, Optional[bool]] = {}
        self._unknown: Dict[Tuple[str, str], int] = {}

    def formula(self, name: str) -> Formula:
        """``ev'`` of the stream *name*."""
        cached = self._formulas.get(name)
        if cached is not None:
            return cached
        if name in self._visiting:
            # Should be impossible for well-formed specs (cycles go
            # through last/delay first arguments, which we never follow);
            # degrade to an atom rather than looping.
            return Atom(name)
        self._visiting.add(name)
        try:
            result = self._compute(name)
        finally:
            self._visiting.discard(name)
        self._formulas[name] = result
        return result

    def _compute(self, name: str) -> Formula:
        if name in self.flat.inputs:
            return Atom(name)
        expr = self.flat.definitions[name]
        if isinstance(expr, Nil):
            return FALSE
        if isinstance(expr, UnitExpr):
            return Atom(name)
        if isinstance(expr, TimeExpr):
            return self.formula(expr.operand.name)
        if isinstance(expr, Last):
            if expr.value.name in self.initialized:
                return self.formula(expr.trigger.name)
            return Atom(name)
        if isinstance(expr, Delay):
            return Atom(name)
        assert isinstance(expr, Lift)
        trigger = expr.func.trigger
        if trigger is None:
            return Atom(name)
        return self._from_trigger(trigger, expr, name)

    def _from_trigger(self, spec: TriggerSpec, expr: Lift, name: str) -> Formula:
        if isinstance(spec, int):
            try:
                arg = expr.args[spec]
            except IndexError:
                raise TriggeringError(
                    f"{expr.func.name}: trigger index {spec} out of range"
                ) from None
            return self.formula(arg.name)
        if isinstance(spec, tuple) and spec and spec[0] in ("and", "or"):
            parts = [self._from_trigger(s, expr, name) for s in spec[1:]]
            return conj(parts) if spec[0] == "and" else disj(parts)
        raise TriggeringError(
            f"{expr.func.name}: malformed trigger spec {spec!r}"
        )

    def implies_events(self, u: str, v: str) -> bool:
        """Conservatively: does every event of *u* imply one of *v*?

        True only when ``ev'(u) → ev'(v)`` is provably a tautology;
        "unknown" (formula blow-up) counts as False.
        """
        key = (u, v)
        cached = self._implications.get(key, _MISSING)
        if cached is not _MISSING:
            return bool(cached)
        result = implies(self.formula(u), self.formula(v), cap=self.implicant_cap)
        self._implications[key] = result
        if result is None:
            self._unknown[key] = self.implicant_cap
        return bool(result)

    def implication_unknowns(self) -> List[Tuple[str, str, int]]:
        """Queries ``ev'(u) → ev'(v)`` that hit the implicant cap.

        Each entry ``(u, v, cap)`` is a precision-loss witness: the
        analysis assumed non-implication because the coNP check gave up,
        not because the implication is refuted.
        """
        return sorted((u, v, cap) for (u, v), cap in self._unknown.items())


_MISSING = object()
