"""Union-Find over stream names (paper §IV-E step 1 suggests exactly
this structure for managing the consistent-mutability variable
families)."""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, TypeVar

T = TypeVar("T", bound=Hashable)


class UnionFind:
    """Disjoint sets with path compression and union by size."""

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: Dict[T, T] = {}
        self._size: Dict[T, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: T) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def __contains__(self, item: T) -> bool:
        return item in self._parent

    def find(self, item: T) -> T:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: T, b: T) -> None:
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]

    def same(self, a: T, b: T) -> bool:
        return self.find(a) == self.find(b)

    def family(self, item: T) -> FrozenSet[T]:
        """All members of *item*'s set."""
        root = self.find(item)
        return frozenset(x for x in self._parent if self.find(x) == root)

    def families(self) -> List[FrozenSet[T]]:
        """All disjoint sets."""
        by_root: Dict[T, set] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return [frozenset(members) for members in by_root.values()]
