"""The single-entry public API: ``compile`` and ``run``.

Historically the project grew four overlapping entry points —
``compile_spec`` (eight keywords), ``MonitorBase.run``,
``CompiledSpec.run`` and ``HardenedRunner`` (another seven keywords) —
each with a different slice of the option space.  This module replaces
that sprawl with two calls and two frozen option dataclasses:

>>> from repro import api
>>> monitor = api.compile(source, api.CompileOptions(engine="plan"))
>>> report = api.run(monitor, events, api.RunOptions(batch_size=4096))

* :class:`CompileOptions` — everything that shapes the compiled
  monitor (analysis mode, backend override, execution engine, error
  policy, alias guard, plan cache).  All result-shaping options are
  part of the compiled spec's fingerprint, which keys both the on-disk
  plan cache and the durable checkpoints.
* :class:`RunOptions` — everything that shapes one run (end time,
  batch size, input validation, checkpointing/resume, tolerant
  ingestion policies).
* :class:`Monitor` — the compiled artifact ``compile`` returns: a thin
  handle around the engine-room :class:`~repro.compiler.pipeline.CompiledSpec`
  exposing fingerprint, generated source, diagnostics and fresh
  monitor instances.
* :func:`run` — drives a :class:`Monitor` over events (an iterable of
  ``(ts, stream, value)`` tuples or a mapping of per-stream traces)
  through a :class:`~repro.compiler.runtime.MonitorRunner` and returns
  the :class:`~repro.compiler.runtime.RunReport`.

The legacy entry points still work but emit ``DeprecationWarning`` and
delegate here (or to the engine-room functions this module wraps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from .compiler.pipeline import CompiledSpec, build_compiled_spec
from .compiler.plancache import PlanCache
from .compiler.runtime import MonitorRunner, RunReport
from .errors import ErrorPolicy, coerce_policy
from .lang.spec import FlatSpec, Specification
from .structures import Backend

__all__ = [
    "CompileOptions",
    "RunOptions",
    "Monitor",
    "compile",
    "run",
    "run_many",
]

_ENGINES = ("auto", "codegen", "interpreted", "plan", "vector")
_PARTITION_MODES = ("off", "auto")
_POOL_BACKENDS = ("process", "thread")
_POOL_TRANSPORTS = ("auto", "shm", "pipe")


@dataclass(frozen=True)
class CompileOptions:
    """Everything that shapes a compiled monitor.

    String conveniences are coerced on construction: ``backend`` takes
    a :class:`~repro.structures.Backend` or its lowercase name,
    ``error_policy`` an :class:`~repro.errors.ErrorPolicy` or its
    string value.
    """

    #: Run the paper's mutability analysis (``False`` — the
    #: exclusively-persistent baseline).  Also accepts a mode string:
    #: ``"none"`` (no analysis), ``"mutability"`` (analysis only, the
    #: ``True`` default) or ``"rewrite"``/``"full"`` (analysis plus the
    #: spec-level rewrite optimizer, i.e. ``rewrite=True``).
    optimize: Union[bool, str] = True
    #: Force one backend everywhere (e.g. ``"copying"`` for the
    #: naive-copy ablation); overrides ``optimize``.
    backend: Union[Backend, str, None] = None
    #: Execution engine: ``"auto"`` (the default — resolve per spec:
    #: the columnar :mod:`vector <repro.compiler.vector>` engine when
    #: every output-reachable stream family is vector-eligible and
    #: numpy is importable, else ``"plan"``), or one of the explicit
    #: engines ``"codegen"``, ``"interpreted"``, ``"plan"``,
    #: ``"vector"``.  The resolved engine is observable as
    #: :attr:`Monitor.engine_resolved`; per-family fallbacks surface as
    #: ``VEC001`` diagnostics.
    engine: str = "auto"
    #: Hardened error-propagating evaluation (``None`` — seed-exact).
    error_policy: Union[ErrorPolicy, str, None] = None
    #: Swap mutable backends for alias-guarded twins (sanitizer).
    alias_guard: bool = False
    #: Run the spec-level rewrite optimizer (:mod:`repro.opt`) before
    #: the mutability analysis: semantics-preserving normalizations
    #: certified to never demote a mutable stream, surfaced as
    #: ``OPT00x`` diagnostics.
    rewrite: bool = False
    #: Deprecated (subsumed by ``rewrite`` — the optimizer's OPT005
    #: dead-stream rule): remove streams that cannot influence any
    #: output.
    prune_dead: bool = False
    #: Name of the generated monitor class.
    class_name: str = "GeneratedMonitor"
    #: Plan-cache directory (or a :class:`PlanCache`): persist and
    #: reuse the analysis outputs across processes.
    plan_cache: Union[str, PlanCache, None] = None

    def __post_init__(self) -> None:
        if isinstance(self.optimize, str):
            mode = self.optimize.lower()
            if mode == "none":
                object.__setattr__(self, "optimize", False)
            elif mode == "mutability":
                object.__setattr__(self, "optimize", True)
            elif mode in ("rewrite", "full"):
                object.__setattr__(self, "optimize", True)
                object.__setattr__(self, "rewrite", True)
            else:
                raise ValueError(
                    f"unknown optimize mode {self.optimize!r}; expected"
                    " one of ['none', 'mutability', 'rewrite', 'full']"
                    " or a bool"
                )
        if isinstance(self.backend, str):
            try:
                coerced = Backend[self.backend.upper()]
            except KeyError:
                names = sorted(b.name.lower() for b in Backend)
                raise ValueError(
                    f"unknown backend {self.backend!r}; expected one of"
                    f" {names}"
                ) from None
            object.__setattr__(self, "backend", coerced)
        object.__setattr__(
            self, "error_policy", coerce_policy(self.error_policy)
        )
        if self.engine not in _ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of"
                f" {_ENGINES}"
            )

    def build_kwargs(self) -> Dict[str, Any]:
        """The engine-room ``build_compiled_spec`` keyword arguments.

        Used wherever a compilation must be *replayed* with identical
        result-shaping options — e.g. compiling the sub-specifications
        of a partition plan (see :mod:`repro.parallel`).
        """
        return {
            "optimize": self.optimize,
            "backend_override": self.backend,
            "class_name": self.class_name,
            # The partitioned flat is already final: pruning and the
            # rewrite pass (if any) ran on the whole spec before it was
            # split, so replays must not transform it again.
            "prune_dead": False,
            "rewrite": False,
            "engine": self.engine,
            "error_policy": self.error_policy,
            "alias_guard": self.alias_guard,
            "plan_cache": self.plan_cache,
        }


@dataclass(frozen=True)
class RunOptions:
    """Everything that shapes one run of a compiled monitor."""

    #: Bound for ``delay`` streams after end of input.
    end_time: Optional[int] = None
    #: Drive the monitor's ``feed_batch`` hot path in chunks of
    #: roughly this many events (``None`` — per-event feeding).
    batch_size: Optional[int] = None
    #: Type-check every input event against the declared types.
    validate_inputs: bool = False
    #: Write durable checkpoints into this directory.
    checkpoint_dir: Optional[str] = None
    #: Checkpoint period in consumed input events.
    checkpoint_every: int = 1000
    #: How many checkpoint files to retain.
    checkpoint_keep: int = 3
    #: Restart from the newest valid checkpoint in ``checkpoint_dir``.
    resume: bool = False
    #: Tolerant-ingestion policies (see
    #: :class:`~repro.semantics.traceio.IngestPolicy`).
    on_malformed: str = "raise"
    on_unknown_stream: str = "raise"
    on_out_of_order: str = "raise"
    max_skew: int = 0
    #: Worker/thread count for the parallel subsystem: partitions per
    #: batch under ``partition="auto"``, worker processes in
    #: :func:`run_many`.  ``1`` — sequential, no pool spin-up.
    jobs: int = 1
    #: ``"auto"`` — split the spec into alias-closed partitions and
    #: execute them concurrently per timestamp batch (falls back to
    #: the sequential engine when the spec is one component);
    #: ``"off"`` — the single-monitor path.
    partition: str = "off"
    #: Record per-stream copy/in-place counters for this run (see
    #: :mod:`repro.obs`).  The first metrics run builds an instrumented
    #: twin of the compiled monitor (memoized on the :class:`Monitor`);
    #: uninstrumented runs keep executing the original, unwrapped code.
    #: The run's snapshot lands in ``RunReport.metrics`` and accumulates
    #: in :meth:`Monitor.metrics`.
    metrics: bool = False
    #: Worker backend for :func:`run_many`: ``"process"`` — supervised
    #: forked workers (heartbeats, restarts, the only way pure-Python
    #: engines scale past the GIL); ``"thread"`` — in-process threads.
    pool_backend: str = "process"
    #: Trace payload transport for the process backend of
    #: :func:`run_many`: ``"auto"`` (the default) packs each trace
    #: once into parent-owned shared-memory segments and dispatches
    #: only an arena descriptor — retries re-read instead of
    #: re-pickling — degrading to the pickle-over-pipe path where the
    #: platform lacks shared memory; ``"shm"``/``"pipe"`` force a
    #: transport.  Thread/sequential execution ignores this (no
    #: process boundary).
    pool_transport: str = "auto"
    #: Per-trace wall-clock deadline in seconds for the process
    #: backend; a trace outliving it is killed and re-dispatched.
    trace_timeout: Optional[float] = None
    #: Re-dispatches a failing/interrupted trace may consume after its
    #: first attempt; ``0`` disables retries.  A trace exhausting
    #: ``1 + max_retries`` attempts is quarantined (or, under
    #: fail-fast, sinks the pool with a
    #: :class:`~repro.errors.PoolError`).
    max_retries: int = 2

    def __post_init__(self) -> None:
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume=True requires checkpoint_dir")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.partition not in _PARTITION_MODES:
            raise ValueError(
                f"unknown partition mode {self.partition!r}; expected"
                f" one of {_PARTITION_MODES}"
            )
        if self.partition == "auto" and (
            self.checkpoint_dir is not None or self.resume
        ):
            raise ValueError(
                "partition='auto' does not support checkpointing or"
                " resume; run the single-monitor path for durable runs"
            )
        if self.pool_backend not in _POOL_BACKENDS:
            raise ValueError(
                f"unknown pool backend {self.pool_backend!r}; expected"
                f" one of {_POOL_BACKENDS}"
            )
        if self.pool_transport not in _POOL_TRANSPORTS:
            raise ValueError(
                f"unknown pool transport {self.pool_transport!r}; expected"
                f" one of {_POOL_TRANSPORTS}"
            )
        if self.trace_timeout is not None and self.trace_timeout <= 0:
            raise ValueError(
                f"trace_timeout must be > 0, got {self.trace_timeout}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    @property
    def tolerant(self) -> bool:
        """True when any ingestion policy deviates from strict."""
        return (
            self.on_malformed != "raise"
            or self.on_unknown_stream != "raise"
            or self.on_out_of_order != "raise"
            or self.max_skew > 0
        )


class Monitor:
    """A compiled specification, as returned by :func:`compile`."""

    def __init__(
        self,
        compiled: CompiledSpec,
        options: CompileOptions,
        source_text: Optional[str] = None,
    ) -> None:
        self.compiled = compiled
        self.options = options
        #: The original specification text when compiled from text —
        #: lets the worker pool ship the text (plus the plan-cache
        #: fingerprint) across process boundaries instead of a monitor.
        self.source_text = source_text
        # Memoized partition plan for partition="auto" (the plan is a
        # pure function of the flat spec; recomputing it per run would
        # tax the single-component fallback).
        self._partition_plan = None
        # Metrics memos: the registry accumulates across this handle's
        # instrumented runs; the twin is the compiled spec rebuilt with
        # counting lift bindings (built on the first metrics run).
        self._metrics = None
        self._instrumented = None

    # -- introspection ---------------------------------------------------

    @property
    def inputs(self) -> Tuple[str, ...]:
        return tuple(self.compiled.flat.inputs)

    @property
    def outputs(self) -> Tuple[str, ...]:
        return tuple(self.compiled.flat.outputs)

    @property
    def fingerprint(self) -> str:
        """Content + options hash keying plan cache and checkpoints."""
        return self.compiled.fingerprint

    @property
    def engine_requested(self) -> str:
        """The engine string the compile options asked for (may be
        ``"auto"``)."""
        return self.compiled.engine_requested or self.compiled.engine

    @property
    def engine_resolved(self) -> str:
        """The engine actually compiled — never ``"auto"``.

        With ``engine="auto"`` this is ``"vector"`` when every
        output-reachable stream family passed the vector-eligibility
        classification (and numpy is importable), else ``"plan"``.
        The resolved engine — not the ``"auto"`` request — is what
        enters :attr:`fingerprint`.
        """
        return self.compiled.engine

    @property
    def source(self) -> str:
        """The generated Python source (engine-dependent)."""
        return self.compiled.source

    @property
    def plan_cache_hit(self) -> Optional[bool]:
        """``None`` — no cache consulted; else hit/miss."""
        return self.compiled.plan_cache_hit

    @property
    def mutable_streams(self) -> frozenset:
        return self.compiled.mutable_streams

    def diagnostics(self) -> list:
        return self.compiled.diagnostics()

    def metrics(self) -> Optional[Dict[str, Any]]:
        """Cumulative metric snapshot across this handle's instrumented
        runs (``RunOptions(metrics=True)``), or ``None`` when no metrics
        run has happened yet.  Per-run deltas live on each run's
        ``RunReport.metrics``."""
        if self._metrics is None:
            return None
        return self._metrics.snapshot()

    def _metrics_registry(self):
        if self._metrics is None:
            from .obs.metrics import MetricsRegistry

            self._metrics = MetricsRegistry()
        return self._metrics

    # -- execution -------------------------------------------------------

    def new_instance(self, on_output=None):
        """A fresh bare monitor instance (no runner, no report)."""
        return self.compiled.new_monitor(on_output)

    def run_traces(
        self,
        inputs: Mapping[str, Any],
        end_time: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Whole-trace convenience; returns frozen output streams."""
        return self.compiled.run_traces(inputs, end_time=end_time)

    def feed_columns(
        self,
        timestamps: Any,
        columns: Mapping[str, Any],
        options: Optional["RunOptions"] = None,
        *,
        on_output: Optional[Callable[[str, int, Any], None]] = None,
    ) -> RunReport:
        """One-shot columnar run: feed whole timestamp-aligned columns.

        *timestamps* is a strictly increasing sequence (list or numpy
        array) and *columns* maps input-stream names to equally long
        value arrays (``None`` entries mark absent events).  Under the
        vector engine the arrays are consumed zero-copy as SoA batch
        buffers; other engines transparently fall back to a row
        conversion, so outputs are byte-identical either way.  Returns
        the finished run's :class:`~repro.compiler.runtime.RunReport`.
        """
        options = options or RunOptions()
        runner = MonitorRunner(
            self.compiled,
            on_output,
            validate_inputs=options.validate_inputs,
        )
        runner.feed_columns(timestamps, columns)
        return runner.finish(end_time=options.end_time)

    def __repr__(self) -> str:
        return (
            f"Monitor(inputs={list(self.inputs)},"
            f" outputs={list(self.outputs)},"
            f" engine={self.compiled.engine!r},"
            f" fingerprint={self.fingerprint[:12]!r})"
        )


def compile(
    source_or_spec: Union[str, Specification, FlatSpec],
    options: Optional[CompileOptions] = None,
) -> Monitor:
    """Compile specification text (or an AST) into a :class:`Monitor`.

    A ``str`` argument is parsed as TeSSLa-like specification text;
    :class:`Specification` and :class:`FlatSpec` objects are compiled
    directly.
    """
    options = options or CompileOptions()
    if isinstance(source_or_spec, str):
        from .compiler.pipeline import build_compiled_spec_from_text

        # Raw text gets the text-keyed plan-cache fast path: a warm
        # hit skips parsing and type inference entirely.
        compiled = build_compiled_spec_from_text(
            source_or_spec,
            optimize=options.optimize,
            backend_override=options.backend,
            class_name=options.class_name,
            prune_dead=options.prune_dead,
            engine=options.engine,
            error_policy=options.error_policy,
            alias_guard=options.alias_guard,
            plan_cache=options.plan_cache,
            rewrite=options.rewrite,
        )
        return Monitor(compiled, options, source_text=source_or_spec)
    compiled = build_compiled_spec(
        source_or_spec,
        optimize=options.optimize,
        backend_override=options.backend,
        class_name=options.class_name,
        prune_dead=options.prune_dead,
        engine=options.engine,
        error_policy=options.error_policy,
        alias_guard=options.alias_guard,
        plan_cache=options.plan_cache,
        rewrite=options.rewrite,
    )
    return Monitor(compiled, options)


def _as_event_iter(
    events: Union[
        Mapping[str, Any], Iterable[Tuple[int, str, Any]]
    ],
) -> Iterable[Tuple[int, str, Any]]:
    """Normalize run input into a timestamp-ordered event iterable."""
    if isinstance(events, Mapping):
        flat = [
            (ts, name, value)
            for name, trace in events.items()
            for ts, value in trace
        ]
        flat.sort(key=lambda e: e[0])
        return flat
    return events


def run(
    monitor: Union[Monitor, CompiledSpec],
    events: Union[Mapping[str, Any], Iterable[Tuple[int, str, Any]]],
    options: Optional[RunOptions] = None,
    *,
    on_output: Optional[Callable[[str, int, Any], None]] = None,
    on_checkpoint: Optional[Callable[[], None]] = None,
    on_resume: Optional[Callable[[Optional[Dict[str, Any]]], None]] = None,
    checkpoint_gate: Optional[Callable[[], bool]] = None,
) -> RunReport:
    """Run a compiled monitor over *events*; return the run report.

    *events* is either an iterable of ``(ts, stream, value)`` tuples
    (already timestamp-sorted, unless a tolerant out-of-order policy
    is configured) or a mapping of per-stream traces (sorted here).

    ``on_output(name, ts, value)`` receives every output event.
    ``on_checkpoint()`` fires immediately before each durable
    checkpoint write (flush buffered sinks there).  With
    ``options.resume``, ``on_resume(meta)`` is called once before any
    event is fed — ``meta`` is the checkpoint metadata (``None`` when
    no valid checkpoint existed) and the caller must rewind its output
    sink to ``meta["outputs_emitted"]`` records.
    ``checkpoint_gate()`` is consulted before every checkpoint write;
    return ``False`` to suppress the write.  Callers that feed from
    their own :class:`~repro.semantics.traceio.TolerantReader` should
    pass ``lambda: not reader.draining`` so checkpoints stop once the
    reader's end-of-input drain starts delivering events in positions
    a re-read of the full input would not reproduce.  When *options*
    configure a tolerant reader internally, that gate is applied
    automatically and composed with any caller-supplied one.
    """
    options = options or RunOptions()
    compiled = monitor.compiled if isinstance(monitor, Monitor) else monitor

    if options.partition == "auto":
        partitioned = _partitioned_run(
            monitor, compiled, events, options, on_output
        )
        if partitioned is not None:
            return partitioned
        # One alias-closed component: fall through to the sequential
        # engine (no partition compile, no pool spin-up, no overhead).

    registry = None
    before = None
    if options.metrics:
        compiled, registry = _instrumented_for(monitor, compiled)
        before = registry.snapshot()

    event_iter, stats, reader = _ingest(compiled, events, options)
    gate = checkpoint_gate
    if reader is not None:
        # Drained deliveries are not replay-stable; stop checkpointing
        # once the reader's end-of-input drain begins (see
        # MonitorRunner's checkpoint_gate docs).
        user_gate = gate
        if user_gate is None:
            gate = lambda: not reader.draining  # noqa: E731
        else:
            gate = lambda: not reader.draining and user_gate()  # noqa: E731

    runner_kwargs: Dict[str, Any] = {
        "validate_inputs": options.validate_inputs,
        "checkpoint_every": options.checkpoint_every,
        "checkpoint_keep": options.checkpoint_keep,
        "on_checkpoint": on_checkpoint,
        "checkpoint_gate": gate,
    }
    meta: Optional[Dict[str, Any]] = None
    if options.resume:
        assert options.checkpoint_dir is not None
        runner, meta = MonitorRunner.resume(
            compiled,
            options.checkpoint_dir,
            on_output=on_output,
            **runner_kwargs,
        )
        if on_resume is not None:
            on_resume(meta)
    else:
        runner = MonitorRunner(
            compiled,
            on_output,
            checkpoint_dir=options.checkpoint_dir,
            **runner_kwargs,
        )

    if options.resume:
        runner.feed_from_start(event_iter)
    elif options.batch_size is not None:
        from .semantics.traceio import batch_events

        for batch in batch_events(event_iter, options.batch_size):
            runner.feed_batch(batch)
    else:
        runner.feed(event_iter)
    report = runner.finish(end_time=options.end_time)
    if stats is not None:
        report.absorb_ingest(stats)
    if registry is not None:
        from .obs.metrics import WINDOW_LATE_DROPS, diff_snapshots

        if (
            stats is not None
            and stats.out_of_order_dropped
            and getattr(compiled.flat, "window_info", None)
        ):
            # Windowed specs observe late data as reorder-buffer drops:
            # events later than the skew bound never reach their window.
            registry.inc(WINDOW_LATE_DROPS, stats.out_of_order_dropped)
        report.metrics = diff_snapshots(before, registry.snapshot())
    return report


def _instrumented_for(
    monitor: Union[Monitor, CompiledSpec], compiled: CompiledSpec
):
    """The instrumented twin of *compiled* plus its metrics registry.

    For a :class:`Monitor` handle both are memoized, so repeated metrics
    runs reuse one twin and accumulate into one registry; a bare
    :class:`CompiledSpec` gets a fresh pair per run.
    """
    from .compiler.pipeline import instrumented_twin

    if isinstance(monitor, Monitor):
        registry = monitor._metrics_registry()
        if monitor._instrumented is None:
            monitor._instrumented = instrumented_twin(compiled, registry)
        return monitor._instrumented, registry
    from .obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    return instrumented_twin(compiled, registry), registry


def _ingest(compiled, events, options):
    """Normalize run input, wrapping the tolerant reader if configured.

    Returns ``(event_iter, stats, reader)``; *stats* and *reader* are
    ``None`` when no tolerant policy is configured.  The reader handle
    is exposed so callers can gate checkpoints on ``reader.draining``.
    """
    event_iter = _as_event_iter(events)
    stats = None
    reader = None
    if options.tolerant:
        from .semantics.traceio import IngestPolicy, TolerantReader

        reader = TolerantReader(
            IngestPolicy(
                on_malformed=options.on_malformed,
                on_unknown_stream=options.on_unknown_stream,
                on_out_of_order=options.on_out_of_order,
                max_skew=options.max_skew,
            ),
            known_streams=compiled.flat.inputs,
        )
        stats = reader.stats
        event_iter = reader.events(event_iter, lambda item: item)
    return event_iter, stats, reader


def _partitioned_run(
    monitor: Union[Monitor, CompiledSpec],
    compiled: CompiledSpec,
    events: Union[Mapping[str, Any], Iterable[Tuple[int, str, Any]]],
    options: RunOptions,
    on_output: Optional[Callable[[str, int, Any], None]],
) -> Optional[RunReport]:
    """The ``partition="auto"`` path; ``None`` when not parallelizable.

    A spec with a single alias-closed component returns ``None`` so
    :func:`run` falls through to the sequential engine — the existing
    compiled monitor is reused and nothing is spun up.
    """
    from .parallel.partition import partition_spec
    from .parallel.partitioned import PartitionedRunner

    if isinstance(monitor, Monitor) and monitor._partition_plan is not None:
        plan = monitor._partition_plan
    else:
        plan = partition_spec(compiled.flat)
        if isinstance(monitor, Monitor):
            monitor._partition_plan = plan
    if not plan.parallelizable:
        return None
    compile_options = (
        monitor.options if isinstance(monitor, Monitor) else CompileOptions()
    )
    compile_kwargs = compile_options.build_kwargs()
    registry = None
    before = None
    if options.metrics:
        # Partition WRITE-streams are disjoint (only the scalar prefix
        # is replicated), so all sub-compilations can share one
        # registry: each stream's counters are bumped by exactly one
        # partition's monitor.
        if isinstance(monitor, Monitor):
            registry = monitor._metrics_registry()
        else:
            from .obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        compile_kwargs["metrics"] = registry
        before = registry.snapshot()
    runner = PartitionedRunner(
        compiled,
        on_output,
        compile_kwargs=compile_kwargs,
        plan=plan,
        jobs=options.jobs,
        validate_inputs=options.validate_inputs,
    )
    event_iter, stats, _reader = _ingest(compiled, events, options)
    runner.feed(event_iter, batch_size=options.batch_size)
    report = runner.finish(end_time=options.end_time)
    if stats is not None:
        report.absorb_ingest(stats)
    if registry is not None:
        from .obs.metrics import diff_snapshots

        report.metrics = diff_snapshots(before, registry.snapshot())
    return report


def run_many(
    monitor: Union[Monitor, CompiledSpec, str],
    traces: Iterable[Iterable[Tuple[int, str, Any]]],
    options: Optional[RunOptions] = None,
    *,
    compile_options: Optional[CompileOptions] = None,
    max_in_flight: Optional[int] = None,
    collect_outputs: bool = True,
    on_result: Optional[Callable[[Any], None]] = None,
):
    """Run one compiled spec over many independent traces, in parallel.

    *traces* is an iterable of event sequences (each an iterable of
    ``(ts, stream, value)`` tuples, timestamp-sorted).  With
    ``options.jobs > 1`` the traces are distributed over a supervised
    worker pool (see :class:`repro.parallel.MonitorPool`):
    ``options.pool_backend`` selects forked processes (default; the
    GIL escape) or threads, in-flight batches are bounded, results
    come back ordered and exactly once, interrupted traces are
    re-dispatched up to ``options.max_retries`` times
    (``options.trace_timeout`` bounds each attempt), and exhausted
    traces degrade per the compiled spec's error policy.  Returns a
    :class:`repro.parallel.pool.PoolResult`.

    Pass a text *monitor* (or one compiled by :func:`compile` from
    text) plus a ``plan_cache`` in *compile_options* so workers
    warm-start from the on-disk cache instead of re-analyzing.
    """
    from .parallel.pool import MonitorPool
    from .parallel.supervisor import RetryPolicy

    options = options or RunOptions()
    if compile_options is None and isinstance(monitor, Monitor):
        compile_options = monitor.options
    pool = MonitorPool(
        monitor,
        compile_options=compile_options,
        jobs=options.jobs,
        max_in_flight=max_in_flight,
        backend=options.pool_backend,
        retry=RetryPolicy(max_attempts=options.max_retries + 1),
        trace_timeout=options.trace_timeout,
        transport=options.pool_transport,
    )

    def _listed(source):
        # Lazy pass-through: each trace is pulled (and materialized)
        # exactly once, when the pool's backpressure window reaches it.
        # The pool parses it once into its transport payload; retries
        # reuse that payload and never re-iterate the source.
        for trace in source:
            yield trace if isinstance(trace, list) else list(trace)

    return pool.run_many(
        traces if isinstance(traces, list) else _listed(traces),
        end_time=options.end_time,
        batch_size=options.batch_size,
        validate_inputs=options.validate_inputs,
        collect_outputs=collect_outputs,
        metrics=options.metrics,
        on_result=on_result,
    )
