"""Benchmark harness regenerating every table and figure of the paper.

* :mod:`repro.bench.fig9` — synthetic speedups (3 specs × 3 sizes)
* :mod:`repro.bench.fig10` — Seen Set runtime vs trace length
* :mod:`repro.bench.table1` — the real-world scenarios
* :mod:`repro.bench.ablation` — backend / ordering / precision ablations

``python -m repro.bench all`` prints everything.
"""

from .runners import MODES, flatten_inputs, format_table, measure, run_once, speedup

__all__ = [
    "MODES",
    "flatten_inputs",
    "format_table",
    "measure",
    "run_once",
    "speedup",
]
