"""Command-line entry point: ``python -m repro.bench <experiment>``.

Experiments: ``fig9``, ``fig10``, ``table1``, ``ablation``, ``all``.
``--quick`` shrinks trace lengths for a fast smoke run.
"""

from __future__ import annotations

import argparse
import sys

from . import ablation, extensions, fig10, fig9, table1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=["fig9", "fig10", "table1", "ablation", "ext", "all"],
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small traces, single repeat (smoke run)",
    )
    parser.add_argument(
        "--length",
        type=int,
        default=None,
        help="override the trace length / scale",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit raw timings as JSON instead of tables",
    )
    args = parser.parse_args(argv)

    repeats = args.repeats or (1 if args.quick else 3)
    length = args.length or (2_000 if args.quick else 20_000)

    if args.json:
        import json

        payload = {}
        if args.experiment in ("fig9", "all"):
            payload["fig9"] = fig9.run(length=length, repeats=repeats)
        if args.experiment in ("fig10", "all"):
            lengths = (
                (500, 1_000, 2_000) if args.quick else fig10.DEFAULT_LENGTHS
            )
            payload["fig10"] = {
                size: {str(n): t for n, t in series.items()}
                for size, series in fig10.run(
                    lengths=lengths, repeats=repeats
                ).items()
            }
        if args.experiment in ("table1", "all"):
            payload["table1"] = table1.run(scale=length, repeats=repeats)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    sections = []
    if args.experiment in ("fig9", "all"):
        sections.append(fig9.report(length=length, repeats=repeats))
    if args.experiment in ("fig10", "all"):
        lengths = (500, 1_000, 2_000) if args.quick else fig10.DEFAULT_LENGTHS
        sections.append(fig10.report(lengths=lengths, repeats=repeats))
    if args.experiment in ("table1", "all"):
        sections.append(table1.report(scale=length, repeats=repeats))
    if args.experiment in ("ext", "all"):
        sections.append(extensions.report(length=length, repeats=repeats))
    if args.experiment in ("ablation", "all"):
        sections.append(
            ablation.report(repeats=repeats, length=max(length // 2, 500))
        )
    print("\n\n".join(sections))
    return 0


if __name__ == "__main__":
    sys.exit(main())
