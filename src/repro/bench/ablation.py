"""Ablation studies for the design choices DESIGN.md calls out.

1. **Backend ablation** — mutable vs persistent (HAMT/banker's queue)
   vs naive full-copy.  Persistent structures already beat copying;
   in-place updates beat both — the reason the paper *combines*
   approaches 2) and 3) instead of picking one.
2. **Ordering ablation** — the paper's algorithm picks the translation
   order that maximizes the mutability set (Fig. 7).  Here we compare
   against a *pessimal* valid translation order: families whose
   read-before-write constraints it violates must fall back to
   persistent structures.
3. **Analysis-precision ablation** — how many variables stay mutable
   with the full Def. 6 aliasing analysis, versus treating every
   P/L-connected pair as a potential alias (no triggering reasoning),
   versus keeping the spec order fixed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from ..analysis.mutability import (
    MutabilityAnalysis,
    MutabilityResult,
    analyze_mutability,
)
from ..compiler.codegen import generate_monitor_class
from ..compiler.pipeline import CompiledSpec
from ..graph.order import _ordering_edges
from ..lang.flatten import flatten
from ..lang.spec import FlatSpec, Specification
from ..lang.typecheck import check_types
from ..structures import Backend
from .runners import MODES, flatten_inputs, format_table, measure, run_once


def pessimal_order(flat: FlatSpec, result: MutabilityResult) -> List[str]:
    """A valid translation order that violates as many read-before-write
    constraints as possible (Kahn preferring writers over readers)."""
    graph = result.graph
    successors = _ordering_edges(graph, ())
    indegree = {n: 0 for n in graph.nodes}
    for node, succs in successors.items():
        for succ in succs:
            indegree[succ] += 1
    readers = {c.reader for c in result.constraints}
    order: List[str] = []
    ready = [n for n, d in indegree.items() if d == 0]
    while ready:
        # schedule non-readers first so reads land AFTER writes
        ready.sort(key=lambda n: (n in readers, n))
        node = ready.pop(0)
        order.append(node)
        for succ in successors[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    return order


def mutable_under_order(
    result: MutabilityResult, order: Sequence[str]
) -> frozenset:
    """The mutability set achievable with a FIXED translation order:
    families whose constraints the order violates turn persistent."""
    position = {name: index for index, name in enumerate(order)}
    family_of = {}
    for family in result.families:
        for member in family:
            family_of[member] = family
    broken = set()
    for constraint in result.constraints:
        if position[constraint.reader] > position[constraint.writer]:
            broken.add(family_of[constraint.written])
    return frozenset(
        name
        for name in result.mutable
        if family_of.get(name, frozenset()) not in broken
    )


def compile_with_order(
    flat: FlatSpec, order: Sequence[str], mutable: frozenset
) -> CompiledSpec:
    """Compile with an explicit order and mutability set (ablation use)."""
    backends = {
        name: Backend.MUTABLE if name in mutable else Backend.PERSISTENT
        for name in flat.streams
    }
    cls = generate_monitor_class(flat, order, backends)
    return CompiledSpec(
        flat=flat,
        monitor_class=cls,
        order=list(order),
        backends=backends,
        analysis=None,
        optimized=bool(mutable),
    )


def order_ablation(
    spec: Specification, inputs: Mapping[str, Iterable], repeats: int = 3
) -> Dict[str, float]:
    """Runtime under the optimal vs a pessimal translation order."""
    import statistics

    flat = flatten(spec)
    check_types(flat)
    result = analyze_mutability(flat)
    events = flatten_inputs(inputs)
    bad_order = pessimal_order(flat, result)
    bad_mutable = mutable_under_order(result, bad_order)
    variants = {
        "optimal-order": compile_with_order(flat, result.order, result.mutable),
        "pessimal-order": compile_with_order(flat, bad_order, bad_mutable),
    }
    return {
        name: statistics.median(
            run_once(compiled, events) for _ in range(repeats)
        )
        for name, compiled in variants.items()
    }


def backend_ablation(
    spec: Specification, inputs: Mapping[str, Iterable], repeats: int = 3
) -> Dict[str, float]:
    """Runtime under mutable / persistent / copying collections."""
    return measure(spec, inputs, modes=tuple(MODES), repeats=repeats)


def analysis_precision_rows() -> List[List[str]]:
    """Mutable-variable counts: full analysis vs ablated variants."""
    from ..speclib import (
        db_access_constraint,
        db_time_constraint,
        map_window,
        peak_detection,
        queue_window,
        seen_set,
        spectrum_calculation,
    )

    rows = []
    for name, factory in [
        ("seen_set", seen_set),
        ("map_window", lambda: map_window(200)),
        ("queue_window", lambda: queue_window(200)),
        ("db_time", db_time_constraint),
        ("db_access", db_access_constraint),
        ("peak_detection", peak_detection),
        ("spectrum", spectrum_calculation),
    ]:
        flat = flatten(factory())
        check_types(flat)
        result = analyze_mutability(flat)
        total = len(result.mutable) + len(result.persistent)
        fixed = mutable_under_order(result, pessimal_order(flat, result))
        no_alias = MutabilityAnalysis(flat, assume_all_alias=True).run()
        rows.append(
            [
                name,
                str(total),
                str(len(result.mutable)),
                str(len(fixed)),
                str(len(no_alias.mutable)),
            ]
        )
    return rows


def report(repeats: int = 3, length: int = 10_000) -> str:
    from ..speclib import seen_set
    from ..workloads import seen_set_trace

    parts = []
    inputs = seen_set_trace(length, 200)
    order_timing = order_ablation(seen_set(), inputs, repeats)
    parts.append(
        format_table(
            ["variant", "runtime"],
            [[k, f"{v:.3f}s"] for k, v in order_timing.items()],
            title="Ablation — translation order (Seen Set, medium)",
        )
    )
    backend_timing = backend_ablation(seen_set(), inputs, repeats)
    parts.append(
        format_table(
            ["backend", "runtime"],
            [[k, f"{v:.3f}s"] for k, v in backend_timing.items()],
            title="Ablation — collection backends (Seen Set, medium)",
        )
    )
    parts.append(
        format_table(
            ["spec", "aggregates", "full analysis", "fixed order", "no aliasing"],
            analysis_precision_rows(),
            title="Ablation — mutable aggregate counts per analysis variant",
        )
    )
    from .stats import event_statistics

    stats = event_statistics(seen_set(), inputs, optimize=True)
    parts.append(
        format_table(
            ["metric", "count"],
            [
                ["aggregate updates (all in place)", str(stats.in_place_updates)],
                ["aggregate reads", str(stats.read_accesses)],
                ["input events", str(sum(len(v) for v in inputs.values()))],
            ],
            title="Event statistics — what the optimization saves"
            " (Seen Set, medium)",
        )
    )
    return "\n\n".join(parts)
