"""Extension experiments beyond the paper's evaluation.

* **Vector Window** — the Map/Queue Window behaviour on an indexed
  vector: arrays are the original subject of the aggregate update
  problem (Hudak & Bloss 1985), and the bit-partitioned persistent
  vector vs. in-place list comparison completes the data-structure
  picture of Fig. 9.
* **Watchdog** — a ``delay``-driven monitor (alarms at timestamps no
  input has), demonstrating that the optimization machinery coexists
  with the triggering section's delay loop; its aggregates-free core
  also serves as a no-win baseline (speedup ≈ 1).
"""

from __future__ import annotations

from typing import Dict

from ..speclib import vector_window, watchdog
from ..workloads import uniform_int_trace, window_trace
from .runners import format_table, measure, speedup


def run(length: int = 20_000, repeats: int = 3) -> Dict[str, Dict[str, float]]:
    results: Dict[str, Dict[str, float]] = {}
    for size_name, size in (("small", 10), ("medium", 200), ("large", 2000)):
        results[f"vector_window/{size_name}"] = measure(
            vector_window(size), window_trace(length), repeats=repeats
        )
    results["watchdog"] = measure(
        watchdog(timeout=5),
        {"hb": uniform_int_trace(length, 10, step=2)},
        repeats=repeats,
    )
    return results


def report(length: int = 20_000, repeats: int = 3) -> str:
    results = run(length=length, repeats=repeats)
    rows = [
        [
            name,
            f"{timings['optimized']:.3f}s",
            f"{timings['non-optimized']:.3f}s",
            f"{speedup(timings):.2f}x",
        ]
        for name, timings in results.items()
    ]
    return format_table(
        ["experiment", "optimized", "non-optimized", "speedup"],
        rows,
        title=f"Extensions — vector window & watchdog ({length} events)",
    )
