"""Figure 10: Seen Set runtime over trace length, optimized vs not.

The paper plots the runtime of both monitor variants over trace lengths
for the small/medium/large set sizes and observes (a) the optimized
runtime is hardly influenced by the set size while the non-optimized one
is, and (b) the speedup stabilizes with trace length.  (The JVM's JIT
warm-up non-linearity does not exist on CPython; our curves are close to
linear from the start.)
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..speclib import seen_set
from ..workloads import SIZES, seen_set_trace
from .runners import format_table, measure, speedup

DEFAULT_LENGTHS = (1_000, 5_000, 20_000, 50_000)


def run(
    lengths: Iterable[int] = DEFAULT_LENGTHS,
    repeats: int = 3,
    sizes: Dict[str, int] = SIZES,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """size name -> trace length -> timings."""
    results: Dict[str, Dict[int, Dict[str, float]]] = {}
    for size_name, size in sizes.items():
        results[size_name] = {}
        for length in lengths:
            inputs = seen_set_trace(length, size)
            results[size_name][length] = measure(
                seen_set(), inputs, repeats=repeats
            )
    return results


def report(lengths: Iterable[int] = DEFAULT_LENGTHS, repeats: int = 3) -> str:
    lengths = list(lengths)
    results = run(lengths=lengths, repeats=repeats)
    rows: List[List[str]] = []
    for size_name in results:
        for length in lengths:
            timings = results[size_name][length]
            rows.append(
                [
                    size_name,
                    str(length),
                    f"{timings['optimized']:.4f}s",
                    f"{timings['non-optimized']:.4f}s",
                    f"{speedup(timings):.2f}x",
                ]
            )
    return format_table(
        ["set size", "trace length", "optimized", "non-optimized", "speedup"],
        rows,
        title="Figure 10 — Seen Set runtime vs trace length",
    )
