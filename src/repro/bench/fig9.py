"""Figure 9: speedups for the three synthetic monitors × three sizes.

The paper reports the optimized/non-optimized speedup of Seen Set, Map
Window and Queue Window for small (10), medium (200) and large (10 000,
ours: 2 000) data structures, measured at the longest trace length where
the speedup has stabilized.  Paper values for reference: Seen Set up to
~5, Map Window up to ~3.3, Queue Window up to ~1.8, always ordered
SeenSet > MapWindow > QueueWindow, and growing with structure size.
"""

from __future__ import annotations

from typing import Dict, List

from ..lang.spec import Specification
from ..speclib import map_window, queue_window, seen_set
from ..workloads import SIZES, seen_set_trace, window_trace
from .runners import format_table, measure, speedup


def spec_for(name: str, size: int) -> Specification:
    if name == "seen_set":
        return seen_set()
    if name == "map_window":
        return map_window(size)
    if name == "queue_window":
        return queue_window(size)
    raise ValueError(f"unknown synthetic spec {name!r}")


def trace_for(name: str, size: int, length: int, seed: int = 0):
    if name == "seen_set":
        return seen_set_trace(length, size, seed)
    return window_trace(length, seed)


SPECS = ("seen_set", "map_window", "queue_window")


def run(
    length: int = 20_000, repeats: int = 3, sizes: Dict[str, int] = SIZES
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Measure all specs × sizes; returns name -> size -> timings."""
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in SPECS:
        results[name] = {}
        for size_name, size in sizes.items():
            spec = spec_for(name, size)
            inputs = trace_for(name, size, length)
            results[name][size_name] = measure(spec, inputs, repeats=repeats)
    return results


def report(length: int = 20_000, repeats: int = 3) -> str:
    results = run(length=length, repeats=repeats)
    rows: List[List[str]] = []
    for name in SPECS:
        for size_name in SIZES:
            timings = results[name][size_name]
            rows.append(
                [
                    name,
                    size_name,
                    f"{timings['optimized']:.3f}s",
                    f"{timings['non-optimized']:.3f}s",
                    f"{speedup(timings):.2f}x",
                ]
            )
    return format_table(
        ["spec", "size", "optimized", "non-optimized", "speedup"],
        rows,
        title=f"Figure 9 — synthetic speedups (trace length {length})",
    )
