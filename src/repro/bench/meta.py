"""Provenance metadata stamped into every ``BENCH_*.json`` artifact.

A benchmark number without its commit is unreproducible and silently
goes stale; downstream tooling (CI artifact diffing, the scaling
curves in the docs) relies on every artifact carrying the same
``meta`` block.
"""

from __future__ import annotations

import datetime
import os
import platform
import subprocess
from typing import Dict, Optional


def _git_commit(cwd: Optional[str] = None) -> Optional[str]:
    """The current commit hash, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=cwd,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    commit = out.stdout.strip()
    return commit or None


def bench_metadata(
    cwd: Optional[str] = None,
    *,
    pool_backend: Optional[str] = None,
    retries: Optional[int] = None,
    fault_injection: Optional[Dict[str, object]] = None,
    transport: Optional[str] = None,
    payload_bytes: Optional[Dict[str, int]] = None,
) -> Dict[str, object]:
    """The standard provenance block for benchmark JSON artifacts.

    Keys: ``commit`` (full hash or None), ``timestamp`` (ISO 8601,
    UTC), ``python``, ``platform``, ``cpus``.

    Pool benchmarks additionally stamp their execution conditions —
    ``pool_backend`` (which worker backend produced the numbers),
    ``retries`` (supervision retries absorbed during the run),
    ``fault_injection`` (the chaos configuration, if any),
    ``transport`` (the resolved trace data path: ``pipe``, ``shm`` or
    ``inline``) and ``payload_bytes`` (bytes moved per data path, e.g.
    ``{"shared": ..., "pickled": ...}``) — so a BENCH artifact from a
    chaos run or a degraded transport can never be mistaken for a
    clean one.  These keys appear only when given.
    """
    meta: Dict[str, object] = {
        "commit": _git_commit(cwd),
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds")
        .replace("+00:00", "Z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
    }
    if pool_backend is not None:
        meta["pool_backend"] = pool_backend
    if retries is not None:
        meta["retries"] = retries
    if fault_injection is not None:
        meta["fault_injection"] = fault_injection
    if transport is not None:
        meta["transport"] = transport
    if payload_bytes is not None:
        meta["payload_bytes"] = payload_bytes
    return meta


__all__ = ["bench_metadata"]
