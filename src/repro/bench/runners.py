"""Measurement plumbing shared by the benchmark harness.

Monitors are timed end-to-end over pre-materialized event lists with a
counting output callback (outputs are "printed" in the paper; counting
is the cheapest faithful stand-in).  Following the paper we report the
median over repeated runs.
"""

from __future__ import annotations

import statistics
import time
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..compiler import CompiledSpec, build_compiled_spec, counting_callback
from ..lang.spec import Specification
from ..structures import Backend

#: Mode name -> build_compiled_spec keyword arguments.
MODES: Dict[str, dict] = {
    "optimized": {"optimize": True},
    "non-optimized": {"optimize": False},
    "copying": {"backend_override": Backend.COPYING},
}

Events = List[Tuple[int, int]]


def flatten_inputs(inputs: Mapping[str, Iterable]) -> List[Tuple[int, str, object]]:
    """Merge per-stream traces into one chronological event list."""
    merged: List[Tuple[int, str, object]] = []
    for name, trace in inputs.items():
        for ts, value in trace:
            merged.append((ts, name, value))
    merged.sort(key=lambda e: e[0])
    return merged


def run_once(compiled: CompiledSpec, events: List[Tuple[int, str, object]]) -> float:
    """One timed monitor run; returns wall-clock seconds."""
    on_output, _count = counting_callback()
    monitor = compiled.new_monitor(on_output)
    push = monitor.push
    start = time.perf_counter()
    for ts, name, value in events:
        push(name, ts, value)
    monitor.finish()
    return time.perf_counter() - start


def measure(
    spec: Specification,
    inputs: Mapping[str, Iterable],
    modes: Iterable[str] = ("optimized", "non-optimized"),
    repeats: int = 3,
) -> Dict[str, float]:
    """Median runtime (seconds) per mode for *spec* on *inputs*."""
    events = flatten_inputs(inputs)
    results: Dict[str, float] = {}
    for mode in modes:
        compiled = build_compiled_spec(spec, **MODES[mode])
        timings = [run_once(compiled, events) for _ in range(repeats)]
        results[mode] = statistics.median(timings)
    return results


def speedup(timings: Mapping[str, float]) -> float:
    """Non-optimized over optimized runtime (the paper's speedup)."""
    return timings["non-optimized"] / timings["optimized"]


def format_table(
    headers: List[str], rows: List[List[str]], title: Optional[str] = None
) -> str:
    """Plain-text table renderer for harness output."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def line(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rows)
    return "\n".join(parts)
