"""Event statistics: quantify what the optimization actually does.

For a spec and a trace, count the events of every stream (by compiling
an all-outputs variant) and attribute the events of write-edge targets
to their backend: each event on a mutable write target is one avoided
persistent update — the work the paper's speedups come from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Union

from ..analysis.mutability import analyze_mutability
from ..compiler import build_compiled_spec
from ..graph.usage_graph import EdgeClass
from ..lang.flatten import flatten
from ..lang.spec import FlatSpec, Specification
from ..lang.typecheck import check_types


@dataclass
class EventStatistics:
    """Per-run event counts and the derived optimization summary."""

    events_per_stream: Dict[str, int]
    in_place_updates: int
    persistent_updates: int
    read_accesses: int

    @property
    def total_updates(self) -> int:
        return self.in_place_updates + self.persistent_updates

    def summary(self) -> str:
        lines = [
            f"aggregate updates : {self.total_updates}",
            f"  in place        : {self.in_place_updates}",
            f"  persistent      : {self.persistent_updates}",
            f"aggregate reads   : {self.read_accesses}",
        ]
        return "\n".join(lines)


def event_statistics(
    spec: Union[Specification, FlatSpec],
    inputs: Mapping[str, Iterable],
    optimize: bool = True,
) -> EventStatistics:
    """Run *spec* on *inputs* counting every stream's events."""
    flat = spec if isinstance(spec, FlatSpec) else flatten(spec)
    if not flat.types:
        check_types(flat)
    observed = FlatSpec(
        flat.inputs,
        flat.definitions,
        list(flat.definitions),  # observe every defined stream
        synthetic=flat.synthetic,
        type_annotations=flat.type_annotations,
    )
    check_types(observed)
    result = analyze_mutability(observed)
    compiled = build_compiled_spec(observed, optimize=optimize)

    counts: Dict[str, int] = {}

    def on_output(name, ts, value):
        counts[name] = counts.get(name, 0) + 1

    monitor = compiled.new_monitor(on_output)
    monitor.run_traces(inputs)

    write_targets = {
        (edge.dst, edge.src) for edge in result.graph.write_edges
    }
    read_edges = list(result.graph.edges_of_class(EdgeClass.READ))
    in_place = 0
    persistent = 0
    for target, source in write_targets:
        events = counts.get(target, 0)
        if optimize and source in result.mutable:
            in_place += events
        else:
            persistent += events
    reads = sum(counts.get(edge.dst, 0) for edge in read_edges)
    return EventStatistics(
        events_per_stream=counts,
        in_place_updates=in_place,
        persistent_updates=persistent,
        read_accesses=reads,
    )
