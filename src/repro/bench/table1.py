"""Table I: runtimes and speedups on the (simulated) real-world scenarios.

Paper values for reference (median of three runs):

====================== ======== ========= ========
Specification          Op.      Non-op.   Speedup
====================== ======== ========= ========
DBTimeCons.            171 s    216 s     1.3
DBAccessCons. (full)   233 s    > 1 h     > 15.5
DBAccessCons. (33 %)   59.2 s   127 s     2.1
PeakDetection          7.56 s   14.0 s    1.9
SpectrumCalc.          1.04 s   2.07 s    2.0
====================== ======== ========= ========

We regenerate the same rows on seeded synthetic traces (see
``repro.workloads``); absolute numbers differ (CPython, smaller traces)
but the ordering — DBAccessConstraint(full) with its growing set far
ahead, the rest around 1.3-2 — should reproduce.  The paper's full-trace
blow-up (the non-optimized monitor swapping and never finishing) is
represented by the superlinear growth of the non-optimized runtime with
trace length.
"""

from __future__ import annotations

from typing import Dict, List

from ..lang.spec import Specification
from ..speclib import (
    db_access_constraint,
    db_time_constraint,
    peak_detection,
    spectrum_calculation,
)
from ..workloads import db_access_trace, db_time_trace, power_trace
from .runners import format_table, measure, speedup


def scenarios(scale: int = 20_000) -> Dict[str, tuple]:
    """name -> (spec, inputs); *scale* is the full-trace event count."""
    return {
        "DBTimeCons.": (db_time_constraint(60), db_time_trace(scale)),
        "DBAccessCons.(full)": (db_access_constraint(), db_access_trace(scale)),
        "DBAccessCons.(33%)": (
            db_access_constraint(),
            db_access_trace(scale // 3),
        ),
        "PeakDetection": (
            peak_detection(window=30),
            power_trace(scale),
        ),
        "SpectrumCalc.": (
            spectrum_calculation(bucket_width=100.0, threshold=5000.0),
            power_trace(scale, seed=1),
        ),
    }


def run(scale: int = 20_000, repeats: int = 3) -> Dict[str, Dict[str, float]]:
    results: Dict[str, Dict[str, float]] = {}
    for name, (spec, inputs) in scenarios(scale).items():
        results[name] = measure(spec, inputs, repeats=repeats)
    return results


def report(scale: int = 20_000, repeats: int = 3) -> str:
    results = run(scale=scale, repeats=repeats)
    rows: List[List[str]] = []
    for name, timings in results.items():
        rows.append(
            [
                name,
                f"{timings['optimized']:.2f}s",
                f"{timings['non-optimized']:.2f}s",
                f"{speedup(timings):.2f}x",
            ]
        )
    return format_table(
        ["Specification", "Op.", "Non-op.", "Speedup"],
        rows,
        title=f"Table I — real-world scenarios ({scale} events, simulated traces)",
    )
