"""Command-line compiler driver: ``repro-compile``.

Subcommands over a textual specification file:

* ``analyze``  — print the full analysis report (edges, formulas,
  aliases, mutability set, translation order, diagnostics);
* ``lint``     — print the unified static diagnostics (``LINT*`` lint
  warnings + ``MUT*`` mutability provenance); ``--json`` emits them as
  a JSON array, ``--sarif`` as a SARIF 2.1.0 log;
* ``dot``      — emit the colour-coded usage graph as GraphViz;
* ``emit``     — print the generated Python monitor source;
* ``run``      — run the monitor on a CSV event trace
  (lines ``timestamp,stream,value``) and print outputs as CSV;
* ``run-many`` — run the monitor over many independent CSV traces
  (``--traces a.csv b.csv ...``) on the supervised worker pool
  (``--jobs``, ``--pool-backend process|thread``,
  ``--pool-transport auto|shm|pipe``, ``--trace-timeout``,
  ``--max-retries``) and print outputs as ``trace,ts,stream,value``
  lines in submission order; quarantined traces warn on stderr, and a
  fail-fast abort is the usual one-line ``error:`` diagnostic naming
  the trace, worker and attempt history;
* ``profile``  — run the monitor with the observability layer on and
  print a per-stream copy/in-place table, compile-phase timings and
  plan-cache counters (``--json`` for machine-readable output); see
  ``docs/observability.md``;
* ``optimize`` — run the spec-level rewrite optimizer (``repro.opt``)
  and print before/after stream and mutable-variable counts plus every
  rewrite's provenance record; with ``--trace`` also measures the
  before/after ``copies_performed`` on that trace (verifying outputs
  agree); ``--emit-spec`` prints the rewritten specification,
  ``--json`` a machine-readable summary.  See ``docs/optimizer.md``.

``--rewrite`` enables the same optimizer pass for ``emit``, ``run``
and ``profile``.

``--strict`` (for ``analyze`` and ``lint``) exits nonzero when any
diagnostic of warning severity or above is present, so specifications
can be gated in CI.

Values in CSV traces are parsed according to the declared input type
(Int/Float/Bool/Str/Unit).

``run`` accepts the hardened-runtime options (see ``docs/runtime.md``):
``--error-policy`` switches on error-propagating evaluation,
``--validate-inputs`` type-checks every input event,
``--on-malformed`` / ``--on-unknown-stream`` / ``--on-out-of-order`` /
``--max-skew`` select the tolerant-ingestion policies,
``--checkpoint-dir`` / ``--checkpoint-every`` write durable checkpoints
during the run, ``--resume`` restarts from the newest valid checkpoint
reproducing the uninterrupted run's output file exactly,
``--alias-guard`` enables the aggregate-aliasing sanitizer, and
``--report`` prints the structured run report to stderr.

``--engine`` selects the execution engine (``auto`` — the default,
resolving to the columnar ``vector`` engine when the whole spec is
vector-eligible and numpy is present, else ``plan`` — or explicitly
``codegen``, ``interpreted``, ``plan``, ``vector``; ``emit`` defaults
to ``codegen`` since it prints generated source), ``--batch-size``
drives the monitor's
batch hot path in chunks, and ``--plan-cache DIR`` persists the
analysis outputs on disk so repeated invocations of an unchanged spec
skip the analysis (hits are visible in ``--report``).

All flags funnel through :class:`repro.api.CompileOptions` /
:class:`repro.api.RunOptions` (see ``_compile_options`` and
``_run_options``) — the CLI is a thin shell over ``repro.api``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, List, Tuple

from . import api
from .analysis.report import AnalysisReport
from .frontend import parse_spec
from .lang import check_types, flatten
from .lang import types as ty
from .parallel.pool import PoolError


class CliError(Exception):
    """Raised on bad command-line input (reported without traceback)."""


def _parse_value(text: str, value_type: ty.Type) -> Any:
    text = text.strip()
    if value_type == ty.INT or value_type == ty.TIME:
        return int(text)
    if value_type == ty.FLOAT:
        return float(text)
    if value_type == ty.BOOL:
        if text.lower() in ("true", "1"):
            return True
        if text.lower() in ("false", "0"):
            return False
        raise CliError(f"not a boolean: {text!r}")
    if value_type == ty.UNIT:
        return ()
    if value_type == ty.STR:
        return text
    raise CliError(f"cannot parse values of type {value_type} from CSV")


def _parse_csv_line(raw: str, lineno: int, flat, path: str):
    """One CSV trace line → ``(ts, stream, value)``, or ``None`` for
    blank/comment lines.

    Raises :class:`~repro.semantics.traceio.TraceError` with
    ``path:line`` context on anything malformed — bad timestamp,
    negative timestamp, unparseable value — so the tolerant ingestion
    policies apply to CSV exactly as to the TeSSLa format.
    """
    from .semantics.traceio import TraceError

    line = raw.strip()
    if not line or line.startswith("#"):
        return None
    parts = line.split(",", 2)
    if len(parts) < 2:
        raise TraceError(f"{path}:{lineno}: expected 'ts,stream[,value]'")
    ts_text, name = parts[0].strip(), parts[1].strip()
    try:
        ts = int(ts_text)
    except ValueError:
        raise TraceError(
            f"{path}:{lineno}: bad timestamp {ts_text!r}"
        ) from None
    if ts < 0:
        raise TraceError(f"{path}:{lineno}: negative timestamp {ts}")
    value_text = parts[2] if len(parts) == 3 else ""
    if name not in flat.types:
        # No declared type to parse the value by; the reader's
        # unknown-stream policy decides this event's fate anyway.
        return ts, name, value_text
    try:
        value = _parse_value(value_text, flat.types[name])
    except (CliError, ValueError) as exc:
        raise TraceError(f"{path}:{lineno}: {exc}") from None
    return ts, name, value


def _read_trace(path: str, flat) -> List[Tuple[int, str, Any]]:
    from .semantics.traceio import TraceError

    events: List[Tuple[int, str, Any]] = []
    with open(path) as handle:
        for lineno, raw in enumerate(handle, 1):
            try:
                parsed = _parse_csv_line(raw, lineno, flat, path)
            except TraceError as exc:
                raise CliError(str(exc)) from None
            if parsed is None:
                continue
            ts, name, value = parsed
            if name not in flat.inputs:
                raise CliError(f"{path}:{lineno}: unknown input stream {name!r}")
            events.append((ts, name, value))
    events.sort(key=lambda e: e[0])
    return events


#: Subcommands whose result is independent of the execution engine;
#: passing ``--engine`` to them is deprecated ad-hoc plumbing (the
#: engine belongs to :class:`repro.api.CompileOptions`, which these
#: commands never build).
_ENGINELESS_COMMANDS = ("analyze", "lint", "dot", "emit-scala", "optimize")


def _resolve_engine(args) -> str:
    """The engine string for :class:`repro.api.CompileOptions`.

    ``--engine`` defaults to ``None`` so the facade's own default
    (``"auto"``) applies; ``emit`` prints generated Python source, so
    its unset default stays ``codegen`` (the vector engine compiles to
    kernels, not source).
    """
    if args.engine is not None:
        return args.engine
    return "codegen" if args.command == "emit" else "auto"


def _compile_options(args) -> "api.CompileOptions":
    """Map the argparse namespace onto :class:`repro.api.CompileOptions`.

    The single place CLI flags become compile options — new flags only
    need a line here and in the parser.
    """
    return api.CompileOptions(
        optimize=not args.no_optimize,
        engine=_resolve_engine(args),
        error_policy=args.error_policy,
        alias_guard=args.alias_guard,
        plan_cache=args.plan_cache,
        rewrite=getattr(args, "rewrite", False),
    )


def _run_options(args) -> "api.RunOptions":
    """Map the argparse namespace onto :class:`repro.api.RunOptions`.

    The tolerant-ingestion flags are *not* forwarded: the CLI applies
    them while parsing trace text (where ``--on-malformed`` is
    meaningful), so by the time events reach :func:`repro.api.run`
    they are already clean and ordered.
    """
    return api.RunOptions(
        end_time=args.end_time,
        batch_size=args.batch_size,
        validate_inputs=args.validate_inputs,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        jobs=args.jobs,
        partition=args.partition,
        pool_backend=args.pool_backend,
        pool_transport=args.pool_transport,
        trace_timeout=args.trace_timeout,
        max_retries=args.max_retries,
    )


def _cmd_run(args, flat) -> int:
    """The ``run`` subcommand: drive a monitor over an event trace."""
    from .semantics.traceio import (
        IngestPolicy,
        IngestStats,
        TolerantReader,
        TraceError,
        format_value,
        parse_line,
        read_trace,
    )

    if not args.trace:
        raise CliError("'run' requires --trace")
    if args.resume and not args.checkpoint_dir:
        raise CliError("--resume requires --checkpoint-dir")
    if args.resume and not args.output:
        raise CliError("--resume requires --output (stdout cannot be rewound)")
    tolerant = (
        args.on_malformed != "raise"
        or args.on_unknown_stream != "raise"
        or args.on_out_of_order != "raise"
        or args.max_skew > 0
    )
    monitor = api.compile(flat, _compile_options(args))
    run_options = _run_options(args)
    stats = IngestStats()
    policy = IngestPolicy(
        on_malformed=args.on_malformed,
        on_unknown_stream=args.on_unknown_stream,
        on_out_of_order=args.on_out_of_order,
        max_skew=args.max_skew,
    )
    # The reader handle, when a tolerant reader feeds this run: the
    # checkpoint gate below stops checkpoint writes once the reader's
    # end-of-input drain starts (drained deliveries are not
    # replay-stable, so a checkpoint taken then could not be resumed
    # against a re-read of the trace).
    reader_box = {"reader": None}

    def tolerant_reader():
        reader = TolerantReader(policy, known_streams=flat.inputs)
        reader.stats = stats
        reader_box["reader"] = reader
        return reader

    def checkpoint_gate():
        reader = reader_box["reader"]
        return reader is None or not reader.draining

    if args.format == "tessla":
        def render(name, ts, value):
            return f"{ts}: {name} = {format_value(value)}"

        def load_events():
            if tolerant:
                return tolerant_reader().events(
                    enumerate(open(args.trace), 1),
                    lambda item: parse_line(item[1], item[0]),
                )
            # strict batch semantics: the text may list events in any
            # order; everything is read, validated, and sorted up front
            try:
                with open(args.trace) as handle:
                    traces = read_trace(handle)
            except TraceError as exc:
                raise CliError(str(exc)) from None
            unknown = set(traces) - set(flat.inputs)
            if unknown:
                raise CliError(f"unknown input streams: {sorted(unknown)}")
            return sorted(
                (ts, name, value)
                for name, stream_events in traces.items()
                for ts, value in stream_events
            )

    else:
        def render(name, ts, value):
            return f"{ts},{name},{value}"

        def load_events():
            if tolerant:
                return tolerant_reader().events(
                    enumerate(open(args.trace), 1),
                    lambda item: _parse_csv_line(
                        item[1], item[0], flat, args.trace
                    ),
                )
            return _read_trace(args.trace, flat)

    # The sink is bound late: under --resume the output file must be
    # rewound to the checkpoint's watermark before any write.
    sink = {"write": sys.stdout.write, "handle": None}

    def emit(name, ts, value):
        sink["write"](render(name, ts, value) + "\n")

    def make_outputs_durable():
        # Flushed before every checkpoint write: the checkpoint's
        # outputs_emitted watermark must never run ahead of the bytes
        # on disk, or a hard kill would make --resume skip past a hole.
        handle = sink["handle"]
        if handle is not None:
            handle.flush()
            os.fsync(handle.fileno())

    out_handle = None

    def bind_sink(handle):
        nonlocal out_handle
        out_handle = handle
        if handle is not None:
            sink["write"] = handle.write
            sink["handle"] = handle

    def rewind_outputs(meta):
        # Before any event is fed on --resume: truncate the output
        # file to the checkpoint's outputs_emitted watermark, then
        # reopen for appending — replaying the rest of the trace
        # reproduces the uninterrupted run's file exactly.
        kept = meta["outputs_emitted"] if meta else 0
        try:
            with open(args.output) as handle:
                prior = handle.readlines()
        except FileNotFoundError:
            prior = []
        with open(args.output, "w") as handle:
            handle.writelines(prior[:kept])
        bind_sink(open(args.output, "a"))

    if not args.resume:
        bind_sink(open(args.output, "w") if args.output else None)

    events = load_events()
    try:
        report = api.run(
            monitor,
            events,
            run_options,
            on_output=emit,
            on_checkpoint=make_outputs_durable,
            on_resume=rewind_outputs,
            checkpoint_gate=checkpoint_gate,
        )
    finally:
        if out_handle is not None:
            out_handle.close()
    report.absorb_ingest(stats)
    if args.report:
        print(report.to_json(), file=sys.stderr)
    return 0


def _cmd_run_many(args, flat) -> int:
    """The ``run-many`` subcommand: one spec, many traces, worker pool.

    Reads each ``--traces`` CSV file exactly once (lazily, under the
    pool's backpressure window), distributes them over the supervised
    :class:`~repro.parallel.MonitorPool`
    (``--jobs``/``--pool-backend``/``--pool-transport``/
    ``--trace-timeout``/``--max-retries``), and streams results in
    submission order as
    ``trace,ts,stream,value`` CSV lines.  A quarantined trace prints a
    one-line ``warning:`` on stderr and the run keeps draining; under
    fail-fast (the default error policy) a poison trace aborts with the
    usual one-line ``error:`` diagnostic and exit 1.
    """
    if not args.traces:
        raise CliError("'run-many' requires --traces")
    monitor = api.compile(flat, _compile_options(args))
    run_options = _run_options(args)
    # Lazy and parse-once: each CSV file is read when the pool's
    # backpressure window reaches it, exactly once — the parsed trace
    # lands in the pool's transport payload (shared-memory arena on
    # the shm transport) and every retry re-reads that payload, never
    # the file.
    traces = (_read_trace(path, flat) for path in args.traces)

    handle = open(args.output, "w") if args.output else sys.stdout

    def on_result(result):
        if result.error is not None:
            print(
                f"warning: trace {result.index}"
                f" ({args.traces[result.index]}) failed: {result.error}",
                file=sys.stderr,
            )
            return
        for name, ts, value in result.outputs or []:
            handle.write(f"{result.index},{ts},{name},{value}\n")

    try:
        pool_result = api.run_many(
            monitor, traces, run_options, on_result=on_result
        )
    finally:
        if handle is not sys.stdout:
            handle.close()
    if args.report:
        print(pool_result.report.to_json(), file=sys.stderr)
    return 0


def _cmd_profile(args, flat) -> int:
    """The ``profile`` subcommand: one instrumented run, human summary.

    Compiles with the metrics registry and the phase tracer enabled,
    drives the trace through ``repro.api.run`` with
    ``RunOptions(metrics=True)``, and prints a per-stream table of
    ``copies_performed`` vs ``inplace_updates`` (the paper's "copies
    avoided by mutability classification" claim, measured), the
    compile-phase and batch span timings, and the plan-cache counters.
    ``--json`` emits the same data as one JSON object.
    """
    import json as json_mod

    from .obs.metrics import DEFAULT_REGISTRY, merge_snapshots
    from .obs.trace import TRACER

    if not args.trace:
        raise CliError("'profile' requires --trace")

    was_traced = TRACER.enabled
    was_metered = DEFAULT_REGISTRY.enabled
    TRACER.enabled = True
    TRACER.clear()
    DEFAULT_REGISTRY.enabled = True
    default_before = DEFAULT_REGISTRY.snapshot()
    try:
        events = _read_trace(args.trace, flat)
        monitor = api.compile(flat, _compile_options(args))
        run_options = api.RunOptions(
            end_time=args.end_time,
            batch_size=args.batch_size or 4096,
            validate_inputs=args.validate_inputs,
            jobs=args.jobs,
            partition=args.partition,
            metrics=True,
        )
        report = api.run(monitor, events, run_options)
        phases = TRACER.totals()
    finally:
        TRACER.enabled = was_traced
        DEFAULT_REGISTRY.enabled = was_metered

    from .obs.metrics import diff_snapshots

    snapshot = merge_snapshots(
        report.metrics,
        diff_snapshots(default_before, DEFAULT_REGISTRY.snapshot()),
    ) or {"counters": {}, "streams": {}}
    backends = monitor.compiled.backends
    streams = snapshot.get("streams", {})
    rows = [
        (
            name,
            backends[name].name.lower() if name in backends else "?",
            stats["copies_performed"],
            stats["inplace_updates"],
        )
        for name, stats in sorted(streams.items())
    ]

    if args.json:
        print(
            json_mod.dumps(
                {
                    "streams": {
                        name: {
                            "backend": backend,
                            "copies_performed": copies,
                            "inplace_updates": inplace,
                        }
                        for name, backend, copies, inplace in rows
                    },
                    "phases": phases,
                    "counters": snapshot.get("counters", {}),
                    "report": report.as_dict(),
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0

    if rows:
        widths = (
            max(len("stream"), *(len(r[0]) for r in rows)),
            max(len("backend"), *(len(r[1]) for r in rows)),
        )
        header = (
            f"{'stream':<{widths[0]}}  {'backend':<{widths[1]}}"
            f"  {'copies':>8}  {'in-place':>8}"
        )
        print(header)
        print("-" * len(header))
        for name, backend, copies, inplace in rows:
            print(
                f"{name:<{widths[0]}}  {backend:<{widths[1]}}"
                f"  {copies:>8}  {inplace:>8}"
            )
    else:
        print("no structure-updating streams in this specification")
    if phases:
        print("\nphases:")
        for name, agg in phases.items():
            print(
                f"  {name:<26} {agg['seconds'] * 1000:>9.2f} ms"
                f"  x{agg['count']}"
            )
    counters = snapshot.get("counters", {})
    if counters:
        print("\ncounters:")
        for name in sorted(counters):
            print(f"  {name} = {counters[name]}")
    print(
        f"\nevents: in={report.events_in} out={report.events_out}"
        f" batches={report.batches}"
    )
    return 0


def _cmd_windows(args) -> int:
    """The ``windows`` subcommand: print the aggregate eligibility table.

    One row per supported window aggregate: whether it rides the O(1)
    delta path or the O(window) fold fallback, the per-window state the
    lowering keeps, and the diagnostic code a compiled spec reports
    (WIN001 delta / WIN002 fold).  ``--json`` emits the rows as a JSON
    array.
    """
    from .lang.windows import eligibility_table

    rows = eligibility_table()
    if args.json:
        import json as json_mod

        print(
            json_mod.dumps(
                [
                    {
                        "aggregate": agg,
                        "path": path,
                        "state": state,
                        "diagnostic": code,
                    }
                    for agg, path, state, code in rows
                ],
                indent=2,
            )
        )
        return 0
    header = ("aggregate", "path", "state", "diagnostic")
    table = [header] + [tuple(row) for row in rows]
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    for index, row in enumerate(table):
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            print("  ".join("-" * w for w in widths))
    return 0


def _cmd_optimize(args, flat) -> int:
    """The ``optimize`` subcommand: run the rewrite pass, show its work.

    Prints before/after stream and certified mutable-variable counts,
    per-rule fired counters and every rewrite's provenance record.
    With ``--trace``, both variants are compiled and driven over the
    trace with metrics on: outputs are asserted identical and the
    before/after ``copies_performed`` totals are reported.
    ``--emit-spec`` prints the rewritten specification in concrete
    syntax; ``--json`` emits everything as one JSON object.
    """
    import json as json_mod

    from .compiler import freeze
    from .obs.metrics import DEFAULT_REGISTRY
    from .opt import optimize_flat

    was_metered = DEFAULT_REGISTRY.enabled
    DEFAULT_REGISTRY.enabled = True
    try:
        result = optimize_flat(flat, certify=not args.no_optimize)
    finally:
        DEFAULT_REGISTRY.enabled = was_metered

    copies = None
    if args.trace:
        events = _read_trace(args.trace, flat)
        copies = {}
        outputs = {}
        for label, rewrite in (("before", False), ("after", True)):
            monitor = api.compile(
                flat,
                api.CompileOptions(
                    optimize=not args.no_optimize,
                    engine=_resolve_engine(args),
                    rewrite=rewrite,
                ),
            )
            collected = []
            report = api.run(
                monitor,
                list(events),
                api.RunOptions(
                    end_time=args.end_time, metrics=True
                ),
                on_output=lambda n, t, v: collected.append(
                    (n, t, freeze(v))
                ),
            )
            streams = (report.metrics or {}).get("streams", {})
            copies[label] = sum(
                stats["copies_performed"] for stats in streams.values()
            )
            outputs[label] = collected
        if outputs["before"] != outputs["after"]:
            raise CliError(
                "optimized and unoptimized outputs disagree — this is a"
                " bug; please report the specification"
            )

    if args.emit_spec:
        from .frontend import unparse_flat

        print(unparse_flat(result.flat), end="")
        return 0

    if args.json:
        payload = dict(result.summary())
        payload["diagnostics"] = [d.to_dict() for d in result.diagnostics()]
        if copies is not None:
            payload["copies_performed"] = copies
        print(json_mod.dumps(payload, indent=2, sort_keys=True))
        return 0

    mut = (
        f"{result.mutable_before} -> {result.mutable_after}"
        if result.mutable_before is not None
        else "n/a (no aggregate streams)"
    )
    print(f"streams:          {result.streams_before} -> {result.streams_after}")
    print(f"mutable variables: {mut}")
    print(
        f"rewrites:         {len(result.applied)} applied,"
        f" {len(result.rejected)} rejected"
    )
    if result.fired:
        for code in sorted(result.fired):
            print(f"  {code} fired x{result.fired[code]}")
    if copies is not None:
        print(
            f"copies_performed: {copies['before']} -> {copies['after']}"
            " (outputs verified identical)"
        )
    if result.records:
        print("\nrewrites:")
        for diagnostic in result.diagnostics():
            print(f"  {diagnostic}")
    else:
        print("\nspecification already normalized; nothing to rewrite")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro-compile")
    parser.add_argument(
        "command",
        choices=[
            "analyze",
            "lint",
            "dot",
            "emit",
            "emit-scala",
            "run",
            "run-many",
            "profile",
            "optimize",
            "windows",
        ],
    )
    parser.add_argument(
        "spec",
        help="path to the specification file (not used by 'windows')",
    )
    parser.add_argument(
        "--trace", help="CSV event trace (required for 'run')"
    )
    parser.add_argument(
        "--traces",
        nargs="+",
        metavar="FILE",
        help="CSV event traces (required for 'run-many'; one"
        " independent run of the monitor per file)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="for 'lint': print diagnostics as a JSON array",
    )
    parser.add_argument(
        "--sarif",
        action="store_true",
        help="for 'lint': print diagnostics as a SARIF 2.1.0 log",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="for 'analyze'/'lint': exit nonzero on any diagnostic of"
        " warning severity or above (CI gating)",
    )
    parser.add_argument(
        "--no-optimize",
        action="store_true",
        help="compile the exclusively-persistent baseline",
    )
    parser.add_argument(
        "--rewrite",
        action="store_true",
        help="run the spec-level rewrite optimizer before analysis"
        " (for 'emit'/'run'/'profile'; 'optimize' always runs it)",
    )
    parser.add_argument(
        "--emit-spec",
        action="store_true",
        help="for 'optimize': print the rewritten specification in"
        " concrete syntax",
    )
    parser.add_argument(
        "--end-time", type=int, default=None, help="bound for delay streams"
    )
    parser.add_argument(
        "--engine",
        choices=["auto", "codegen", "interpreted", "plan", "vector"],
        default=None,
        help="execution engine: auto (the default — columnar numpy"
        " kernels when the whole spec is vector-eligible, else the"
        " dispatch plan), generated source, step closures, the flat"
        " dispatch plan, or the columnar vector engine; 'emit'"
        " defaults to codegen (it prints generated source)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="for 'run': drive the monitor's batch hot path in chunks"
        " of this many events",
    )
    parser.add_argument(
        "--plan-cache",
        default=None,
        metavar="DIR",
        help="cache analysis outputs (translation order, backends) in"
        " this directory, keyed by spec + options fingerprint",
    )
    parser.add_argument(
        "--format",
        choices=["csv", "tessla"],
        default="csv",
        help="trace format for 'run': CSV lines or the TeSSLa trace"
        " format (ts: stream = value)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker count: partitions per batch for 'run'"
        " --partition=auto, pool workers for 'run-many'; 1 runs"
        " sequentially",
    )
    parser.add_argument(
        "--pool-backend",
        choices=["process", "thread"],
        default="process",
        help="for 'run-many': supervised forked workers (process, the"
        " default — scales pure-Python engines past the GIL) or"
        " in-process threads",
    )
    parser.add_argument(
        "--pool-transport",
        choices=["auto", "shm", "pipe"],
        default="auto",
        help="for 'run-many' (process backend): how trace payloads"
        " reach the workers — shared-memory arena segments with"
        " descriptor-only dispatch (shm; retries re-read instead of"
        " re-pickling), pickled event lists per attempt (pipe), or"
        " shm wherever the platform supports it (auto, the default)",
    )
    parser.add_argument(
        "--trace-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="for 'run-many' (process backend): per-trace wall-clock"
        " deadline; a trace outliving it is killed and re-dispatched",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="for 'run-many': re-dispatches a failing or interrupted"
        " trace may consume after its first attempt (0 disables"
        " retries); an exhausted trace is quarantined or, under"
        " fail-fast, aborts the pool",
    )
    parser.add_argument(
        "--partition",
        choices=["off", "auto"],
        default="off",
        help="split the spec into alias-closed partitions and run them"
        " concurrently per timestamp batch (outputs stay byte-identical"
        " to the sequential engine)",
    )
    hardened = parser.add_argument_group("hardened runtime (for 'run')")
    hardened.add_argument(
        "--error-policy",
        choices=["fail-fast", "propagate", "substitute-default"],
        default=None,
        help="error-propagating evaluation: what a failing lift becomes",
    )
    hardened.add_argument(
        "--validate-inputs",
        action="store_true",
        help="type-check every input event against the declared types",
    )
    hardened.add_argument(
        "--on-malformed",
        choices=["raise", "skip"],
        default="raise",
        help="what to do with trace lines that do not parse",
    )
    hardened.add_argument(
        "--on-unknown-stream",
        choices=["raise", "skip"],
        default="raise",
        help="what to do with events naming undeclared streams",
    )
    hardened.add_argument(
        "--on-out-of-order",
        choices=["raise", "skip", "buffer"],
        default="raise",
        help="what to do with events behind the delivery frontier"
        " ('buffer' reorders within --max-skew)",
    )
    hardened.add_argument(
        "--max-skew",
        type=int,
        default=0,
        help="reorder window for --on-out-of-order=buffer (ticks)",
    )
    hardened.add_argument(
        "--checkpoint-dir",
        help="write durable checkpoints into this directory",
    )
    hardened.add_argument(
        "--checkpoint-every",
        type=int,
        default=1000,
        help="checkpoint period in consumed input events",
    )
    hardened.add_argument(
        "--resume",
        action="store_true",
        help="restart from the newest valid checkpoint in"
        " --checkpoint-dir (requires --output)",
    )
    hardened.add_argument(
        "--output",
        help="write outputs to this file instead of stdout",
    )
    hardened.add_argument(
        "--report",
        action="store_true",
        help="print the structured run report (JSON) to stderr",
    )
    hardened.add_argument(
        "--alias-guard",
        action="store_true",
        help="runtime sanitizer: guard mutable aggregates against"
        " stale-reference access",
    )
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv[:1] == ["windows"]:
        # 'windows' prints the static aggregate table and takes no spec
        # file; satisfy the positional so argparse keeps rejecting a
        # missing spec on every other command.
        argv.insert(1, "-")
    args = parser.parse_args(argv)

    if args.engine is not None and args.command in _ENGINELESS_COMMANDS:
        from ._deprecation import warn_once

        warn_once(
            "cli-engine-plumbing",
            f"--engine is ignored by '{args.command}' and this ad-hoc"
            " plumbing is deprecated; select the engine through"
            " repro.api.CompileOptions(engine=...) on commands that"
            " execute a monitor ('run', 'run-many', 'profile', 'emit')",
        )

    if args.command == "windows":
        return _cmd_windows(args)

    try:
        with open(args.spec) as handle:
            spec = parse_spec(handle.read())
        flat = flatten(spec)
        check_types(flat)

        if args.command == "analyze":
            from .analysis.diagnostics import strict_failures

            analysis = AnalysisReport(flat)
            print(analysis.text())
            if args.strict and strict_failures(analysis.diagnostics()):
                return 1
        elif args.command == "lint":
            from .analysis.diagnostics import (
                collect_diagnostics,
                strict_failures,
                to_json,
                to_sarif,
            )

            diagnostics = collect_diagnostics(flat)
            if args.json and args.sarif:
                raise CliError("--json and --sarif are mutually exclusive")
            if args.json:
                print(to_json(diagnostics))
            elif args.sarif:
                import json as json_mod
                import os

                print(
                    json_mod.dumps(
                        to_sarif(
                            diagnostics,
                            spec_uri=os.path.basename(args.spec),
                        ),
                        indent=2,
                    )
                )
            else:
                if diagnostics:
                    for diagnostic in diagnostics:
                        print(diagnostic)
                else:
                    print("no diagnostics")
            if args.strict and strict_failures(diagnostics):
                return 1
        elif args.command == "dot":
            print(AnalysisReport(flat).dot())
        elif args.command == "emit":
            print(api.compile(flat, _compile_options(args)).source)
        elif args.command == "emit-scala":
            from .analysis import analyze_mutability
            from .compiler import generate_scala_source
            from .graph import build_usage_graph, translation_order

            if args.no_optimize:
                order = translation_order(build_usage_graph(flat))
                backends = {}
            else:
                result = analyze_mutability(flat)
                order = result.order
                backends = {
                    name: result.backend_for(name) for name in flat.streams
                }
            print(generate_scala_source(flat, order, backends))
        elif args.command == "run-many":
            return _cmd_run_many(args, flat)
        elif args.command == "profile":
            return _cmd_profile(args, flat)
        elif args.command == "optimize":
            return _cmd_optimize(args, flat)
        else:  # run
            return _cmd_run(args, flat)
    except (CliError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except PoolError as exc:
        # A worker crash under fail-fast: one diagnostic line (which
        # trace failed and why), nonzero exit, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except Exception as exc:  # spec/compile errors: message only
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
