"""Command-line compiler driver: ``repro-compile``.

Subcommands over a textual specification file:

* ``analyze``  — print the full analysis report (edges, formulas,
  aliases, mutability set, translation order, diagnostics);
* ``lint``     — print the unified static diagnostics (``LINT*`` lint
  warnings + ``MUT*`` mutability provenance); ``--json`` emits them as
  a JSON array, ``--sarif`` as a SARIF 2.1.0 log;
* ``dot``      — emit the colour-coded usage graph as GraphViz;
* ``emit``     — print the generated Python monitor source;
* ``run``      — run the monitor on a CSV event trace
  (lines ``timestamp,stream,value``) and print outputs as CSV.

``--strict`` (for ``analyze`` and ``lint``) exits nonzero when any
diagnostic of warning severity or above is present, so specifications
can be gated in CI.

Values in CSV traces are parsed according to the declared input type
(Int/Float/Bool/Str/Unit).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, List, Tuple

from .analysis.report import AnalysisReport
from .compiler import compile_spec
from .frontend import parse_spec
from .lang import check_types, flatten
from .lang import types as ty


class CliError(Exception):
    """Raised on bad command-line input (reported without traceback)."""


def _parse_value(text: str, value_type: ty.Type) -> Any:
    text = text.strip()
    if value_type == ty.INT or value_type == ty.TIME:
        return int(text)
    if value_type == ty.FLOAT:
        return float(text)
    if value_type == ty.BOOL:
        if text.lower() in ("true", "1"):
            return True
        if text.lower() in ("false", "0"):
            return False
        raise CliError(f"not a boolean: {text!r}")
    if value_type == ty.UNIT:
        return ()
    if value_type == ty.STR:
        return text
    raise CliError(f"cannot parse values of type {value_type} from CSV")


def _read_trace(path: str, flat) -> List[Tuple[int, str, Any]]:
    events: List[Tuple[int, str, Any]] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",", 2)
            if len(parts) < 2:
                raise CliError(f"{path}:{lineno}: expected 'ts,stream[,value]'")
            ts_text, name = parts[0].strip(), parts[1].strip()
            if name not in flat.inputs:
                raise CliError(f"{path}:{lineno}: unknown input stream {name!r}")
            value_text = parts[2] if len(parts) == 3 else ""
            value = _parse_value(value_text, flat.types[name])
            events.append((int(ts_text), name, value))
    events.sort(key=lambda e: e[0])
    return events


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro-compile")
    parser.add_argument(
        "command",
        choices=["analyze", "lint", "dot", "emit", "emit-scala", "run"],
    )
    parser.add_argument("spec", help="path to the specification file")
    parser.add_argument(
        "--trace", help="CSV event trace (required for 'run')"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="for 'lint': print diagnostics as a JSON array",
    )
    parser.add_argument(
        "--sarif",
        action="store_true",
        help="for 'lint': print diagnostics as a SARIF 2.1.0 log",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="for 'analyze'/'lint': exit nonzero on any diagnostic of"
        " warning severity or above (CI gating)",
    )
    parser.add_argument(
        "--no-optimize",
        action="store_true",
        help="compile the exclusively-persistent baseline",
    )
    parser.add_argument(
        "--end-time", type=int, default=None, help="bound for delay streams"
    )
    parser.add_argument(
        "--format",
        choices=["csv", "tessla"],
        default="csv",
        help="trace format for 'run': CSV lines or the TeSSLa trace"
        " format (ts: stream = value)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.spec) as handle:
            spec = parse_spec(handle.read())
        flat = flatten(spec)
        check_types(flat)

        if args.command == "analyze":
            from .analysis.diagnostics import strict_failures

            analysis = AnalysisReport(flat)
            print(analysis.text())
            if args.strict and strict_failures(analysis.diagnostics()):
                return 1
        elif args.command == "lint":
            from .analysis.diagnostics import (
                collect_diagnostics,
                strict_failures,
                to_json,
                to_sarif,
            )

            diagnostics = collect_diagnostics(flat)
            if args.json and args.sarif:
                raise CliError("--json and --sarif are mutually exclusive")
            if args.json:
                print(to_json(diagnostics))
            elif args.sarif:
                import json as json_mod
                import os

                print(
                    json_mod.dumps(
                        to_sarif(
                            diagnostics,
                            spec_uri=os.path.basename(args.spec),
                        ),
                        indent=2,
                    )
                )
            else:
                if diagnostics:
                    for diagnostic in diagnostics:
                        print(diagnostic)
                else:
                    print("no diagnostics")
            if args.strict and strict_failures(diagnostics):
                return 1
        elif args.command == "dot":
            print(AnalysisReport(flat).dot())
        elif args.command == "emit":
            compiled = compile_spec(flat, optimize=not args.no_optimize)
            print(compiled.source)
        elif args.command == "emit-scala":
            from .analysis import analyze_mutability
            from .compiler import generate_scala_source
            from .graph import build_usage_graph, translation_order

            if args.no_optimize:
                order = translation_order(build_usage_graph(flat))
                backends = {}
            else:
                result = analyze_mutability(flat)
                order = result.order
                backends = {
                    name: result.backend_for(name) for name in flat.streams
                }
            print(generate_scala_source(flat, order, backends))
        else:  # run
            if not args.trace:
                raise CliError("'run' requires --trace")
            if args.format == "tessla":
                from .semantics.traceio import (
                    TraceError,
                    format_value,
                    read_trace,
                )

                try:
                    with open(args.trace) as handle:
                        traces = read_trace(handle)
                except TraceError as exc:
                    raise CliError(str(exc)) from None
                unknown = set(traces) - set(flat.inputs)
                if unknown:
                    raise CliError(f"unknown input streams: {sorted(unknown)}")
                events = sorted(
                    (ts, name, value)
                    for name, stream_events in traces.items()
                    for ts, value in stream_events
                )

                def emit(name, ts, value):
                    print(f"{ts}: {name} = {format_value(value)}")

            else:
                events = _read_trace(args.trace, flat)

                def emit(name, ts, value):
                    print(f"{ts},{name},{value}")

            compiled = compile_spec(flat, optimize=not args.no_optimize)
            monitor = compiled.new_monitor(emit)
            for ts, name, value in events:
                monitor.push(name, ts, value)
            monitor.finish(end_time=args.end_time)
    except (CliError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except Exception as exc:  # spec/compile errors: message only
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
