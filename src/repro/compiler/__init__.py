"""Compiler backend: code generation and the monitor runtime (paper §III)."""

from .checkpoint import (
    CheckpointError,
    CheckpointManager,
    latest_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from .codegen import CodegenError, CodeGenerator, generate_monitor_class
from .interp_backend import make_interpreted_class
from .scala_backend import generate_scala_source
from .monitor import (
    MonitorBase,
    MonitorError,
    UNIT_VALUE,
    collecting_callback,
    counting_callback,
    freeze,
)
from .pipeline import (
    CompiledSpec,
    build_compiled_spec,
    build_compiled_spec_from_text,
    compile_spec,
)
from .plan import ExecutionPlan, build_plan, make_plan_class
from .plancache import PlanCache, flat_fingerprint, plan_fingerprint
from .runtime import (
    HardenedRunner,
    MonitorRunner,
    RunReport,
    validate_value,
)

__all__ = [
    "CheckpointError",
    "CheckpointManager",
    "CodeGenerator",
    "CodegenError",
    "CompiledSpec",
    "ExecutionPlan",
    "HardenedRunner",
    "MonitorBase",
    "MonitorError",
    "MonitorRunner",
    "PlanCache",
    "RunReport",
    "UNIT_VALUE",
    "build_compiled_spec",
    "build_compiled_spec_from_text",
    "build_plan",
    "collecting_callback",
    "compile_spec",
    "counting_callback",
    "flat_fingerprint",
    "freeze",
    "generate_monitor_class",
    "generate_scala_source",
    "latest_checkpoint",
    "make_interpreted_class",
    "make_plan_class",
    "plan_fingerprint",
    "read_checkpoint",
    "validate_value",
    "write_checkpoint",
]
