"""Compiler backend: code generation and the monitor runtime (paper §III)."""

from .checkpoint import (
    CheckpointError,
    CheckpointManager,
    latest_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from .codegen import CodegenError, CodeGenerator, generate_monitor_class
from .interp_backend import make_interpreted_class
from .scala_backend import generate_scala_source
from .monitor import (
    MonitorBase,
    MonitorError,
    UNIT_VALUE,
    collecting_callback,
    counting_callback,
    freeze,
)
from .pipeline import CompiledSpec, compile_spec
from .runtime import HardenedRunner, RunReport, validate_value

__all__ = [
    "CheckpointError",
    "CheckpointManager",
    "CodeGenerator",
    "CodegenError",
    "CompiledSpec",
    "HardenedRunner",
    "MonitorBase",
    "MonitorError",
    "RunReport",
    "UNIT_VALUE",
    "collecting_callback",
    "compile_spec",
    "counting_callback",
    "freeze",
    "generate_monitor_class",
    "generate_scala_source",
    "latest_checkpoint",
    "make_interpreted_class",
    "read_checkpoint",
    "validate_value",
    "write_checkpoint",
]
