"""Compiler backend: code generation and the monitor runtime (paper §III)."""

from .codegen import CodegenError, CodeGenerator, generate_monitor_class
from .interp_backend import make_interpreted_class
from .scala_backend import generate_scala_source
from .monitor import (
    MonitorBase,
    MonitorError,
    UNIT_VALUE,
    collecting_callback,
    counting_callback,
    freeze,
)
from .pipeline import CompiledSpec, compile_spec

__all__ = [
    "CodeGenerator",
    "CodegenError",
    "CompiledSpec",
    "MonitorBase",
    "MonitorError",
    "UNIT_VALUE",
    "collecting_callback",
    "compile_spec",
    "counting_callback",
    "freeze",
    "generate_monitor_class",
    "generate_scala_source",
    "make_interpreted_class",
]
