"""Durable monitor checkpoints: versioned, checksummed, portable.

:meth:`MonitorBase.snapshot` captures monitor state in memory; this
module persists such snapshots to disk so a crashed monitor process can
be resumed from its last checkpoint and provably reproduce the
uninterrupted run's outputs (see :class:`repro.compiler.runtime.HardenedRunner`).

Design points:

* **Portable encoding** — aggregate values are deep-frozen into tagged
  plain-Python trees (kind + backend family + contents) rather than
  pickling live collection objects.  Restoring re-builds fresh
  structures through the public factories, so a checkpoint written by a
  guarded (sanitizer) run restores cleanly, and internal representation
  changes (e.g. HAMT layout) never invalidate old checkpoints.
* **Corruption detection** — the payload carries a SHA-256 checksum
  under a versioned magic header; a torn or bit-flipped file fails
  :func:`read_checkpoint` with :class:`CheckpointError` instead of
  resurrecting garbage state, and recovery falls back to the previous
  valid checkpoint.
* **Atomicity** — files are written to a temporary name and
  ``os.replace``-d into place, so a crash *during* checkpointing never
  leaves a half-written "latest" checkpoint.

The checkpoint meta block records the number of input events consumed
and output events emitted at snapshot time plus a specification
fingerprint, which is exactly what a resuming driver needs to skip
replayed input and truncate duplicated output.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..errors import ErrorValue
from ..structures import (
    CopyMap,
    CopyQueue,
    CopySet,
    CopyVector,
    GuardedMap,
    GuardedQueue,
    GuardedSet,
    GuardedVector,
    MutableMap,
    MutableQueue,
    MutableSet,
    MutableVector,
    PersistentMap,
    PersistentQueue,
    PersistentSet,
    PersistentVector,
    persistent_map,
    persistent_queue,
    persistent_set,
    persistent_vector,
)
from ..structures.interface import MapBase, QueueBase, SetBase, VectorBase

MAGIC = b"RPROCKPT"
VERSION = 1
CHECKPOINT_SUFFIX = ".rckpt"


class CheckpointError(Exception):
    """Raised when a checkpoint file is missing, corrupt or mismatched."""


# -- portable value encoding -------------------------------------------------

_FAMILIES = (
    ("persistent", (PersistentSet, PersistentMap, PersistentQueue, PersistentVector)),
    ("mutable", (MutableSet, MutableMap, MutableQueue, MutableVector)),
    ("copying", (CopySet, CopyMap, CopyQueue, CopyVector)),
    ("guarded", (GuardedSet, GuardedMap, GuardedQueue, GuardedVector)),
)

_DECODERS: Dict[Tuple[str, str], Any] = {
    ("set", "persistent"): persistent_set,
    ("set", "mutable"): MutableSet,
    ("set", "copying"): CopySet,
    ("set", "guarded"): GuardedSet,
    ("map", "persistent"): persistent_map,
    ("map", "mutable"): MutableMap,
    ("map", "copying"): CopyMap,
    ("map", "guarded"): GuardedMap,
    ("queue", "persistent"): persistent_queue,
    ("queue", "mutable"): MutableQueue,
    ("queue", "copying"): CopyQueue,
    ("queue", "guarded"): GuardedQueue,
    ("vector", "persistent"): persistent_vector,
    ("vector", "mutable"): MutableVector,
    ("vector", "copying"): CopyVector,
    ("vector", "guarded"): GuardedVector,
}


def _family_of(value: Any) -> str:
    for family, classes in _FAMILIES:
        if isinstance(value, classes):
            return family
    raise CheckpointError(
        f"cannot checkpoint aggregate of type {type(value).__name__}"
    )


def encode_value(value: Any) -> Any:
    """Deep-freeze one stream value into a portable tagged tree."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, ErrorValue):
        return ("error", value.message, value.origin, value.ts)
    if isinstance(value, tuple):
        return ("tuple", [encode_value(v) for v in value])
    if isinstance(value, list):
        return ("list", [encode_value(v) for v in value])
    if isinstance(value, dict):
        return ("dict", [(k, encode_value(v)) for k, v in value.items()])
    if isinstance(value, SetBase):
        return ("set", _family_of(value), [encode_value(v) for v in value])
    if isinstance(value, MapBase):
        return (
            "map",
            _family_of(value),
            [(encode_value(k), encode_value(v)) for k, v in value.items()],
        )
    if isinstance(value, QueueBase):
        return ("queue", _family_of(value), [encode_value(v) for v in value])
    if isinstance(value, VectorBase):
        return ("vector", _family_of(value), [encode_value(v) for v in value])
    raise CheckpointError(
        f"cannot checkpoint value of type {type(value).__name__}"
    )


def decode_value(encoded: Any) -> Any:
    """Rebuild a stream value from its portable tagged tree."""
    if not isinstance(encoded, tuple):
        return encoded
    tag = encoded[0]
    if tag == "error":
        return ErrorValue(encoded[1], origin=encoded[2], ts=encoded[3])
    if tag == "tuple":
        return tuple(decode_value(v) for v in encoded[1])
    if tag == "list":
        return [decode_value(v) for v in encoded[1]]
    if tag == "dict":
        return {k: decode_value(v) for k, v in encoded[1]}
    if tag == "map":
        pairs = [(decode_value(k), decode_value(v)) for k, v in encoded[2]]
        return _DECODERS[("map", encoded[1])](pairs)
    if tag in ("set", "queue", "vector"):
        items = [decode_value(v) for v in encoded[2]]
        return _DECODERS[(tag, encoded[1])](items)
    raise CheckpointError(f"unknown checkpoint value tag {tag!r}")


def encode_state(state: Dict[str, Any]) -> Dict[str, Any]:
    """Encode a :meth:`MonitorBase.snapshot` dictionary."""
    return {key: encode_value(value) for key, value in state.items()}


def decode_state(encoded: Dict[str, Any]) -> Dict[str, Any]:
    """Decode back into a dictionary accepted by :meth:`restore`."""
    return {key: decode_value(value) for key, value in encoded.items()}


# -- file format -------------------------------------------------------------


def write_checkpoint(
    path: str, state: Dict[str, Any], meta: Optional[Dict[str, Any]] = None
) -> str:
    """Atomically persist *state* (+ *meta*) to *path*; returns *path*."""
    payload = pickle.dumps(
        {"state": encode_state(state), "meta": dict(meta or {})},
        protocol=4,
    )
    digest = hashlib.sha256(payload).digest()
    blob = MAGIC + bytes([VERSION]) + digest + payload
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return path


def read_checkpoint(path: str) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Load and validate a checkpoint; returns ``(state, meta)``.

    Raises :class:`CheckpointError` on any corruption: bad magic,
    unsupported version, checksum mismatch, or undecodable payload.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from None
    header_len = len(MAGIC) + 1 + 32
    if len(blob) < header_len or not blob.startswith(MAGIC):
        raise CheckpointError(f"{path}: not a checkpoint file")
    version = blob[len(MAGIC)]
    if version != VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint version {version}"
        )
    digest = blob[len(MAGIC) + 1 : header_len]
    payload = blob[header_len:]
    if hashlib.sha256(payload).digest() != digest:
        raise CheckpointError(f"{path}: checksum mismatch (corrupt file)")
    try:
        document = pickle.loads(payload)
        state = decode_state(document["state"])
        meta = document["meta"]
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(f"{path}: undecodable payload: {exc}") from None
    return state, meta


# -- checkpoint directories --------------------------------------------------


def checkpoint_path(directory: str, events_consumed: int) -> str:
    return os.path.join(
        directory, f"ckpt-{events_consumed:012d}{CHECKPOINT_SUFFIX}"
    )


def list_checkpoints(directory: str) -> List[str]:
    """All checkpoint files in *directory*, newest (most events) first."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    found = sorted(
        (name for name in names if name.endswith(CHECKPOINT_SUFFIX)),
        reverse=True,
    )
    return [os.path.join(directory, name) for name in found]


def latest_checkpoint(
    directory: str, fingerprint: Optional[str] = None
) -> Optional[Tuple[str, Dict[str, Any], Dict[str, Any]]]:
    """The newest *valid* checkpoint, or ``None``.

    Corrupt files (torn writes, bit flips) are skipped, falling back to
    the next-newest; when *fingerprint* is given, checkpoints written
    for a different specification are skipped too.
    """
    for path in list_checkpoints(directory):
        try:
            state, meta = read_checkpoint(path)
        except CheckpointError:
            continue
        if fingerprint is not None and meta.get("fingerprint") not in (
            None,
            fingerprint,
        ):
            continue
        return path, state, meta
    return None


def spec_fingerprint(flat: Any) -> str:
    """A stable identity for a flat spec (guards cross-spec resumes)."""
    parts = (
        tuple(sorted(flat.inputs)),
        tuple(sorted(flat.streams)),
        tuple(flat.outputs),
    )
    return hashlib.sha256(repr(parts).encode()).hexdigest()[:16]


class CheckpointManager:
    """Writes periodic checkpoints into a directory and prunes old ones."""

    def __init__(
        self,
        directory: str,
        every: int = 1000,
        keep: int = 3,
        fingerprint: Optional[str] = None,
    ) -> None:
        if every <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.directory = directory
        self.every = every
        self.keep = max(1, keep)
        self.fingerprint = fingerprint
        os.makedirs(directory, exist_ok=True)

    def write(
        self,
        monitor: Any,
        events_consumed: int,
        outputs_emitted: int,
        extra_meta: Optional[Dict[str, Any]] = None,
    ) -> str:
        meta = {
            "events_consumed": events_consumed,
            "outputs_emitted": outputs_emitted,
            "fingerprint": self.fingerprint,
        }
        if extra_meta:
            meta.update(extra_meta)
        path = write_checkpoint(
            checkpoint_path(self.directory, events_consumed),
            monitor.snapshot(),
            meta,
        )
        self._prune()
        return path

    def due(self, events_consumed: int) -> bool:
        """True when *events_consumed* hits the configured cadence."""
        return events_consumed % self.every == 0

    def due_since(self, previous: int, events_consumed: int) -> bool:
        """True when a cadence boundary was crossed since *previous*.

        The batch hot path consumes many events per call, so the exact
        multiples :meth:`due` looks for can be jumped over; this checks
        whether *any* boundary lies in ``(previous, events_consumed]``.
        """
        return events_consumed // self.every > previous // self.every

    def maybe_write(
        self, monitor: Any, events_consumed: int, outputs_emitted: int
    ) -> Optional[str]:
        """Write iff *events_consumed* hits the configured cadence."""
        if self.due(events_consumed):
            return self.write(monitor, events_consumed, outputs_emitted)
        return None

    def latest(self) -> Optional[Tuple[str, Dict[str, Any], Dict[str, Any]]]:
        return latest_checkpoint(self.directory, self.fingerprint)

    def _prune(self) -> None:
        for path in list_checkpoints(self.directory)[self.keep :]:
            try:
                os.remove(path)
            except OSError:
                pass
