"""Code generation: flat specification → Python monitor class (§III-A).

The calculation section is emitted as a single ``_calc(self, ts)``
method that computes every stream's current value into a local variable,
following the translation order.  Stream state that survives between
timestamps lives on the instance:

* ``_in_<name>`` — current input values (set by ``push``, reset here),
* ``_last_<name>`` — stored last values for streams used as the first
  argument of a ``last`` (paper's ``v_last`` variables),
* ``_next_<name>`` — pending timestamps of ``delay`` streams (paper's
  ``s_nextTs`` variables).

Lifted functions are bound per stream into the generated module's
namespace; aggregate constructors receive the collection backend chosen
by the mutability analysis for the constructed stream — the single point
where the optimization manifests in code.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..errors import ErrorPolicy, ErrorValue
from ..lang.ast import Delay, Last, Lift, Nil, TimeExpr, UnitExpr
from ..lang.builtins import EventPattern
from ..lang.spec import FlatSpec
from ..structures import Backend
from .monitor import UNIT_VALUE, MonitorBase, MonitorError
from .runtime import RunReport, delay_next, wrap_lift


class CodegenError(Exception):
    """Raised when a specification cannot be translated."""


def _check_identifier(name: str) -> str:
    if not name.isidentifier():
        raise CodegenError(f"stream name {name!r} is not a valid identifier")
    return name


class CodeGenerator:
    """Builds the source text and namespace for one monitor class."""

    def __init__(
        self,
        flat: FlatSpec,
        order: Sequence[str],
        backend_for: Callable[[str], Backend],
        class_name: str = "GeneratedMonitor",
        error_policy: Optional[ErrorPolicy] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        self.flat = flat
        self.order = list(order)
        self.backend_for = backend_for
        self.class_name = class_name
        #: Optional :class:`repro.obs.metrics.MetricsRegistry`; when set,
        #: structure-writing lifts are wrapped with per-stream copy /
        #: in-place counters.  ``None`` (the default) installs no wrapper
        #: at all, so uninstrumented monitors bind the exact same
        #: callables as before.
        self.metrics = metrics
        #: When set, the generated monitor evaluates under the hardened
        #: error semantics (see :mod:`repro.compiler.runtime`): lifts
        #: are wrapped, delay re-arms tolerate error amounts, and a
        #: per-instance :class:`RunReport` counts every fault.  When
        #: ``None`` the output is byte-identical to the seed compiler's.
        self.error_policy = error_policy
        self.namespace: Dict[str, Any] = {
            "MonitorBase": MonitorBase,
            "MonitorError": MonitorError,
            "_UNIT": UNIT_VALUE,
        }
        if error_policy is not None:
            self.namespace["_ERR"] = ErrorValue
            self.namespace["_RunReport"] = RunReport
            self.namespace["_delay_next"] = delay_next
        if sorted(self.order) != sorted(flat.streams):
            raise CodegenError("order must enumerate exactly the spec's streams")

    # -- helpers -------------------------------------------------------------

    def _bind_functions(self) -> None:
        for name, expr in self.flat.definitions.items():
            if isinstance(expr, Lift) and expr.func.name != "merge":
                impl = expr.func.bind(self.backend_for(name))
                if self.metrics is not None:
                    from ..obs.metrics import instrument_lift

                    impl = instrument_lift(impl, expr.func, name, self.metrics)
                if self.error_policy is not None:
                    impl = wrap_lift(
                        name, expr.func.name, impl, self.error_policy
                    )
                self.namespace[f"_f_{name}"] = impl

    def _calc_line(self, name: str, last_prefix: str = "self._last_") -> List[str]:
        expr = self.flat.definitions[name]
        v = f"v_{name}"
        if isinstance(expr, Nil):
            return [f"{v} = None"]
        if isinstance(expr, UnitExpr):
            return [f"{v} = _UNIT if ts == 0 else None"]
        if isinstance(expr, TimeExpr):
            return [f"{v} = ts if v_{expr.operand.name} is not None else None"]
        if isinstance(expr, Last):
            return [
                f"{v} = {last_prefix}{expr.value.name}"
                f" if v_{expr.trigger.name} is not None else None"
            ]
        if isinstance(expr, Delay):
            return [f"{v} = _UNIT if self._next_{name} == ts else None"]
        assert isinstance(expr, Lift)
        args = [f"v_{arg.name}" for arg in expr.args]
        if expr.func.name == "merge":
            a, b = args
            return [f"{v} = {a} if {a} is not None else {b}"]
        if self.error_policy is not None:
            call = f"_f_{name}(rep, ts, {', '.join(args)})"
        else:
            call = f"_f_{name}({', '.join(args)})"
        if expr.func.pattern is EventPattern.ALL:
            guard = " and ".join(f"{a} is not None" for a in args)
            return [f"{v} = {call} if {guard} else None"]
        guard = " or ".join(f"{a} is not None" for a in args)
        return [f"{v} = {call} if ({guard}) else None"]

    # -- assembly ------------------------------------------------------------

    def source(self) -> str:
        flat = self.flat
        inputs = list(flat.inputs)
        delays = [
            name
            for name, expr in flat.definitions.items()
            if isinstance(expr, Delay)
        ]
        last_values = sorted(
            {
                expr.value.name
                for expr in flat.definitions.values()
                if isinstance(expr, Last)
            }
        )
        for name in flat.streams:
            _check_identifier(name)

        lines: List[str] = [
            f"class {self.class_name}(MonitorBase):",
            f"    INPUTS = {tuple(inputs)!r}",
            f"    OUTPUTS = {tuple(flat.outputs)!r}",
            f"    HAS_DELAYS = {bool(delays)!r}",
            "",
            "    def _init_state(self):",
        ]
        error_mode = self.error_policy is not None
        state_lines = (
            [f"        self._in_{name} = None" for name in inputs]
            + [f"        self._last_{name} = None" for name in last_values]
            + [f"        self._next_{name} = None" for name in delays]
            + (["        self._report = _RunReport()"] if error_mode else [])
        )
        lines.extend(state_lines or ["        pass"])

        # Lifted implementations are bound as keyword-default parameters:
        # locals are one dictionary lookup cheaper than module globals in
        # the per-event hot path.
        bound_names = sorted(
            f"_f_{name}"
            for name, expr in flat.definitions.items()
            if isinstance(expr, Lift) and expr.func.name != "merge"
        )
        signature = ", ".join(
            ["self", "ts"] + [f"{fn}={fn}" for fn in bound_names]
        )
        lines += ["", f"    def _calc({signature}):"]
        body: List[str] = []
        if error_mode:
            body.append("rep = self._report")
        # load inputs into locals
        for name in inputs:
            body.append(f"v_{name} = self._in_{name}")
        # calculation section in translation order
        for name in self.order:
            if name in flat.inputs:
                continue
            body.extend(self._calc_line(name))
        # outputs
        if flat.outputs:
            body.append("emit = self._on_output")
            for name in flat.outputs:
                if error_mode:
                    body += [
                        f"if v_{name} is not None:",
                        f"    if v_{name}.__class__ is _ERR:"
                        " rep.error_outputs += 1",
                        f"    emit({name!r}, ts, v_{name})",
                    ]
                else:
                    body.append(
                        f"if v_{name} is not None: emit({name!r}, ts, v_{name})"
                    )
        # store last values for the next timestamps
        for name in last_values:
            body.append(
                f"if v_{name} is not None: self._last_{name} = v_{name}"
            )
        # schedule delays (paper §III-B): reset on reset-stream event or
        # own event; the delay amount is read at the reset timestamp
        for name in delays:
            expr = flat.definitions[name]
            assert isinstance(expr, Delay)
            reset, amount = expr.reset.name, expr.delay.name
            body.append(
                f"if v_{reset} is not None or v_{name} is not None:"
            )
            if error_mode:
                body.append(
                    f"    self._next_{name} = _delay_next(rep, ts, v_{amount})"
                )
            else:
                body.append(
                    f"    self._next_{name} ="
                    f" (ts + v_{amount}) if v_{amount} is not None else None"
                )
        # reset input variables
        for name in inputs:
            body.append(f"self._in_{name} = None")
        if not body:
            body = ["pass"]
        lines.extend("        " + line for line in body)

        # Specialized batch hot path (delay-free specs only): the whole
        # calculation section is inlined into a closure over *local*
        # state — input cells, last cells and the pending/done cursors
        # live in the enclosing frame, so a batch of events runs with
        # zero per-event attribute access.  Specs with delays keep the
        # generic ``MonitorBase.feed_batch`` (the delay catch-up loop
        # needs ``_next_delay`` anyway).
        if not delays and inputs:
            batch_signature = ", ".join(
                ["self", "events"] + [f"{fn}={fn}" for fn in bound_names]
            )
            lines += ["", f"    def feed_batch({batch_signature}):"]
            b: List[str] = [
                "if self._finished:",
                "    raise MonitorError('feed_batch() after finish()')",
            ]
            if error_mode:
                b.append("rep = self._report")
            b.append("emit = self._on_output")
            for name in inputs:
                b.append(f"in_{name} = self._in_{name}")
            for name in last_values:
                b.append(f"last_{name} = self._last_{name}")
            b += [
                "pending = self._pending_ts",
                "done = self._done_ts",
                "count = 0",
                "def _calc_inline(ts):",
            ]
            hot_state = (
                [f"in_{name}" for name in inputs]
                + [f"last_{name}" for name in last_values]
                + ["done"]
            )
            b.append(f"    nonlocal {', '.join(hot_state)}")
            calc_body: List[str] = []
            for name in inputs:
                calc_body.append(f"v_{name} = in_{name}")
            for name in self.order:
                if name in flat.inputs:
                    continue
                calc_body.extend(self._calc_line(name, last_prefix="last_"))
            for name in flat.outputs:
                if error_mode:
                    calc_body += [
                        f"if v_{name} is not None:",
                        f"    if v_{name}.__class__ is _ERR:"
                        " rep.error_outputs += 1",
                        f"    emit({name!r}, ts, v_{name})",
                    ]
                else:
                    calc_body.append(
                        f"if v_{name} is not None: emit({name!r}, ts, v_{name})"
                    )
            for name in last_values:
                calc_body.append(
                    f"if v_{name} is not None: last_{name} = v_{name}"
                )
            for name in inputs:
                calc_body.append(f"in_{name} = None")
            calc_body.append("done = ts")
            b.extend("    " + line for line in calc_body)

            loop_body: List[str] = []
            if len(inputs) == 1:
                loop_body += [
                    f"if name != {inputs[0]!r}:",
                    "    raise MonitorError("
                    "f'unknown input stream {name!r}')",
                ]
            else:
                names_set = "{" + ", ".join(repr(n) for n in inputs) + "}"
                loop_body += [
                    f"if name not in {names_set}:",
                    "    raise MonitorError("
                    "f'unknown input stream {name!r}')",
                ]
            loop_body += [
                "if value is None:",
                "    raise MonitorError("
                "'None is the no-event value; not a valid payload')",
                "if ts != pending:",
                "    if pending is not None:",
                "        if ts < pending:",
                "            raise MonitorError(",
                "                f'out-of-order event: t={ts} after"
                " t={pending}'",
                "            )",
                "        _calc_inline(pending)",
                "        pending = None",
                "    if ts < 0:",
                "        raise MonitorError(f'negative timestamp {ts}')",
                "    if ts <= done:",
                "        raise MonitorError(",
                "            f'event at t={ts} arrived after t={done} was"
                " calculated'",
                "        )",
                "    if done < 0 and ts > 0:",
                "        _calc_inline(0)",
                "    pending = ts",
            ]
            if len(inputs) == 1:
                loop_body.append(f"in_{inputs[0]} = value")
            else:
                loop_body.append(
                    f"if name == {inputs[0]!r}: in_{inputs[0]} = value"
                )
                for name in inputs[1:]:
                    loop_body.append(
                        f"elif name == {name!r}: in_{name} = value"
                    )
            loop_body.append("count += 1")

            b.append("try:")
            b.append("    for ts, name, value in events:")
            b.extend("        " + line for line in loop_body)
            b.append("finally:")
            b.append("    self._pending_ts = pending")
            b.append("    self._done_ts = done")
            for name in inputs:
                b.append(f"    self._in_{name} = in_{name}")
            for name in last_values:
                b.append(f"    self._last_{name} = last_{name}")
            b.append("return count")
            lines.extend("        " + line for line in b)

        # earliest pending delay
        if delays:
            lines += ["", "    def _next_delay(self):"]
            if len(delays) == 1:
                lines.append(f"        return self._next_{delays[0]}")
            else:
                exprs = ", ".join(f"self._next_{d}" for d in delays)
                lines += [
                    f"        pending = [t for t in ({exprs}) if t is not None]",
                    "        return min(pending) if pending else None",
                ]
        return "\n".join(lines) + "\n"

    def compile(self) -> type:
        """Exec the generated source; return the monitor class."""
        self._bind_functions()
        source = self.source()
        code = compile(source, f"<generated {self.class_name}>", "exec")
        exec(code, self.namespace)
        cls = self.namespace[self.class_name]
        cls.SOURCE = source
        cls.CODE = code
        return cls


def generate_monitor_class(
    flat: FlatSpec,
    order: Sequence[str],
    backends: Mapping[str, Backend],
    default_backend: Backend = Backend.PERSISTENT,
    class_name: str = "GeneratedMonitor",
    error_policy: Optional[ErrorPolicy] = None,
    metrics: Optional[Any] = None,
) -> type:
    """Generate and compile a monitor class.

    ``backends`` maps stream names to collection backends; unknown
    streams use *default_backend*.  ``error_policy`` switches on the
    hardened error-propagating evaluation (``None`` compiles the exact
    seed code).  ``metrics`` threads a registry into the lift bindings
    for per-stream copy/in-place counting.
    """
    generator = CodeGenerator(
        flat,
        order,
        lambda name: backends.get(name, default_backend),
        class_name,
        error_policy=error_policy,
        metrics=metrics,
    )
    return generator.compile()


def monitor_class_from_code(
    flat: FlatSpec,
    order: Sequence[str],
    backends: Mapping[str, Backend],
    source: str,
    code_blob: bytes,
    default_backend: Backend = Backend.PERSISTENT,
    class_name: str = "GeneratedMonitor",
    error_policy: Optional[ErrorPolicy] = None,
    metrics: Optional[Any] = None,
) -> Optional[type]:
    """Rebuild a monitor class from a cached marshal'd code object.

    The expensive half of code generation is ``builtins.compile`` on
    the generated source; a plan-cache entry that carries the code
    object (``.pyc``-style, validated against the interpreter magic
    number by the cache layer) skips both source assembly and
    recompilation.  Only the namespace — lift callables bound to the
    per-stream backends — is rebuilt here.  Returns ``None`` when the
    blob does not unmarshal to the expected module (the caller falls
    back to full generation).
    """
    import marshal

    generator = CodeGenerator(
        flat,
        order,
        lambda name: backends.get(name, default_backend),
        class_name,
        error_policy=error_policy,
        metrics=metrics,
    )
    generator._bind_functions()
    try:
        code = marshal.loads(code_blob)
        exec(code, generator.namespace)
    except (ValueError, EOFError, TypeError, SyntaxError, NameError):
        return None
    cls = generator.namespace.get(class_name)
    if not isinstance(cls, type):
        return None
    cls.SOURCE = source
    cls.CODE = code
    return cls


def lift_recipe(flat: FlatSpec) -> Optional[Dict[str, str]]:
    """stream → registry name for every lifted function in *flat*.

    ``None`` when any lift is not the registered builtin of that name
    (e.g. an ad-hoc :class:`~repro.lang.builtins.LiftedFunction`) — a
    name-based recipe could then rebind the wrong implementation, so
    such specs are excluded from the text-keyed fast path.
    """
    from ..lang.builtins import REGISTRY

    lifts: Dict[str, str] = {}
    for name, expr in flat.definitions.items():
        if isinstance(expr, Lift) and expr.func.name != "merge":
            if REGISTRY.get(expr.func.name) is not expr.func:
                return None
            lifts[name] = expr.func.name
    return lifts


def monitor_class_from_recipe(
    lifts: Mapping[str, str],
    backends: Mapping[str, Backend],
    source: str,
    code_blob: bytes,
    default_backend: Backend = Backend.PERSISTENT,
    class_name: str = "GeneratedMonitor",
    error_policy: Optional[ErrorPolicy] = None,
    metrics: Optional[Any] = None,
) -> Optional[type]:
    """Rebuild a monitor class without the flat specification.

    The text-keyed plan-cache fast path: the generated module's
    namespace only needs the per-stream lift callables (resolvable by
    registry name + backend) and a handful of runtime symbols, so a
    warm hit skips the frontend entirely.  Returns ``None`` on any
    mismatch; the caller falls back to parsing and full generation.
    """
    import marshal

    from ..lang.builtins import builtin

    namespace: Dict[str, Any] = {
        "MonitorBase": MonitorBase,
        "MonitorError": MonitorError,
        "_UNIT": UNIT_VALUE,
    }
    if error_policy is not None:
        namespace["_ERR"] = ErrorValue
        namespace["_RunReport"] = RunReport
        namespace["_delay_next"] = delay_next
    try:
        for stream, func_name in lifts.items():
            func = builtin(func_name)
            impl = func.bind(backends.get(stream, default_backend))
            if metrics is not None:
                from ..obs.metrics import instrument_lift

                impl = instrument_lift(impl, func, stream, metrics)
            if error_policy is not None:
                impl = wrap_lift(stream, func_name, impl, error_policy)
            namespace[f"_f_{stream}"] = impl
        code = marshal.loads(code_blob)
        exec(code, namespace)
    except (KeyError, ValueError, EOFError, TypeError, SyntaxError, NameError):
        return None
    cls = namespace.get(class_name)
    if not isinstance(cls, type):
        return None
    cls.SOURCE = source
    cls.CODE = code
    return cls
