"""Interpreted execution engine.

An alternative to code generation: the calculation section is a list of
pre-bound step closures executed over a per-timestamp value dictionary.
Same analysis, same translation order, same collection backends — only
the execution strategy differs.  It exists for

* environments where ``exec``-ing generated source is unwanted, and
* triple-differential testing (interpreted vs generated vs reference
  interpreter): a codegen bug and an analysis bug shake out differently
  across the three.

Roughly 2-3× slower than the generated monitors (dict accesses instead
of local variables), which the engine-comparison benchmark records.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ErrorPolicy, ErrorValue
from ..lang.ast import Delay, Last, Lift, Nil, TimeExpr, UnitExpr
from ..lang.builtins import EventPattern
from ..lang.spec import FlatSpec
from ..structures import Backend
from .codegen import CodegenError
from .monitor import UNIT_VALUE, MonitorBase
from .runtime import RunReport, delay_next, wrap_lift

Step = Callable[["InterpretedMonitorBase", Dict[str, Any], int], None]


def _make_step(
    name: str,
    expr,
    impl: Optional[Callable[..., Any]],
    error_mode: bool = False,
) -> Optional[Step]:
    """One closure computing ``values[name]`` at the current timestamp.

    Under *error_mode* the lift closures thread the monitor's live
    :class:`RunReport` and the timestamp into the (wrapped) *impl* —
    the interpreted twin of the generated engine's hardened calls.
    """
    if isinstance(expr, Nil):
        return None  # absent keys read as None
    if isinstance(expr, UnitExpr):
        def step_unit(monitor, values, ts):
            if ts == 0:
                values[name] = UNIT_VALUE

        return step_unit
    if isinstance(expr, TimeExpr):
        operand = expr.operand.name

        def step_time(monitor, values, ts):
            if values.get(operand) is not None:
                values[name] = ts

        return step_time
    if isinstance(expr, Last):
        value, trigger = expr.value.name, expr.trigger.name

        def step_last(monitor, values, ts):
            if values.get(trigger) is not None:
                values[name] = monitor._last.get(value)

        return step_last
    if isinstance(expr, Delay):
        def step_delay(monitor, values, ts):
            if monitor._next.get(name) == ts:
                values[name] = UNIT_VALUE

        return step_delay
    assert isinstance(expr, Lift)
    arg_names = tuple(arg.name for arg in expr.args)
    if expr.func.pattern is EventPattern.ALL:
        if error_mode:
            def step_strict_hardened(monitor, values, ts):
                args = [values.get(a) for a in arg_names]
                if None not in args:
                    result = impl(monitor._report, ts, *args)
                    if result is not None:
                        values[name] = result

            return step_strict_hardened

        def step_strict(monitor, values, ts):
            args = [values.get(a) for a in arg_names]
            if None not in args:
                values[name] = impl(*args)

        return step_strict

    if error_mode:
        def step_lenient_hardened(monitor, values, ts):
            args = [values.get(a) for a in arg_names]
            if any(a is not None for a in args):
                result = impl(monitor._report, ts, *args)
                if result is not None:
                    values[name] = result

        return step_lenient_hardened

    def step_lenient(monitor, values, ts):
        args = [values.get(a) for a in arg_names]
        if any(a is not None for a in args):
            result = impl(*args)
            if result is not None:
                values[name] = result

    return step_lenient


class InterpretedMonitorBase(MonitorBase):
    """Monitor whose calculation section is a step-closure list."""

    #: Filled in by :func:`make_interpreted_class`.
    STEPS: Sequence[Tuple[str, Optional[Step]]] = ()
    LAST_VALUES: Tuple[str, ...] = ()
    DELAYS: Tuple[str, ...] = ()
    DELAY_PARTS: Tuple[Tuple[str, str, str], ...] = ()  # (name, reset, amount)
    #: Set on hardened classes (compiled with an error policy).
    ERROR_MODE: bool = False
    SOURCE = "<interpreted engine — no generated source>"

    def _init_state(self) -> None:
        self._last: Dict[str, Any] = {}
        self._next: Dict[str, Optional[int]] = {n: None for n in self.DELAYS}
        for name in self.INPUTS:
            setattr(self, "_in_" + name, None)
        if self.ERROR_MODE:
            self._report = RunReport()

    def _calc(self, ts: int) -> None:
        values: Dict[str, Any] = {}
        for name in self.INPUTS:
            values[name] = getattr(self, "_in_" + name)
        for name, step in self.STEPS:
            if step is not None:
                step(self, values, ts)
        emit = self._on_output
        error_mode = self.ERROR_MODE
        for name in self.OUTPUTS:
            value = values.get(name)
            if value is not None:
                if error_mode and value.__class__ is ErrorValue:
                    self._report.error_outputs += 1
                emit(name, ts, value)
        for name in self.LAST_VALUES:
            value = values.get(name)
            if value is not None:
                self._last[name] = value
        for name, reset, amount in self.DELAY_PARTS:
            if values.get(reset) is not None or values.get(name) is not None:
                delta = values.get(amount)
                if error_mode:
                    self._next[name] = delay_next(self._report, ts, delta)
                else:
                    self._next[name] = (
                        ts + delta if delta is not None else None
                    )
        for name in self.INPUTS:
            setattr(self, "_in_" + name, None)

    def _next_delay(self) -> Optional[int]:
        pending = [t for t in self._next.values() if t is not None]
        return min(pending) if pending else None


def make_interpreted_class(
    flat: FlatSpec,
    order: Sequence[str],
    backends: Mapping[str, Backend],
    default_backend: Backend = Backend.PERSISTENT,
    class_name: str = "InterpretedMonitor",
    error_policy: Optional[ErrorPolicy] = None,
    metrics: Optional[Any] = None,
) -> type:
    """Build an interpreted monitor class for *flat* (codegen-free).

    ``error_policy`` enables the hardened error-propagating evaluation,
    mirroring the generated engine (see :mod:`repro.compiler.runtime`).
    ``metrics`` threads a registry into the lift bindings for per-stream
    copy/in-place counting.
    """
    if sorted(order) != sorted(flat.streams):
        raise CodegenError("order must enumerate exactly the spec's streams")
    error_mode = error_policy is not None
    steps: List[Tuple[str, Optional[Step]]] = []
    for name in order:
        expr = flat.definitions.get(name)
        if expr is None:
            continue  # inputs are seeded directly
        impl = None
        hardened_step = False
        if isinstance(expr, Lift):
            impl = expr.func.bind(backends.get(name, default_backend))
            if metrics is not None and expr.func.name != "merge":
                from ..obs.metrics import instrument_lift

                impl = instrument_lift(impl, expr.func, name, metrics)
            if error_mode and expr.func.name != "merge":
                # merge passes values (errors included) through
                # unchanged, so it keeps the plain calling convention.
                impl = wrap_lift(name, expr.func.name, impl, error_policy)
                hardened_step = True
        steps.append((name, _make_step(name, expr, impl, hardened_step)))
    delays = tuple(
        name
        for name, expr in flat.definitions.items()
        if isinstance(expr, Delay)
    )
    delay_parts = tuple(
        (name, expr.reset.name, expr.delay.name)
        for name, expr in flat.definitions.items()
        if isinstance(expr, Delay)
    )
    last_values = tuple(
        sorted(
            {
                expr.value.name
                for expr in flat.definitions.values()
                if isinstance(expr, Last)
            }
        )
    )
    return type(
        class_name,
        (InterpretedMonitorBase,),
        {
            "INPUTS": tuple(flat.inputs),
            "OUTPUTS": tuple(flat.outputs),
            "HAS_DELAYS": bool(delays),
            "STEPS": tuple(steps),
            "LAST_VALUES": last_values,
            "DELAYS": delays,
            "DELAY_PARTS": delay_parts,
            "ERROR_MODE": error_mode,
        },
    )
