"""Numpy kernels for the columnar vector engine.

The vector engine (:mod:`repro.compiler.vector`) lowers each plan step of
a vector-eligible stream family to one whole-column numpy operation.  This
module holds the per-builtin kernel table plus the numpy availability
probe — numpy is an *optional* dependency (the ``repro[vector]`` extra);
everything here degrades gracefully when it is missing.

A kernel receives the numpy module, an optional pre-certified output
buffer (``None`` means allocate), and one positional column per lift
argument.  Columns passed to a kernel only ever contain *valid* lanes:
the executor either applies the kernel to full columns (when every lane
has an event) or to compressed gathers of the event lanes, so kernels
never observe garbage at masked-off positions.  This matters for the
division kernels, which replicate Python's ``ZeroDivisionError`` instead
of numpy's silent ``0``/``inf`` results.

Semantic caveats versus the scalar engines (documented in
``docs/vector.md``): values are held in fixed-width ``int64``/``float64``
columns, so integers beyond 64 bits overflow where Python's unbounded
ints would not.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..lang import types as ty

try:  # pragma: no cover - exercised via both branches in the test suite
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def numpy_available() -> bool:
    """True if numpy is importable in this process (``repro[vector]``)."""
    return _np is not None


def numpy_module() -> Any:
    """Return the numpy module; raise with install guidance if missing."""
    if _np is None:
        raise RuntimeError(
            "the vector engine requires numpy; install the optional "
            "extra (pip install 'repro[vector]') or use engine='auto' "
            "to fall back to the plan engine"
        )
    return _np


# ---------------------------------------------------------------------------
# Column dtypes


def dtype_name_for(t: ty.Type) -> Optional[str]:
    """Column dtype name for a stream type, or ``None`` if not columnar.

    ``Unit`` streams are representable but carry no value column (their
    presence mask is the whole representation), signalled by ``"unit"``.
    """
    if t == ty.INT or t == ty.TIME:
        return "int64"
    if t == ty.FLOAT:
        return "float64"
    if t == ty.BOOL:
        return "bool"
    if t == ty.UNIT:
        return "unit"
    return None


def resolve_dtype(np_mod: Any, name: str) -> Any:
    if name == "int64":
        return np_mod.int64
    if name == "float64":
        return np_mod.float64
    if name == "bool":
        return np_mod.bool_
    raise ValueError(f"no numpy dtype for column kind {name!r}")


# ---------------------------------------------------------------------------
# Kernel table

KernelFn = Callable[..., Any]


class Kernel:
    """A columnar implementation of one registered scalar builtin."""

    __slots__ = ("name", "fn", "supports_out")

    def __init__(self, name: str, fn: KernelFn, supports_out: bool) -> None:
        self.name = name
        self.fn = fn
        #: True when ``fn`` can write into a donated output buffer
        #: (ufunc-backed kernels); the executor only donates then.
        self.supports_out = supports_out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Kernel({self.name!r})"


KERNELS: Dict[str, Kernel] = {}


def _kernel(name: str, supports_out: bool = True) -> Callable[[KernelFn], KernelFn]:
    def deco(fn: KernelFn) -> KernelFn:
        KERNELS[name] = Kernel(name, fn, supports_out)
        return fn

    return deco


def kernel_for(name: str) -> Optional[Kernel]:
    """Kernel for a registered builtin name, or ``None``."""
    return KERNELS.get(name)


# ---------------------------------------------------------------------------
# Prefix scans
#
# Self-recursive running aggregates (``s = merge(op(last(s, x), x), x)``)
# execute a whole batch as one seeded ``ufunc.accumulate`` instead of the
# scalar feedback loop.  ``accumulate`` folds strictly left-to-right
# (``r[i] = op(r[i-1], a[i])``), exactly the order the per-event loop
# uses, so results match bit-for-bit — for float addition/multiplication
# too.  ``max``/``min`` are restricted to int64 columns: their scalar
# kernels are ``np.where`` comparisons whose NaN behaviour differs from
# ``np.maximum``/``np.minimum``.

#: builtin name → (numpy ufunc name, allowed column dtypes)
SCAN_UFUNCS: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "add": ("add", ("int64",)),
    "fadd": ("add", ("float64",)),
    "mul": ("multiply", ("int64",)),
    "fmul": ("multiply", ("float64",)),
    "max": ("maximum", ("int64",)),
    "min": ("minimum", ("int64",)),
}


def scan_ufunc_for(name: str, dtype_name: str) -> Optional[str]:
    """Numpy ufunc name for a scan over *name*, or ``None`` if the
    builtin has no order-exact accumulate on that column dtype."""
    entry = SCAN_UFUNCS.get(name)
    if entry is None:
        return None
    ufunc_name, dtypes = entry
    return ufunc_name if dtype_name in dtypes else None


# Integer arithmetic ---------------------------------------------------------


@_kernel("add")
def _add(np, out, a, b):
    return np.add(a, b, out=out)


@_kernel("sub")
def _sub(np, out, a, b):
    return np.subtract(a, b, out=out)


@_kernel("mul")
def _mul(np, out, a, b):
    return np.multiply(a, b, out=out)


@_kernel("div")
def _div(np, out, a, b):
    # Python raises; numpy would yield 0 with a warning.
    if (np.asarray(b) == 0).any():
        raise ZeroDivisionError("integer division or modulo by zero")
    return np.floor_divide(a, b, out=out)


@_kernel("mod")
def _mod(np, out, a, b):
    if (np.asarray(b) == 0).any():
        raise ZeroDivisionError("integer division or modulo by zero")
    return np.remainder(a, b, out=out)


@_kernel("neg")
def _neg(np, out, a):
    return np.negative(a, out=out)


@_kernel("abs")
def _abs(np, out, a):
    return np.absolute(a, out=out)


# Float arithmetic -----------------------------------------------------------


@_kernel("fadd")
def _fadd(np, out, a, b):
    return np.add(a, b, out=out)


@_kernel("fsub")
def _fsub(np, out, a, b):
    return np.subtract(a, b, out=out)


@_kernel("fmul")
def _fmul(np, out, a, b):
    return np.multiply(a, b, out=out)


@_kernel("fdiv")
def _fdiv(np, out, a, b):
    if (np.asarray(b) == 0.0).any():
        raise ZeroDivisionError("float division by zero")
    return np.true_divide(a, b, out=out)


@_kernel("fabs")
def _fabs(np, out, a):
    return np.absolute(a, out=out)


@_kernel("to_float", supports_out=False)
def _to_float(np, out, a):
    return np.asarray(a).astype(np.float64)


@_kernel("round", supports_out=False)
def _round(np, out, a):
    # np.rint rounds half-to-even, matching Python's round().
    return np.rint(a).astype(np.int64)


# Comparisons ----------------------------------------------------------------


@_kernel("eq")
def _eq(np, out, a, b):
    return np.equal(a, b, out=out)


@_kernel("neq")
def _neq(np, out, a, b):
    return np.not_equal(a, b, out=out)


@_kernel("lt")
def _lt(np, out, a, b):
    return np.less(a, b, out=out)


@_kernel("leq")
def _leq(np, out, a, b):
    return np.less_equal(a, b, out=out)


@_kernel("gt")
def _gt(np, out, a, b):
    return np.greater(a, b, out=out)


@_kernel("geq")
def _geq(np, out, a, b):
    return np.greater_equal(a, b, out=out)


# Boolean logic --------------------------------------------------------------


@_kernel("and")
def _and(np, out, a, b):
    return np.logical_and(a, b, out=out)


@_kernel("or")
def _or(np, out, a, b):
    return np.logical_or(a, b, out=out)


@_kernel("not")
def _not(np, out, a):
    return np.logical_not(a, out=out)


# Selection ------------------------------------------------------------------


@_kernel("ite", supports_out=False)
def _ite(np, out, c, a, b):
    return np.where(c, a, b)


@_kernel("min", supports_out=False)
def _min(np, out, a, b):
    # np.where(a <= b, a, b) matches Python's `a if a <= b else b`
    # exactly, including NaN handling (np.minimum would differ).
    return np.where(np.less_equal(a, b), a, b)


@_kernel("max", supports_out=False)
def _max(np, out, a, b):
    return np.where(np.greater_equal(a, b), a, b)
