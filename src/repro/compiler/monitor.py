"""Monitor runtime: the triggering section (paper §III-B).

Generated monitor classes derive from :class:`MonitorBase`, which owns
the event-driven outer loop: input events arrive in chronological order
via :meth:`push`; whenever the timestamp advances, the pending
*calculation section* (the generated ``_calc``) runs, and any ``delay``
timestamps falling strictly before the new input timestamp are processed
in between — exactly the paper's triggering loop.  :meth:`finish`
corresponds to "when receiving the end of the input t is set to ∞".

Timestamp 0 is always processed (the ``unit`` event and all constants
live there) before any later timestamp.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..structures.interface import MapBase, QueueBase, SetBase, VectorBase

#: The unit value carried by ``unit`` and ``delay`` events.
UNIT_VALUE: Tuple = ()

OutputCallback = Callable[[str, int, Any], None]


class MonitorError(Exception):
    """Raised on protocol violations (out-of-order events, bad names)."""


def freeze(value: Any) -> Any:
    """Snapshot a (possibly mutable) monitor output for safe retention.

    Mutable aggregates emitted by optimized monitors are updated in
    place afterwards; anyone storing outputs instead of serializing them
    immediately must freeze them first.

    The frozen form is *canonical*: two aggregates equal as collections
    freeze to equal (and hashable) values regardless of backend or
    iteration order.  Maps freeze to a ``frozenset`` of ``(key, value)``
    pairs — sorting by key ``repr`` (the previous scheme) is not
    canonical, because two distinct keys may share a ``repr`` and then
    the tuple order depends on insertion order.
    """
    if isinstance(value, SetBase):
        return frozenset(value)
    if isinstance(value, MapBase):
        return frozenset(value.items())
    if isinstance(value, (QueueBase, VectorBase)):
        return tuple(value)
    return value


def validate_columns(
    ts_list: List[int],
    columns: Mapping[str, Any],
    inputs: Iterable[str],
    done_ts: int,
) -> Dict[str, list]:
    """Eagerly validate a columnar batch; return row-converted columns.

    One validation pass shared by every ``feed_columns`` entry point
    (the base row shim, the runner's validating row conversion), with
    checks and messages matching the vector engine's eager columnar
    validation exactly — so rejecting a bad batch is byte-identical
    across engines and never makes partial progress.  Raises
    :class:`MonitorError`; the (possibly empty) ``ts_list`` itself is
    only checked when non-empty, mirroring the vector path.
    """
    converted: Dict[str, list] = {}
    input_set = set(inputs)
    for name, column in columns.items():
        if name not in input_set:
            raise MonitorError(f"unknown input stream {name!r}")
        values = (
            column.tolist() if hasattr(column, "tolist") else list(column)
        )
        if len(values) != len(ts_list):
            raise MonitorError(
                f"column {name!r} has {len(values)} values for"
                f" {len(ts_list)} timestamps"
            )
        # Dense semantics: a hole is not expressible as None (that is
        # the no-event value).  Numeric numpy columns cannot hold None,
        # so scanning the row-converted values matches the vector
        # engine's object-dtype scan.
        if any(value is None for value in values):
            raise MonitorError(
                "None is the no-event value; not a valid payload"
            )
        converted[name] = values
    if not ts_list:
        return converted
    if ts_list[0] < 0:
        raise MonitorError(f"negative timestamp {ts_list[0]}")
    if ts_list[0] <= done_ts:
        raise MonitorError(
            f"event at t={ts_list[0]} arrived after t={done_ts}"
            " was calculated"
        )
    prev = ts_list[0]
    for ts in ts_list[1:]:
        if ts <= prev:
            raise MonitorError(
                "feed_columns() timestamps must be strictly increasing"
            )
        prev = ts
    return converted


class MonitorBase:
    """Base class of all generated monitors."""

    #: Overridden by generated subclasses.
    INPUTS: Tuple[str, ...] = ()
    OUTPUTS: Tuple[str, ...] = ()
    HAS_DELAYS: bool = False
    #: input name → instance attribute; derived automatically from
    #: ``INPUTS`` for every subclass (used by the batch hot path).
    INPUT_ATTRS: Mapping[str, str] = {}

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        cls.INPUT_ATTRS = {name: "_in_" + name for name in cls.INPUTS}

    def __init__(self, on_output: Optional[OutputCallback] = None) -> None:
        self._on_output: OutputCallback = on_output or (lambda n, t, v: None)
        self._pending_ts: Optional[int] = None
        self._done_ts: int = -1
        self._finished = False
        self._init_state()

    # -- generated hooks ---------------------------------------------------

    def _init_state(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _calc(self, ts: int) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _next_delay(self) -> Optional[int]:
        """Earliest pending ``delay`` timestamp; None when none pending."""
        return None

    # -- internal loop -------------------------------------------------------

    def _run_calc(self, ts: int) -> None:
        assert ts > self._done_ts
        self._calc(ts)
        self._done_ts = ts

    def _catch_up(self, ts: Optional[int]) -> None:
        """Process internally-generated timestamps strictly before *ts*
        (all of them when *ts* is None)."""
        if self._done_ts < 0 and (ts is None or ts > 0):
            self._run_calc(0)
        if not self.HAS_DELAYS:
            return
        while True:
            next_delay = self._next_delay()
            if next_delay is None:
                break
            if ts is not None and next_delay >= ts:
                break
            self._run_calc(next_delay)

    def _flush(self) -> None:
        if self._pending_ts is not None:
            self._run_calc(self._pending_ts)
            self._pending_ts = None

    # -- public protocol -------------------------------------------------

    def push(self, name: str, ts: int, value: Any) -> None:
        """Feed one input event; timestamps must be non-decreasing."""
        if self._finished:
            raise MonitorError("push() after finish()")
        if name not in self.INPUTS:
            raise MonitorError(f"unknown input stream {name!r}")
        if value is None:
            raise MonitorError("None is the no-event value; not a valid payload")
        if ts < 0:
            raise MonitorError(f"negative timestamp {ts}")
        if ts <= self._done_ts:
            raise MonitorError(
                f"event at t={ts} arrived after t={self._done_ts} was calculated"
            )
        if self._pending_ts is None:
            self._catch_up(ts)
            self._pending_ts = ts
        elif ts > self._pending_ts:
            self._flush()
            self._catch_up(ts)
            self._pending_ts = ts
        elif ts < self._pending_ts:
            raise MonitorError(
                f"out-of-order event: t={ts} after t={self._pending_ts}"
            )
        setattr(self, "_in_" + name, value)

    def feed_batch(self, events: Iterable[Tuple[int, str, Any]]) -> int:
        """Feed a timestamp-sorted batch of ``(ts, name, value)`` events.

        The batch hot path: semantically identical to calling
        :meth:`push` per event, but the protocol checks, the pending
        bookkeeping and the triggering loop are amortized over the
        whole batch in one stack frame.  Events for the last timestamp
        stay pending (exactly as after :meth:`push`), so batches of any
        size — including batches splitting one timestamp — compose
        with further ``push``/``feed_batch``/``advance``/``finish``
        calls.  Returns the number of events consumed.

        On error the offending event is reported and not consumed, but
        earlier timestamps of the batch may already be calculated —
        the same partial progress a ``push`` loop would have made.
        """
        if self._finished:
            raise MonitorError("feed_batch() after finish()")
        input_attrs = type(self).INPUT_ATTRS
        run_calc = self._run_calc
        next_delay = self._next_delay
        has_delays = self.HAS_DELAYS
        pending = self._pending_ts
        count = 0
        try:
            for ts, name, value in events:
                attr = input_attrs.get(name)
                if attr is None:
                    raise MonitorError(f"unknown input stream {name!r}")
                if value is None:
                    raise MonitorError(
                        "None is the no-event value; not a valid payload"
                    )
                if ts != pending:
                    if pending is not None:
                        if ts < pending:
                            raise MonitorError(
                                f"out-of-order event: t={ts} after"
                                f" t={pending}"
                            )
                        run_calc(pending)
                        pending = None
                    if ts < 0:
                        raise MonitorError(f"negative timestamp {ts}")
                    done = self._done_ts
                    if ts <= done:
                        raise MonitorError(
                            f"event at t={ts} arrived after t={done} was"
                            " calculated"
                        )
                    if done < 0 and ts > 0:
                        run_calc(0)
                    if has_delays:
                        while True:
                            upcoming = next_delay()
                            if upcoming is None or upcoming >= ts:
                                break
                            run_calc(upcoming)
                    pending = ts
                setattr(self, attr, value)
                count += 1
        finally:
            self._pending_ts = pending
        return count

    def feed_columns(
        self,
        timestamps: Any,
        columns: Any,
    ) -> int:
        """Feed dense columnar input: shared timestamps plus one value
        array per stream.

        Every stream in *columns* has an event at every timestamp;
        streams absent from *columns* have none.  Timestamps must be
        strictly increasing.  This base implementation is a row-
        conversion shim over :meth:`feed_batch` (numpy scalars are
        converted back to Python values so outputs stay byte-identical
        across engines); the vector engine overrides it with a
        zero-copy columnar path.
        """
        ts_list = (
            timestamps.tolist()
            if hasattr(timestamps, "tolist")
            else list(timestamps)
        )
        converted = validate_columns(
            ts_list, columns, self.INPUTS, self._done_ts
        )
        if not ts_list:
            return 0
        names = [n for n in self.INPUTS if n in converted]
        events = []
        append = events.append
        for index, ts in enumerate(ts_list):
            for name in names:
                append((ts, name, converted[name][index]))
        return self.feed_batch(events)

    def finish(
        self, end_time: Optional[int] = None, max_steps: int = 1_000_000
    ) -> None:
        """End of input: process everything still pending (t := ∞).

        ``end_time`` bounds self-perpetuating delays; without it a
        runaway periodic clock trips the ``max_steps`` guard.
        """
        if self._finished:
            return
        self._flush()
        if self._done_ts < 0:
            self._run_calc(0)
        if self.HAS_DELAYS:
            steps = 0
            while True:
                next_delay = self._next_delay()
                if next_delay is None:
                    break
                if end_time is not None and next_delay > end_time:
                    break
                steps += 1
                if steps > max_steps:
                    raise MonitorError(
                        f"more than {max_steps} delay steps after end of"
                        " input; pass end_time to bound the monitor"
                    )
                self._run_calc(next_delay)
        self._finished = True

    def advance(self, ts: int) -> None:
        """Declare that no input event will arrive before *ts*.

        Processes everything internally scheduled strictly before *ts*
        (pending input timestamps and due ``delay`` events) without
        requiring an input event — how a live monitor driven by a
        wall clock emits timeouts (e.g. the watchdog spec) while inputs
        are silent.
        """
        if self._finished:
            raise MonitorError("advance() after finish()")
        if ts < 0:
            raise MonitorError(f"negative timestamp {ts}")
        if self._pending_ts is not None:
            if ts <= self._pending_ts:
                return  # nothing new is known
            self._flush()
        self._catch_up(ts)

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Capture the monitor's full state for later :meth:`restore`.

        Mutable aggregates are cloned so the checkpoint stays valid
        while the monitor keeps updating in place.  The output callback
        and the run report (live fault counters, see
        :mod:`repro.compiler.runtime`) are not part of the state.
        """
        from ..structures.clone import clone_value

        state: Dict[str, Any] = {}
        for key, value in vars(self).items():
            if key in ("_on_output", "_report"):
                continue
            if isinstance(value, dict):
                state[key] = {k: clone_value(v) for k, v in value.items()}
            else:
                state[key] = clone_value(value)
        return state

    def restore(self, state: Mapping[str, Any]) -> None:
        """Reset the monitor to a :meth:`snapshot`'s state.

        The snapshot itself is cloned again, so one checkpoint can be
        restored any number of times.
        """
        from ..structures.clone import clone_value

        for key, value in state.items():
            if key in ("_on_output", "_report"):
                continue
            if isinstance(value, dict):
                setattr(
                    self, key, {k: clone_value(v) for k, v in value.items()}
                )
            else:
                setattr(self, key, clone_value(value))

    # -- convenience -------------------------------------------------------

    def run_traces(
        self,
        inputs: Mapping[str, Any],
        end_time: Optional[int] = None,
    ) -> None:
        """Feed whole input traces (Streams or event lists) and finish."""
        events: List[Tuple[int, str, Any]] = []
        for name, trace in inputs.items():
            for ts, value in trace:
                events.append((ts, name, value))
        events.sort(key=lambda e: e[0])
        for ts, name, value in events:
            self.push(name, ts, value)
        self.finish(end_time=end_time)

    def run(
        self,
        inputs: Mapping[str, Any],
        end_time: Optional[int] = None,
    ) -> None:
        """Deprecated alias of :meth:`run_traces`.

        Prefer ``repro.api.run`` (options, batching, RunReport) or
        :meth:`run_traces` for the bare whole-trace convenience.
        """
        from .._deprecation import warn_once

        warn_once(
            "MonitorBase.run",
            "MonitorBase.run() is deprecated; use repro.api.run(...) or"
            " MonitorBase.run_traces(...)",
        )
        self.run_traces(inputs, end_time=end_time)


def collecting_callback() -> Tuple[OutputCallback, Dict[str, List[Tuple[int, Any]]]]:
    """An output callback that records frozen events per output stream."""
    collected: Dict[str, List[Tuple[int, Any]]] = {}
    def on_output(name: str, ts: int, value: Any) -> None:
        collected.setdefault(name, []).append((ts, freeze(value)))

    return on_output, collected


def counting_callback() -> Tuple[OutputCallback, List[int]]:
    """An output callback that only counts events (for benchmarks)."""
    counter = [0]

    def on_output(name: str, ts: int, value: Any) -> None:
        counter[0] += 1

    return on_output, counter
