"""End-to-end compilation pipeline.

``compile_spec`` is the library's main entry point: specification →
flatten → type check → usage graph → mutability analysis → translation
order → generated monitor class.  Three modes:

* ``optimize=True`` (default) — the paper's optimized monitor: mutable
  structures for the mutability set, persistent for the rest, and the
  analysis-chosen translation order that maximizes the former.
* ``optimize=False`` — the paper's baseline: exclusively persistent
  structures ("the natural choice when no dedicated optimization
  algorithm is used"), plain topological order.
* ``backend_override`` — force one backend everywhere (e.g.
  ``Backend.COPYING`` for the naive-copy ablation baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Union

from ..analysis.mutability import MutabilityResult, analyze_mutability
from ..errors import ErrorPolicy, coerce_policy
from ..graph.order import translation_order
from ..graph.usage_graph import build_usage_graph
from ..lang.flatten import flatten
from ..lang.spec import FlatSpec, Specification
from ..lang.typecheck import check_types
from ..semantics.stream import Stream
from ..structures import Backend
from .codegen import generate_monitor_class
from .monitor import MonitorBase, collecting_callback


@dataclass
class CompiledSpec:
    """A compiled specification: instantiate fresh monitors from it."""

    flat: FlatSpec
    monitor_class: type
    order: List[str]
    backends: Dict[str, Backend]
    analysis: Optional[MutabilityResult]
    optimized: bool
    #: The hardened-evaluation policy this spec was compiled with
    #: (``None`` — the default — compiles the seed's exact hot path).
    error_policy: Optional[ErrorPolicy] = None
    #: True when mutable backends were swapped for their alias-guarded
    #: twins (the runtime sanitizer of the mutability analysis).
    alias_guard: bool = False

    @property
    def source(self) -> str:
        """The generated Python source of the monitor class."""
        return self.monitor_class.SOURCE

    @property
    def mutable_streams(self) -> frozenset:
        if self.analysis is None:
            return frozenset()
        return self.analysis.mutable

    def diagnostics(self) -> list:
        """Unified static-analysis diagnostics for this compilation.

        Lint warnings plus — when the spec was compiled with the
        optimizing analysis — the mutability provenance records (why
        each persistent stream was demoted, and any precision losses).
        See :mod:`repro.analysis.diagnostics`.
        """
        from ..analysis.diagnostics import (
            collect_diagnostics,
            lint_diagnostic,
        )
        from ..lang.lint import lint

        if self.analysis is not None:
            return collect_diagnostics(self.flat, self.analysis)
        return [lint_diagnostic(w) for w in lint(self.flat)]

    def persistence_witnesses(self) -> Dict[str, list]:
        """stream → witness records for every persistent-classified
        stream (empty mapping for unoptimized compilations)."""
        if self.analysis is None:
            return {}
        return {
            name: list(ws) for name, ws in self.analysis.witnesses.items()
        }

    def new_monitor(self, on_output=None) -> MonitorBase:
        """Create a fresh monitor instance."""
        return self.monitor_class(on_output)

    def run(
        self,
        inputs: Mapping[str, Any],
        end_time: Optional[int] = None,
    ) -> Dict[str, Stream]:
        """Run on whole input traces; return frozen output streams."""
        on_output, collected = collecting_callback()
        monitor = self.new_monitor(on_output)
        monitor.run(inputs, end_time=end_time)
        return {
            name: Stream(collected.get(name, []))
            for name in self.monitor_class.OUTPUTS
        }


def compile_spec(
    spec: Union[Specification, FlatSpec],
    optimize: bool = True,
    backend_override: Optional[Backend] = None,
    class_name: str = "GeneratedMonitor",
    prune_dead: bool = False,
    engine: str = "codegen",
    error_policy: Union[ErrorPolicy, str, None] = None,
    alias_guard: bool = False,
) -> CompiledSpec:
    """Compile *spec* into a monitor class (see module docstring).

    ``prune_dead=True`` removes streams that cannot influence any
    output before analysis and code generation.  ``engine`` selects the
    execution strategy: ``"codegen"`` (generated Python source, the
    default) or ``"interpreted"`` (step closures, no ``exec``).

    ``error_policy`` (an :class:`~repro.errors.ErrorPolicy` or its
    string value) switches on the hardened error-propagating evaluation
    — lift exceptions become first-class error values, raise with
    context, or suppress the event, per policy, and the monitor carries
    a live :class:`~repro.compiler.runtime.RunReport`.  ``None`` (the
    default) compiles the seed's exact code with zero overhead.

    ``alias_guard=True`` swaps every mutable backend for its guarded
    twin (:mod:`repro.structures.guard`): any access through a stale
    aggregate reference — a bug in the static mutability analysis —
    raises immediately.  A debug/sanitizer mode.
    """
    policy = coerce_policy(error_policy)
    flat = spec if isinstance(spec, FlatSpec) else flatten(spec)
    if not flat.types:
        check_types(flat)
    if prune_dead:
        from ..lang.prune import prune

        flat = prune(flat)
        if not flat.types:
            check_types(flat)

    if backend_override is not None:
        graph = build_usage_graph(flat)
        order = translation_order(graph)
        backends = {name: backend_override for name in flat.streams}
        analysis = None
        optimized = False
    elif optimize:
        analysis = analyze_mutability(flat)
        order = analysis.order
        backends = {
            name: analysis.backend_for(name) for name in flat.streams
        }
        optimized = True
    else:
        graph = build_usage_graph(flat)
        order = translation_order(graph)
        backends = {name: Backend.PERSISTENT for name in flat.streams}
        analysis = None
        optimized = False

    if alias_guard:
        backends = {
            name: Backend.GUARDED if backend is Backend.MUTABLE else backend
            for name, backend in backends.items()
        }

    if engine == "codegen":
        monitor_class = generate_monitor_class(
            flat, order, backends, class_name=class_name, error_policy=policy
        )
    elif engine == "interpreted":
        from .interp_backend import make_interpreted_class

        monitor_class = make_interpreted_class(
            flat, order, backends, class_name=class_name, error_policy=policy
        )
    else:
        raise ValueError(f"unknown engine {engine!r}")
    return CompiledSpec(
        flat=flat,
        monitor_class=monitor_class,
        order=list(order),
        backends=backends,
        analysis=analysis,
        optimized=optimized,
        error_policy=policy,
        alias_guard=alias_guard,
    )
