"""End-to-end compilation pipeline.

:func:`build_compiled_spec` is the engine-room entry point:
specification → flatten → type check → usage graph → mutability
analysis → translation order → monitor class.  Most callers should go
through the :mod:`repro.api` facade (``repro.api.compile`` with a
:class:`~repro.api.CompileOptions`); the historical keyword-sprawl
entry point :func:`compile_spec` still works but is deprecated.

Three compilation modes:

* ``optimize=True`` (default) — the paper's optimized monitor: mutable
  structures for the mutability set, persistent for the rest, and the
  analysis-chosen translation order that maximizes the former.
* ``optimize=False`` — the paper's baseline: exclusively persistent
  structures ("the natural choice when no dedicated optimization
  algorithm is used"), plain topological order.
* ``backend_override`` — force one backend everywhere (e.g.
  ``Backend.COPYING`` for the naive-copy ablation baseline).

Execution engines: ``"codegen"`` (generated Python source),
``"interpreted"`` (step closures) and ``"plan"`` (flat dispatch plan,
see :mod:`repro.compiler.plan`).

With ``plan_cache`` set, the analysis outputs (translation order +
backend choices) are persisted on disk keyed by the spec-and-options
fingerprint; a later compilation of the same spec with the same
options skips the analysis entirely (see
:mod:`repro.compiler.plancache`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Union

from ..analysis.mutability import MutabilityResult, analyze_mutability
from ..errors import ErrorPolicy, coerce_policy
from ..graph.order import translation_order
from ..graph.usage_graph import build_usage_graph
from ..lang.flatten import flatten
from ..lang.spec import FlatSpec, Specification
from ..lang.typecheck import check_types
from ..semantics.stream import Stream
from ..structures import Backend
from ..obs.trace import TRACER
from .codegen import generate_monitor_class, monitor_class_from_code
from .monitor import MonitorBase, collecting_callback
from .plancache import CachedPlan, PlanCache, plan_fingerprint


@dataclass
class CompiledSpec:
    """A compiled specification: instantiate fresh monitors from it."""

    flat: FlatSpec
    monitor_class: type
    order: List[str]
    backends: Dict[str, Backend]
    analysis: Optional[MutabilityResult]
    optimized: bool
    #: The hardened-evaluation policy this spec was compiled with
    #: (``None`` — the default — compiles the seed's exact hot path).
    error_policy: Optional[ErrorPolicy] = None
    #: True when mutable backends were swapped for their alias-guarded
    #: twins (the runtime sanitizer of the mutability analysis).
    alias_guard: bool = False
    #: The execution engine the monitor class was built with.  Always a
    #: concrete engine — ``"auto"`` is resolved before compilation.
    engine: str = "codegen"
    #: The engine string the caller asked for (``"auto"`` before
    #: resolution; equal to ``engine`` for explicit requests).
    engine_requested: str = ""
    #: The :class:`~repro.compiler.vector.VectorClassification` computed
    #: for ``auto``/``vector`` engine requests, or ``None``.  Carries the
    #: per-family eligibility verdicts behind the ``VEC00x`` diagnostics.
    vector_info: Optional[Any] = None
    #: Content + options fingerprint (sha256 hex).  Keys the plan cache
    #: and the durable checkpoints: two compilations differing in any
    #: result-shaping option never share either.
    fingerprint: str = ""
    #: ``None`` — no plan cache consulted; ``True``/``False`` — cache
    #: hit/miss.  Mirrored into :class:`~repro.compiler.runtime.RunReport`.
    plan_cache_hit: Optional[bool] = None
    #: Mutability set restored from a cached plan (when ``analysis`` is
    #: not available because the analysis was skipped on a cache hit).
    cached_mutable: Optional[frozenset] = None
    #: The :class:`~repro.obs.metrics.MetricsRegistry` the lift bindings
    #: were instrumented with, or ``None`` for an uninstrumented compile.
    metrics: Optional[Any] = None
    #: The :class:`~repro.opt.OptimizationResult` of the spec-level
    #: rewrite pass (``rewrite=True``), or ``None`` when it did not run.
    #: Carries per-rewrite provenance records; ``flat`` above is the
    #: rewritten spec.
    rewrite_result: Optional[Any] = None

    @property
    def source(self) -> str:
        """The generated Python source of the monitor class."""
        return self.monitor_class.SOURCE

    @property
    def mutable_streams(self) -> frozenset:
        if self.analysis is not None:
            return self.analysis.mutable
        if self.cached_mutable is not None:
            return self.cached_mutable
        return frozenset()

    def diagnostics(self) -> list:
        """Unified static-analysis diagnostics for this compilation.

        Lint warnings plus — when the spec was compiled with the
        optimizing analysis — the mutability provenance records (why
        each persistent stream was demoted, and any precision losses).
        See :mod:`repro.analysis.diagnostics`.
        """
        from ..analysis.diagnostics import (
            collect_diagnostics,
            lint_diagnostic,
        )
        from ..lang.lint import lint

        if self.analysis is not None:
            diags = collect_diagnostics(self.flat, self.analysis)
        else:
            diags = [lint_diagnostic(w) for w in lint(self.flat)]
        if self.rewrite_result is not None:
            diags.extend(self.rewrite_result.diagnostics())
            diags.sort(key=lambda d: (d.code, d.stream, d.message))
        if self.vector_info is not None:
            vector_diags = self.vector_info.diagnostics()
            if vector_diags:
                diags.extend(vector_diags)
                diags.sort(key=lambda d: (d.code, d.stream, d.message))
        return diags

    def persistence_witnesses(self) -> Dict[str, list]:
        """stream → witness records for every persistent-classified
        stream (empty mapping for unoptimized compilations)."""
        if self.analysis is None:
            return {}
        return {
            name: list(ws) for name, ws in self.analysis.witnesses.items()
        }

    def new_monitor(self, on_output=None) -> MonitorBase:
        """Create a fresh monitor instance."""
        return self.monitor_class(on_output)

    def run_traces(
        self,
        inputs: Mapping[str, Any],
        end_time: Optional[int] = None,
    ) -> Dict[str, Stream]:
        """Run on whole input traces; return frozen output streams."""
        on_output, collected = collecting_callback()
        monitor = self.new_monitor(on_output)
        monitor.run_traces(inputs, end_time=end_time)
        return {
            name: Stream(collected.get(name, []))
            for name in self.monitor_class.OUTPUTS
        }

    def run(
        self,
        inputs: Mapping[str, Any],
        end_time: Optional[int] = None,
    ) -> Dict[str, Stream]:
        """Deprecated alias of :meth:`run_traces`.

        Prefer ``repro.api.run`` (full RunReport, batching, hardening)
        or :meth:`run_traces` for the plain whole-trace convenience.
        """
        from .._deprecation import warn_once

        warn_once(
            "CompiledSpec.run",
            "CompiledSpec.run() is deprecated; use repro.api.run(...) or"
            " CompiledSpec.run_traces(...)",
        )
        return self.run_traces(inputs, end_time=end_time)


def build_compiled_spec(
    spec: Union[Specification, FlatSpec],
    optimize: bool = True,
    backend_override: Optional[Backend] = None,
    class_name: str = "GeneratedMonitor",
    prune_dead: bool = False,
    engine: str = "codegen",
    error_policy: Union[ErrorPolicy, str, None] = None,
    alias_guard: bool = False,
    plan_cache: Union[str, PlanCache, None] = None,
    metrics: Optional[Any] = None,
    rewrite: bool = False,
) -> CompiledSpec:
    """Compile *spec* into a monitor class (see module docstring).

    ``rewrite=True`` runs the spec-level rewrite optimizer
    (:mod:`repro.opt`) on the flattened spec before the mutability
    analysis: semantics-preserving normalizations (duplicate-stream and
    dead-stream elimination, identity-lift removal, lift fusion,
    constant folding), each certified to never demote a mutable stream
    and recorded as ``OPT00x`` provenance on :meth:`CompiledSpec.diagnostics`.

    ``prune_dead=True`` (deprecated — subsumed by the optimizer's
    dead-stream rule) removes streams that cannot influence any
    output before analysis and code generation.  ``engine`` selects the
    execution strategy: ``"codegen"`` (generated Python source, the
    default), ``"interpreted"`` (step closures, no ``exec``) or
    ``"plan"`` (flat dispatch plan).

    ``error_policy`` (an :class:`~repro.errors.ErrorPolicy` or its
    string value) switches on the hardened error-propagating evaluation
    — lift exceptions become first-class error values, raise with
    context, or suppress the event, per policy, and the monitor carries
    a live :class:`~repro.compiler.runtime.RunReport`.  ``None`` (the
    default) compiles the seed's exact code with zero overhead.

    ``alias_guard=True`` swaps every mutable backend for its guarded
    twin (:mod:`repro.structures.guard`): any access through a stale
    aggregate reference — a bug in the static mutability analysis —
    raises immediately.  A debug/sanitizer mode.

    ``plan_cache`` (a directory path or a :class:`PlanCache`) persists
    and reuses the analysis outputs across processes.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) threads
    per-stream copy/in-place counters into the lift bindings; ``None``
    compiles exactly the uninstrumented callables.
    """
    policy = coerce_policy(error_policy)
    with TRACER.span("compile.flatten"):
        flat = spec if isinstance(spec, FlatSpec) else flatten(spec)
        if not flat.types:
            check_types(flat)
        if prune_dead:
            from .._deprecation import warn_once
            from ..opt import project_live

            warn_once(
                "prune_dead",
                "prune_dead=True is deprecated; use rewrite=True — the"
                " optimizer's dead-stream rule (OPT005) subsumes pruning",
            )
            flat = project_live(flat)
            if not flat.types:
                check_types(flat)

    rewrite_result: Optional[Any] = None
    if rewrite:
        from ..opt import optimize_flat

        with TRACER.span("compile.rewrite"):
            rewrite_result = optimize_flat(
                flat,
                certify=optimize and backend_override is None,
                metrics=metrics,
            )
        flat = rewrite_result.flat

    # Engine negotiation: "auto" resolves to the vector engine when
    # every output-owning alias-closed family is vector-eligible (and
    # numpy is importable), else to the plan engine.  The classification
    # is cheap and syntactic, so it also runs on warm cache hits; the
    # resolved engine — not "auto" — enters the fingerprint below.
    requested_engine = engine
    vector_info: Optional[Any] = None
    if engine in ("auto", "vector"):
        from .vector import classify_vector

        vector_info = classify_vector(flat, error_policy=policy)
        if engine == "auto":
            engine = vector_info.auto_engine
        elif not vector_info.numpy_ok:
            raise ValueError(
                "engine='vector' requires numpy; install the optional"
                " extra (pip install 'repro[vector]') or use"
                " engine='auto' to fall back to the plan engine"
            )

    if isinstance(plan_cache, str):
        plan_cache = PlanCache(plan_cache)
    fingerprint = plan_fingerprint(
        flat,
        optimize=optimize,
        backend_override=backend_override,
        alias_guard=alias_guard,
        error_policy=policy,
        engine=engine,
        rewrite=rewrite,
    )

    analysis: Optional[MutabilityResult] = None
    cached_mutable: Optional[frozenset] = None
    plan_cache_hit: Optional[bool] = None
    cached: Optional[CachedPlan] = None
    if plan_cache is not None:
        cached = plan_cache.load(fingerprint)
        plan_cache_hit = cached is not None

    if cached is not None:
        order = list(cached.order)
        backends = dict(cached.backends)
        optimized = cached.optimized
        cached_mutable = cached.mutable
    elif backend_override is not None:
        with TRACER.span("compile.usage_graph"):
            graph = build_usage_graph(flat)
        with TRACER.span("compile.translation_order"):
            order = translation_order(graph)
        backends = {name: backend_override for name in flat.streams}
        optimized = False
    elif optimize:
        if rewrite_result is not None and rewrite_result.analysis is not None:
            # The certifying rewrite pass already analyzed the final
            # rewritten spec; reuse it instead of re-running.
            analysis = rewrite_result.analysis
        else:
            analysis = analyze_mutability(flat)
        order = analysis.order
        backends = {
            name: analysis.backend_for(name) for name in flat.streams
        }
        optimized = True
    else:
        with TRACER.span("compile.usage_graph"):
            graph = build_usage_graph(flat)
        with TRACER.span("compile.translation_order"):
            order = translation_order(graph)
        backends = {name: Backend.PERSISTENT for name in flat.streams}
        optimized = False

    # The cache stores pre-guard backends; the guarded swap is applied
    # on top of both cold and warm compilations.
    pre_guard_backends = dict(backends)
    if alias_guard:
        backends = {
            name: Backend.GUARDED if backend is Backend.MUTABLE else backend
            for name, backend in backends.items()
        }

    monitor_class: Optional[type] = None
    if (
        cached is not None
        and engine == "codegen"
        and cached.code is not None
        and cached.class_name == class_name
    ):
        # The entry carries the generated module (.pyc-style): skip
        # source assembly and recompilation, rebind the namespace only.
        with TRACER.span("compile.codegen"):
            monitor_class = monitor_class_from_code(
                flat,
                order,
                backends,
                cached.source or "",
                cached.code,
                class_name=class_name,
                error_policy=policy,
                metrics=metrics,
            )

    if monitor_class is None:
        with TRACER.span("compile.codegen"):
            if engine == "codegen":
                monitor_class = generate_monitor_class(
                    flat,
                    order,
                    backends,
                    class_name=class_name,
                    error_policy=policy,
                    metrics=metrics,
                )
            elif engine == "interpreted":
                from .interp_backend import make_interpreted_class

                monitor_class = make_interpreted_class(
                    flat,
                    order,
                    backends,
                    class_name=class_name,
                    error_policy=policy,
                    metrics=metrics,
                )
            elif engine == "plan":
                from .plan import make_plan_class

                monitor_class = make_plan_class(
                    flat,
                    order,
                    backends,
                    class_name=class_name,
                    error_policy=policy,
                    metrics=metrics,
                )
            elif engine == "vector":
                from .vector import make_vector_class

                monitor_class = make_vector_class(
                    flat,
                    order,
                    backends,
                    class_name=class_name,
                    error_policy=policy,
                    metrics=metrics,
                    classification=vector_info,
                )
            else:
                raise ValueError(f"unknown engine {engine!r}")

    if plan_cache is not None and cached is None:
        import marshal

        from .codegen import lift_recipe

        code = getattr(monitor_class, "CODE", None)
        blob = marshal.dumps(code) if code is not None else None
        with TRACER.span("compile.cache_store"):
            plan_cache.store(
                fingerprint,
                CachedPlan(
                    order=tuple(order),
                    backends=pre_guard_backends,
                    optimized=optimized,
                    mutable=(
                        frozenset(analysis.mutable)
                        if analysis is not None
                        else frozenset()
                    ),
                    source=(
                        getattr(monitor_class, "SOURCE", None)
                        if blob is not None
                        else None
                    ),
                    code=blob,
                    class_name=class_name if blob is not None else None,
                    lifts=lift_recipe(flat) if blob is not None else None,
                    plan_key=fingerprint,
                ),
            )
    return CompiledSpec(
        flat=flat,
        monitor_class=monitor_class,
        order=list(order),
        backends=backends,
        analysis=analysis,
        optimized=optimized,
        error_policy=policy,
        alias_guard=alias_guard,
        engine=engine,
        engine_requested=requested_engine,
        vector_info=vector_info,
        fingerprint=fingerprint,
        plan_cache_hit=plan_cache_hit,
        cached_mutable=cached_mutable,
        metrics=metrics,
        rewrite_result=rewrite_result,
    )


def instrumented_twin(compiled: CompiledSpec, metrics: Any) -> CompiledSpec:
    """An instrumented copy of *compiled* sharing its analysis outputs.

    Only the monitor class is rebuilt — with *metrics* threaded into the
    lift bindings — reusing the existing flat spec, translation order
    and backend assignment, so no parsing or analysis is repeated.  The
    uninstrumented original stays untouched: runs without metrics keep
    executing the exact pre-existing callables.
    """
    from dataclasses import replace

    flat = compiled.flat
    class_name = compiled.monitor_class.__name__
    if compiled.engine == "codegen":
        monitor_class = generate_monitor_class(
            flat,
            compiled.order,
            compiled.backends,
            class_name=class_name,
            error_policy=compiled.error_policy,
            metrics=metrics,
        )
    elif compiled.engine == "interpreted":
        from .interp_backend import make_interpreted_class

        monitor_class = make_interpreted_class(
            flat,
            compiled.order,
            compiled.backends,
            class_name=class_name,
            error_policy=compiled.error_policy,
            metrics=metrics,
        )
    elif compiled.engine == "plan":
        from .plan import make_plan_class

        monitor_class = make_plan_class(
            flat,
            compiled.order,
            compiled.backends,
            class_name=class_name,
            error_policy=compiled.error_policy,
            metrics=metrics,
        )
    elif compiled.engine == "vector":
        from .vector import make_vector_class

        monitor_class = make_vector_class(
            flat,
            compiled.order,
            compiled.backends,
            class_name=class_name,
            error_policy=compiled.error_policy,
            metrics=metrics,
            classification=compiled.vector_info,
        )
    else:
        raise ValueError(f"unknown engine {compiled.engine!r}")
    return replace(compiled, monitor_class=monitor_class, metrics=metrics)


class _LazyFlat:
    """A flat specification parsed on first use.

    Text-keyed cache hits construct working monitors without touching
    the frontend; anything that actually needs the flat spec (type
    validation, diagnostics, trace-level runs) transparently forces
    the parse through attribute access.
    """

    __slots__ = ("_text", "_flat")

    def __init__(self, text: str) -> None:
        self._text = text
        self._flat: Optional[FlatSpec] = None

    def _force(self) -> FlatSpec:
        if self._flat is None:
            from ..frontend import parse_spec

            spec = parse_spec(self._text)
            flat = spec if isinstance(spec, FlatSpec) else flatten(spec)
            if not flat.types:
                check_types(flat)
            self._flat = flat
        return self._flat

    def __getattr__(self, name: str) -> Any:
        return getattr(self._force(), name)

    def __repr__(self) -> str:
        state = "parsed" if self._flat is not None else "deferred"
        return f"<lazy flat spec ({state})>"


def build_compiled_spec_from_text(
    text: str,
    optimize: bool = True,
    backend_override: Optional[Backend] = None,
    class_name: str = "GeneratedMonitor",
    prune_dead: bool = False,
    engine: str = "codegen",
    error_policy: Union[ErrorPolicy, str, None] = None,
    alias_guard: bool = False,
    plan_cache: Union[str, PlanCache, None] = None,
    metrics: Optional[Any] = None,
    rewrite: bool = False,
) -> CompiledSpec:
    """Compile raw specification text, with the text-keyed fast path.

    With a plan cache, entries are additionally keyed by a hash of the
    unparsed text (:func:`~repro.compiler.plancache.text_fingerprint`),
    and a warm hit rebuilds the monitor class from the cached code
    object and lift recipe — no lexing, parsing, flattening, type
    inference, analysis or code generation.  The flat spec itself
    becomes lazy: it is parsed only if something actually asks for it.
    Everything else behaves exactly like parsing and calling
    :func:`build_compiled_spec`.
    """
    from .codegen import monitor_class_from_recipe
    from .plancache import text_fingerprint

    policy = coerce_policy(error_policy)
    if isinstance(plan_cache, str):
        plan_cache = PlanCache(plan_cache)

    text_key: Optional[str] = None
    if plan_cache is not None and engine == "codegen":
        text_key = text_fingerprint(
            text,
            optimize=optimize,
            backend_override=backend_override,
            alias_guard=alias_guard,
            error_policy=policy,
            engine=engine,
            prune_dead=prune_dead,
            rewrite=rewrite,
        )
        cached = plan_cache.load(text_key)
        if (
            cached is not None
            and cached.code is not None
            and cached.lifts is not None
            and cached.class_name == class_name
        ):
            backends = dict(cached.backends)
            if alias_guard:
                backends = {
                    name: (
                        Backend.GUARDED
                        if backend is Backend.MUTABLE
                        else backend
                    )
                    for name, backend in backends.items()
                }
            monitor_class = monitor_class_from_recipe(
                cached.lifts,
                backends,
                cached.source or "",
                cached.code,
                class_name=class_name,
                error_policy=policy,
                metrics=metrics,
            )
            if monitor_class is not None:
                return CompiledSpec(
                    flat=_LazyFlat(text),  # type: ignore[arg-type]
                    monitor_class=monitor_class,
                    order=list(cached.order),
                    backends=backends,
                    analysis=None,
                    optimized=cached.optimized,
                    error_policy=policy,
                    alias_guard=alias_guard,
                    engine=engine,
                    engine_requested=engine,
                    fingerprint=cached.plan_key or text_key,
                    plan_cache_hit=True,
                    cached_mutable=cached.mutable,
                    metrics=metrics,
                )

    from ..frontend import parse_spec

    compiled = build_compiled_spec(
        parse_spec(text),
        optimize=optimize,
        backend_override=backend_override,
        class_name=class_name,
        prune_dead=prune_dead,
        engine=engine,
        error_policy=policy,
        alias_guard=alias_guard,
        plan_cache=plan_cache,
        metrics=metrics,
        rewrite=rewrite,
    )
    if text_key is not None:
        from .codegen import lift_recipe

        code = getattr(compiled.monitor_class, "CODE", None)
        lifts = lift_recipe(compiled.flat)
        if code is not None and lifts is not None:
            import marshal

            # Stored backends are pre-guard, like flat-keyed entries;
            # under alias_guard every GUARDED slot came from the swap
            # (unless the override itself was GUARDED, which the swap
            # left untouched).
            stored = dict(compiled.backends)
            if alias_guard and backend_override is not Backend.GUARDED:
                stored = {
                    name: (
                        Backend.MUTABLE
                        if backend is Backend.GUARDED
                        else backend
                    )
                    for name, backend in stored.items()
                }
            plan_cache.store(
                text_key,
                CachedPlan(
                    order=tuple(compiled.order),
                    backends=stored,
                    optimized=compiled.optimized,
                    mutable=compiled.mutable_streams,
                    source=getattr(compiled.monitor_class, "SOURCE", None),
                    code=marshal.dumps(code),
                    class_name=class_name,
                    lifts=lifts,
                    plan_key=compiled.fingerprint,
                ),
            )
    return compiled


def compile_spec(
    spec: Union[Specification, FlatSpec],
    optimize: bool = True,
    backend_override: Optional[Backend] = None,
    class_name: str = "GeneratedMonitor",
    prune_dead: bool = False,
    engine: str = "codegen",
    error_policy: Union[ErrorPolicy, str, None] = None,
    alias_guard: bool = False,
    plan_cache: Union[str, PlanCache, None] = None,
) -> CompiledSpec:
    """Deprecated keyword-sprawl entry point.

    Use ``repro.api.compile(spec, CompileOptions(...))`` instead; this
    shim delegates to :func:`build_compiled_spec` unchanged.
    """
    from .._deprecation import warn_once

    warn_once(
        "compile_spec",
        "compile_spec() is deprecated; use repro.api.compile(spec,"
        " CompileOptions(...))",
    )
    return build_compiled_spec(
        spec,
        optimize=optimize,
        backend_override=backend_override,
        class_name=class_name,
        prune_dead=prune_dead,
        engine=engine,
        error_policy=error_policy,
        alias_guard=alias_guard,
        plan_cache=plan_cache,
    )
