"""Execution planning: flat spec → precomputed dispatch plan.

The planning stage lowers a translation order into an
:class:`ExecutionPlan`: a flat, array-shaped program for the
calculation section.  Every stream gets an integer *slot*; every
operator becomes one row of parallel tuples (opcode, destination slot,
argument slots, resolved lift callable).  Executing a timestamp is then
a single loop over index arrays — no per-event dictionary lookups, no
attribute chasing, and no AST in sight.

Three consumers:

* :func:`make_plan_class` — the ``engine="plan"`` monitor: a
  :class:`MonitorBase` subclass whose ``_calc`` interprets the plan
  over a preallocated slot list.  Differentially identical to the
  generated and interpreted engines.
* the plan cache (:mod:`repro.compiler.plancache`) — the analysis
  outputs a plan is built from (translation order, per-stream backend
  choices) are exactly what gets persisted and reloaded, so repeated
  compilations of an unchanged spec skip the analysis entirely.
* tooling — :meth:`ExecutionPlan.describe` renders the plan as a
  readable program listing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ErrorPolicy, ErrorValue
from ..lang.ast import Delay, Last, Lift, Nil, TimeExpr, UnitExpr
from ..lang.builtins import EventPattern
from ..lang.spec import FlatSpec
from ..structures import Backend
from .codegen import CodegenError
from .monitor import UNIT_VALUE, MonitorBase
from .runtime import RunReport, delay_next, wrap_lift

#: Plan opcodes.  NIL streams compile to no op at all (their slot just
#: stays ``None``), so the smallest opcode is UNIT.
OP_UNIT = 0
OP_TIME = 1
OP_LAST = 2
OP_DELAY = 3
OP_MERGE = 4
OP_LIFT_ALL = 5
OP_LIFT_ANY = 6

_OP_NAMES = {
    OP_UNIT: "unit",
    OP_TIME: "time",
    OP_LAST: "last",
    OP_DELAY: "delay",
    OP_MERGE: "merge",
    OP_LIFT_ALL: "lift",
    OP_LIFT_ANY: "lift",
}


@dataclass(frozen=True)
class ExecutionPlan:
    """A flat dispatch program for one compiled specification.

    All sequences are tuples of primitive indices, precomputed once at
    compile time.  ``ops`` rows are ``(opcode, dst_slot, arg_indices,
    callable)``; the meaning of ``arg_indices`` depends on the opcode:

    * ``OP_UNIT`` — empty,
    * ``OP_TIME`` / ``OP_MERGE`` / ``OP_LIFT_*`` — argument slots,
    * ``OP_LAST`` — ``(last_index, trigger_slot)``,
    * ``OP_DELAY`` — ``(delay_index,)``.
    """

    #: stream name → slot index (inputs first, then definitions).
    slot_of: Mapping[str, int]
    n_slots: int
    #: ``(slot, "_in_<name>", name)`` per input stream.
    input_loads: Tuple[Tuple[int, str, str], ...]
    ops: Tuple[Tuple[int, int, Tuple[int, ...], Optional[Callable]], ...]
    #: ``(name, slot)`` per output stream, in declaration order.
    outputs: Tuple[Tuple[str, int], ...]
    #: ``(src_slot, last_index)`` — store surviving ``last`` values.
    last_stores: Tuple[Tuple[int, int], ...]
    n_last: int
    #: ``(delay_index, own_slot, reset_slot, amount_slot)`` per delay.
    delay_arms: Tuple[Tuple[int, int, int, int], ...]
    n_delays: int
    error_mode: bool
    #: per-slot backend choice (the mutability analysis, flattened).
    slot_backends: Tuple[Optional[Backend], ...] = field(default=())

    def describe(self) -> str:
        """The plan as a readable program listing (for tooling/tests)."""
        name_of = {slot: name for name, slot in self.slot_of.items()}
        lines = [
            f"plan: {self.n_slots} slots, {len(self.ops)} ops,"
            f" {self.n_last} last cells, {self.n_delays} delay cells"
        ]
        for slot, _attr, name in self.input_loads:
            lines.append(f"  s{slot:<3} <- input {name}")
        for opcode, dst, args, fn in self.ops:
            op = _OP_NAMES[opcode]
            detail = f" {fn.__name__}" if fn is not None else ""
            argtext = ", ".join(f"s{a}" for a in args)
            lines.append(
                f"  s{dst:<3} <- {op}{detail}({argtext})"
                f"   # {name_of.get(dst, '?')}"
            )
        for name, slot in self.outputs:
            lines.append(f"  out {name} <- s{slot}")
        return "\n".join(lines)


def build_plan(
    flat: FlatSpec,
    order: Sequence[str],
    backends: Mapping[str, Backend],
    default_backend: Backend = Backend.PERSISTENT,
    error_policy: Optional[ErrorPolicy] = None,
    metrics: Optional[Any] = None,
) -> ExecutionPlan:
    """Lower *flat* along *order* into an :class:`ExecutionPlan`."""
    if sorted(order) != sorted(flat.streams):
        raise CodegenError("order must enumerate exactly the spec's streams")
    error_mode = error_policy is not None
    slot_of: Dict[str, int] = {
        name: index for index, name in enumerate(flat.streams)
    }
    input_loads = tuple(
        (slot_of[name], "_in_" + name, name) for name in flat.inputs
    )
    last_index: Dict[str, int] = {}
    for expr in flat.definitions.values():
        if isinstance(expr, Last):
            last_index.setdefault(expr.value.name, len(last_index))
    delay_index: Dict[str, int] = {}
    for name, expr in flat.definitions.items():
        if isinstance(expr, Delay):
            delay_index.setdefault(name, len(delay_index))

    ops: List[Tuple[int, int, Tuple[int, ...], Optional[Callable]]] = []
    for name in order:
        expr = flat.definitions.get(name)
        if expr is None:  # input streams are loaded, not computed
            continue
        dst = slot_of[name]
        if isinstance(expr, Nil):
            continue  # the slot simply stays None
        if isinstance(expr, UnitExpr):
            ops.append((OP_UNIT, dst, (), None))
        elif isinstance(expr, TimeExpr):
            ops.append((OP_TIME, dst, (slot_of[expr.operand.name],), None))
        elif isinstance(expr, Last):
            ops.append(
                (
                    OP_LAST,
                    dst,
                    (last_index[expr.value.name], slot_of[expr.trigger.name]),
                    None,
                )
            )
        elif isinstance(expr, Delay):
            ops.append((OP_DELAY, dst, (delay_index[name],), None))
        else:
            assert isinstance(expr, Lift)
            arg_slots = tuple(slot_of[arg.name] for arg in expr.args)
            if expr.func.name == "merge":
                ops.append((OP_MERGE, dst, arg_slots, None))
                continue
            impl = expr.func.bind(backends.get(name, default_backend))
            if metrics is not None:
                from ..obs.metrics import instrument_lift

                impl = instrument_lift(impl, expr.func, name, metrics)
            if error_mode:
                impl = wrap_lift(name, expr.func.name, impl, error_policy)
            opcode = (
                OP_LIFT_ALL
                if expr.func.pattern is EventPattern.ALL
                else OP_LIFT_ANY
            )
            ops.append((opcode, dst, arg_slots, impl))

    last_stores = tuple(
        (slot_of[name], index) for name, index in last_index.items()
    )
    delay_arms = []
    for name, index in delay_index.items():
        expr = flat.definitions[name]
        assert isinstance(expr, Delay)
        delay_arms.append(
            (
                index,
                slot_of[name],
                slot_of[expr.reset.name],
                slot_of[expr.delay.name],
            )
        )
    slot_backends = tuple(
        backends.get(name) for name in flat.streams
    )
    return ExecutionPlan(
        slot_of=slot_of,
        n_slots=len(slot_of),
        input_loads=input_loads,
        ops=tuple(ops),
        outputs=tuple((name, slot_of[name]) for name in flat.outputs),
        last_stores=last_stores,
        n_last=len(last_index),
        delay_arms=tuple(delay_arms),
        n_delays=len(delay_index),
        error_mode=error_mode,
        slot_backends=slot_backends,
    )


class PlanMonitorBase(MonitorBase):
    """Monitor executing an :class:`ExecutionPlan` over slot arrays."""

    PLAN: ExecutionPlan = None  # type: ignore[assignment]
    SOURCE = "<plan engine — flat dispatch plan, no generated source>"

    def _init_state(self) -> None:
        plan = self.PLAN
        self._values: List[Any] = [None] * plan.n_slots
        self._last_cells: List[Any] = [None] * plan.n_last
        self._next_cells: List[Optional[int]] = [None] * plan.n_delays
        for _slot, attr, _name in plan.input_loads:
            setattr(self, attr, None)
        if plan.error_mode:
            self._report = RunReport()

    def _calc(self, ts: int) -> None:
        plan = self.PLAN
        values = self._values
        for i in range(len(values)):
            values[i] = None
        for slot, attr, _name in plan.input_loads:
            values[slot] = getattr(self, attr)
        last = self._last_cells
        nxt = self._next_cells
        error_mode = plan.error_mode
        rep = self._report if error_mode else None
        for opcode, dst, args, fn in plan.ops:
            if opcode == OP_LIFT_ALL:
                triggered = True
                for a in args:
                    if values[a] is None:
                        triggered = False
                        break
                if triggered:
                    if error_mode:
                        values[dst] = fn(rep, ts, *[values[a] for a in args])
                    else:
                        values[dst] = fn(*[values[a] for a in args])
            elif opcode == OP_MERGE:
                first = values[args[0]]
                values[dst] = first if first is not None else values[args[1]]
            elif opcode == OP_LIFT_ANY:
                triggered = False
                for a in args:
                    if values[a] is not None:
                        triggered = True
                        break
                if triggered:
                    if error_mode:
                        values[dst] = fn(rep, ts, *[values[a] for a in args])
                    else:
                        values[dst] = fn(*[values[a] for a in args])
            elif opcode == OP_LAST:
                if values[args[1]] is not None:
                    values[dst] = last[args[0]]
            elif opcode == OP_TIME:
                if values[args[0]] is not None:
                    values[dst] = ts
            elif opcode == OP_UNIT:
                if ts == 0:
                    values[dst] = UNIT_VALUE
            else:  # OP_DELAY
                if nxt[args[0]] == ts:
                    values[dst] = UNIT_VALUE
        emit = self._on_output
        for name, slot in plan.outputs:
            value = values[slot]
            if value is not None:
                if error_mode and value.__class__ is ErrorValue:
                    rep.error_outputs += 1
                emit(name, ts, value)
        for src_slot, index in plan.last_stores:
            value = values[src_slot]
            if value is not None:
                last[index] = value
        for index, own_slot, reset_slot, amount_slot in plan.delay_arms:
            if (
                values[reset_slot] is not None
                or values[own_slot] is not None
            ):
                amount = values[amount_slot]
                if error_mode:
                    nxt[index] = delay_next(rep, ts, amount)
                else:
                    nxt[index] = ts + amount if amount is not None else None
        for _slot, attr, _name in plan.input_loads:
            setattr(self, attr, None)

    def _next_delay(self) -> Optional[int]:
        pending = [t for t in self._next_cells if t is not None]
        return min(pending) if pending else None


def make_plan_class(
    flat: FlatSpec,
    order: Sequence[str],
    backends: Mapping[str, Backend],
    default_backend: Backend = Backend.PERSISTENT,
    class_name: str = "PlanMonitor",
    error_policy: Optional[ErrorPolicy] = None,
    metrics: Optional[Any] = None,
) -> type:
    """Build a plan-engine monitor class for *flat*.

    Same analysis inputs as the generated and interpreted engines; only
    the execution strategy differs (flat dispatch over slot arrays).
    """
    plan = build_plan(
        flat,
        order,
        backends,
        default_backend=default_backend,
        error_policy=error_policy,
        metrics=metrics,
    )
    return type(
        class_name,
        (PlanMonitorBase,),
        {
            "INPUTS": tuple(flat.inputs),
            "OUTPUTS": tuple(flat.outputs),
            "HAS_DELAYS": plan.n_delays > 0,
            "PLAN": plan,
        },
    )
