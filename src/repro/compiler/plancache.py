"""Compiled-plan cache: skip the analysis for specs seen before.

Compiling a specification spends most of its time in the static
analysis (usage-graph formulas, the triggering approximation, the
NP-complete order search).  The *outputs* of that work — the
translation order and the per-stream backend choices — are tiny and
fully determine the generated monitor.  This module persists them on
disk, keyed by a fingerprint of the flat specification **and** every
compile option that influences the result, so repeated CLI/server
invocations of an unchanged spec skip parsing-adjacent work and the
whole analysis.

Design points:

* **Options live in the key.**  Two compilations that differ in
  backend override, ``alias_guard``, ``error_policy``, ``optimize`` or
  engine must never share a cached plan (nor a checkpoint — the same
  fingerprint guards :class:`~repro.compiler.checkpoint.CheckpointManager`
  files via :attr:`~repro.compiler.pipeline.CompiledSpec.fingerprint`).
* **Corruption-tolerant.**  A torn, truncated or hand-edited cache
  file is treated as a miss, never an error; writes are atomic
  (``os.replace``), so concurrent compilers can share a directory.
* **Self-validating.**  Entries embed the format version and their own
  key; a file renamed onto the wrong key is ignored.

Cache hits are observable: :attr:`CompiledSpec.plan_cache_hit` and the
``plan_cache_hit`` field of :class:`~repro.compiler.runtime.RunReport`.
"""

from __future__ import annotations

import base64
import hashlib
import importlib.util
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ErrorPolicy
from ..obs.metrics import DEFAULT_REGISTRY
from ..structures import Backend

#: Bump when the entry layout (or plan semantics) change; old entries
#: are then silently treated as misses.
PLAN_CACHE_VERSION = 1

PLAN_SUFFIX = ".plan.json"

#: Marshal'd code objects are only portable within one interpreter
#: build (exactly the ``.pyc`` rule); entries record this tag and the
#: code payload is ignored — plan-only hit — when it does not match.
CODE_MAGIC = importlib.util.MAGIC_NUMBER.hex()


def flat_fingerprint(flat: Any) -> str:
    """A content hash of a flat specification.

    Unlike :func:`~repro.compiler.checkpoint.spec_fingerprint` (which
    predates this module and only hashes stream *names*), this digest
    covers the defining expressions and declared types, so two specs
    that merely share their stream names do not collide.
    """
    parts = (
        "flat-v1",
        tuple(sorted((name, str(ty)) for name, ty in flat.inputs.items())),
        tuple(
            sorted(
                (name, str(expr)) for name, expr in flat.definitions.items()
            )
        ),
        tuple(flat.outputs),
        tuple(sorted((name, str(ty)) for name, ty in flat.types.items())),
    )
    return hashlib.sha256(repr(parts).encode()).hexdigest()


def _ruleset_version() -> int:
    """The rewrite-rule catalogue version (lazy import: no cycle)."""
    from ..opt import RULESET_VERSION

    return RULESET_VERSION


def _numpy_bit(engine: str) -> Optional[bool]:
    """Numpy availability, keyed only for numpy-sensitive engines.

    ``None`` for engines whose compiled artifact cannot depend on
    numpy, so their keys are unchanged by numpy installs/removals.
    """
    if engine not in ("vector", "auto"):
        return None
    from .kernels import numpy_available

    return numpy_available()


def plan_fingerprint(
    flat: Any,
    *,
    optimize: bool = True,
    backend_override: Optional[Backend] = None,
    alias_guard: bool = False,
    error_policy: Optional[ErrorPolicy] = None,
    engine: str = "codegen",
    rewrite: bool = False,
) -> str:
    """The cache key: spec content + every result-shaping option.

    Also used as the checkpoint fingerprint of compiled specs, so a
    monitor compiled with (say) ``alias_guard=True`` can never resume
    from a checkpoint written by its unguarded twin.

    The rewrite-optimizer flag and its rule-set version are part of the
    options tuple: toggling ``rewrite`` (or changing what the rules do)
    can never serve a plan cached under the other configuration.

    For the vector engine (and ``auto``, which resolves depending on
    numpy's presence) the numpy-availability bit is part of the key: a
    warm cache shared across environments must never replay a
    vector-engine plan into a numpy-less process.
    """
    options = (
        "opts-v3",
        bool(optimize),
        backend_override.name if backend_override is not None else None,
        bool(alias_guard),
        error_policy.value if error_policy is not None else None,
        engine,
        bool(rewrite),
        _ruleset_version() if rewrite else 0,
        _numpy_bit(engine),
    )
    digest = hashlib.sha256()
    digest.update(flat_fingerprint(flat).encode())
    digest.update(repr(options).encode())
    return digest.hexdigest()


def text_fingerprint(
    text: str,
    *,
    optimize: bool = True,
    backend_override: Optional[Backend] = None,
    alias_guard: bool = False,
    error_policy: Optional[ErrorPolicy] = None,
    engine: str = "codegen",
    prune_dead: bool = False,
    rewrite: bool = False,
) -> str:
    """Cache key for raw specification text: hash of the text itself.

    Keying on the unparsed text lets a warm compilation skip the
    frontend entirely — no lexing, parsing, flattening or type
    inference — which is the bulk of a repeated CLI/server
    invocation's startup cost.  ``prune_dead`` and ``rewrite`` (plus
    the rewrite rule-set version) are part of this key — unlike
    :func:`plan_fingerprint`, where both transforms run before the flat
    spec is hashed and are therefore covered by content, the raw text
    here is identical whether or not the optimizer runs, so omitting
    the flags would serve a stale plan across a toggle.
    """
    options = (
        "text-opts-v3",
        bool(optimize),
        backend_override.name if backend_override is not None else None,
        bool(alias_guard),
        error_policy.value if error_policy is not None else None,
        engine,
        bool(prune_dead),
        bool(rewrite),
        _ruleset_version() if rewrite else 0,
        _numpy_bit(engine),
    )
    digest = hashlib.sha256()
    digest.update(b"text-v1\n")
    digest.update(text.encode())
    digest.update(repr(options).encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class CachedPlan:
    """The analysis outputs a compilation can be replayed from.

    ``source``/``code`` optionally carry the generated monitor module
    (source text and its marshal'd code object) for the codegen
    engine, so a warm hit also skips source assembly and
    ``builtins.compile``.  ``class_name`` records the name the module
    was generated under; a compilation requesting a different class
    name regenerates instead of reusing the code payload.
    """

    order: Tuple[str, ...]
    backends: Dict[str, Backend]
    optimized: bool
    mutable: frozenset
    source: Optional[str] = None
    code: Optional[bytes] = None
    class_name: Optional[str] = None
    #: stream → registry name of its lifted function; lets a text-keyed
    #: hit rebuild the generated module's namespace without the flat
    #: spec.  ``None`` when any lift is a non-registry function (then
    #: the entry is only usable through the flat-keyed path).
    lifts: Optional[Dict[str, str]] = None
    #: The flat-keyed fingerprint of the same compilation, so monitors
    #: produced by a text-keyed hit share checkpoint identity with
    #: their cold-compiled twins.
    plan_key: Optional[str] = None


class PlanCache:
    """A directory of compiled-plan entries, shared and crash-safe."""

    def __init__(self, directory: str) -> None:
        self.directory = os.path.expanduser(directory)
        self.hits = 0
        self.misses = 0
        os.makedirs(self.directory, exist_ok=True)

    def path_for(self, key: str) -> str:
        return os.path.join(self.directory, key[:40] + PLAN_SUFFIX)

    def _miss(self) -> None:
        self.misses += 1
        DEFAULT_REGISTRY.inc("plan_cache.misses")

    def _hit(self) -> None:
        self.hits += 1
        DEFAULT_REGISTRY.inc("plan_cache.hits")

    def load(self, key: str) -> Optional[CachedPlan]:
        """The cached plan for *key*, or ``None`` (miss/corrupt/stale)."""
        try:
            with open(self.path_for(key)) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self._miss()
            return None
        try:
            if entry["version"] != PLAN_CACHE_VERSION or entry["key"] != key:
                self._miss()
                return None
            source = code = class_name = None
            if (
                entry.get("code")
                and entry.get("magic") == CODE_MAGIC
                and isinstance(entry.get("source"), str)
            ):
                try:
                    code = base64.b64decode(entry["code"])
                    source = entry["source"]
                    class_name = entry.get("class_name")
                except (ValueError, TypeError):
                    # Corrupt code payload: still a valid plan-only hit.
                    source = code = class_name = None
            lifts = entry.get("lifts")
            if lifts is not None and not (
                isinstance(lifts, dict)
                and all(
                    isinstance(k, str) and isinstance(v, str)
                    for k, v in lifts.items()
                )
            ):
                lifts = None
            plan = CachedPlan(
                order=tuple(entry["order"]),
                backends={
                    name: Backend[value]
                    for name, value in entry["backends"].items()
                },
                optimized=bool(entry["optimized"]),
                mutable=frozenset(entry["mutable"]),
                source=source,
                code=code,
                class_name=class_name,
                lifts=lifts,
                plan_key=entry.get("plan_key") or None,
            )
        except (KeyError, TypeError, AttributeError):
            self._miss()
            return None
        self._hit()
        return plan

    def store(self, key: str, plan: CachedPlan) -> str:
        """Atomically persist *plan* under *key*; returns the path."""
        entry = {
            "version": PLAN_CACHE_VERSION,
            "key": key,
            "order": list(plan.order),
            "backends": {
                name: backend.name for name, backend in plan.backends.items()
            },
            "optimized": plan.optimized,
            "mutable": sorted(plan.mutable),
        }
        if plan.code is not None and plan.source is not None:
            entry["magic"] = CODE_MAGIC
            entry["source"] = plan.source
            entry["code"] = base64.b64encode(plan.code).decode("ascii")
            entry["class_name"] = plan.class_name
        if plan.lifts is not None:
            entry["lifts"] = dict(plan.lifts)
        if plan.plan_key is not None:
            entry["plan_key"] = plan.plan_key
        path = self.path_for(key)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "w") as handle:
            json.dump(entry, handle, indent=1, sort_keys=True)
        os.replace(tmp_path, path)
        return path

    def entries(self) -> List[str]:
        """Paths of all entries currently in the cache directory."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(
            os.path.join(self.directory, name)
            for name in names
            if name.endswith(PLAN_SUFFIX)
        )

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        removed = 0
        for path in self.entries():
            try:
                os.remove(path)
                removed += 1
            except OSError:
                pass
        return removed
