"""Hardened monitor runtime: error propagation, reports, recovery.

This module is the runtime half of the compiler's hardening layer:

* :class:`RunReport` — structured accounting of everything abnormal a
  run absorbed (lift exceptions, propagated/substituted errors, invalid
  inputs, ingestion skips, checkpoints, resume provenance), so "the
  monitor survived" is an auditable claim rather than silence;
* :func:`wrap_lift` — the per-stream wrapper installed by the code
  generators when a monitor is compiled with an
  :class:`~repro.errors.ErrorPolicy`: it short-circuits error-valued
  arguments, converts lift exceptions into :class:`ErrorValue` events
  (or raises with context / substitutes, per policy), and counts
  everything into the monitor's report;
* :func:`validate_value` — runtime type validation of input events
  against the declared input stream types;
* :class:`MonitorRunner` — an event-loop driver around a compiled
  monitor adding input validation, periodic durable checkpoints, batch
  feeding (the ``feed_batch`` hot path) and crash recovery (resume
  from the last valid checkpoint, skip consumed input, reproduce the
  uninterrupted run's outputs exactly).  The historical name
  ``HardenedRunner`` remains as a deprecated alias.

Monitors compiled *without* an error policy are byte-for-byte the code
the seed compiler produced — the hardening layer costs nothing unless
it is switched on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from ..errors import ErrorPolicy, ErrorValue, LiftError
from ..lang import types as ty
from ..obs.trace import TRACER
from ..structures.guard import AliasGuardError
from ..structures.interface import MapBase, QueueBase, SetBase, VectorBase
from .checkpoint import CheckpointManager, spec_fingerprint
from .monitor import MonitorError, validate_columns


@dataclass
class RunReport:
    """Structured accounting of one monitor run's absorbed faults.

    All counters are cumulative across a resume: a resumed run seeds
    ``events_out`` from the checkpoint so output-offset bookkeeping
    stays consistent with the uninterrupted run.
    """

    #: Input events presented to the runner (including dropped ones).
    events_in: int = 0
    #: Output events emitted (cumulative across resume).
    events_out: int = 0
    #: Lift implementations that raised an exception.
    lift_errors: int = 0
    #: Lift calls short-circuited because an argument carried an error.
    errors_propagated: int = 0
    #: Events suppressed under ``ErrorPolicy.SUBSTITUTE_DEFAULT``.
    errors_substituted: int = 0
    #: Error values surfaced on output streams.
    error_outputs: int = 0
    #: ``delay`` re-arms ignored because the delay amount was an error.
    delay_errors: int = 0
    #: Input events whose value failed type validation.
    invalid_inputs: int = 0
    #: Trace lines that could not be parsed (tolerant ingestion).
    malformed_lines: int = 0
    #: Events naming a stream the monitor does not declare.
    unknown_stream_events: int = 0
    #: Out-of-order events dropped (late beyond the skew window).
    out_of_order_dropped: int = 0
    #: Events delivered in order only thanks to the reorder buffer.
    reordered_events: int = 0
    #: Batches consumed through the ``feed_batch`` hot path.
    batches: int = 0
    #: Whether the compilation hit the on-disk plan cache (``None`` —
    #: no cache was consulted).
    plan_cache_hit: Optional[bool] = None
    #: Durable checkpoints written by this process.
    checkpoints_written: int = 0
    #: Input events skipped on resume (already consumed pre-crash).
    events_skipped_on_resume: int = 0
    #: Path of the checkpoint this run resumed from, if any.
    resumed_from: Optional[str] = None
    #: True once a merge saw two different resume provenances — the
    #: conflict is sticky so merging is associative: once ambiguous,
    #: ``resumed_from`` stays ``None`` no matter what merges in later.
    resume_conflict: bool = False
    #: Trace attempts re-dispatched by the supervised worker pool after
    #: a worker crash, hang, timeout or task exception.
    retries: int = 0
    #: Worker processes restarted by the pool supervisor after a death
    #: (exitcode) or a forced kill (missed heartbeats / deadline).
    worker_restarts: int = 0
    #: Traces that exhausted their retry budget and were quarantined as
    #: poison traces (surfaced on their ``TraceResult``, never silently
    #: dropped).
    traces_quarantined: int = 0
    #: Metric snapshot of an instrumented run (see :mod:`repro.obs`);
    #: ``None`` when the run was not instrumented.
    metrics: Optional[Dict[str, Any]] = None

    def faults_absorbed(self) -> int:
        """Total abnormal occurrences the run survived."""
        return (
            self.lift_errors
            + self.errors_substituted
            + self.invalid_inputs
            + self.malformed_lines
            + self.unknown_stream_events
            + self.out_of_order_dropped
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "events_in": self.events_in,
            "events_out": self.events_out,
            "lift_errors": self.lift_errors,
            "errors_propagated": self.errors_propagated,
            "errors_substituted": self.errors_substituted,
            "error_outputs": self.error_outputs,
            "delay_errors": self.delay_errors,
            "invalid_inputs": self.invalid_inputs,
            "malformed_lines": self.malformed_lines,
            "unknown_stream_events": self.unknown_stream_events,
            "out_of_order_dropped": self.out_of_order_dropped,
            "reordered_events": self.reordered_events,
            "batches": self.batches,
            "plan_cache_hit": self.plan_cache_hit,
            "checkpoints_written": self.checkpoints_written,
            "events_skipped_on_resume": self.events_skipped_on_resume,
            "resumed_from": self.resumed_from,
            "resume_conflict": self.resume_conflict,
            "retries": self.retries,
            "worker_restarts": self.worker_restarts,
            "traces_quarantined": self.traces_quarantined,
            "metrics": self.metrics,
            "faults_absorbed": self.faults_absorbed(),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def absorb_ingest(self, stats: Any) -> None:
        """Merge an ingestion :class:`~repro.semantics.traceio.IngestStats`."""
        self.malformed_lines += stats.malformed_lines
        self.unknown_stream_events += stats.unknown_stream_events
        self.out_of_order_dropped += stats.out_of_order_dropped
        self.reordered_events += stats.reordered_events

    #: Integer counters summed by :meth:`merge` (everything except the
    #: provenance fields ``plan_cache_hit`` and ``resumed_from``).
    _COUNTER_FIELDS = (
        "events_in",
        "events_out",
        "lift_errors",
        "errors_propagated",
        "errors_substituted",
        "error_outputs",
        "delay_errors",
        "invalid_inputs",
        "malformed_lines",
        "unknown_stream_events",
        "out_of_order_dropped",
        "reordered_events",
        "batches",
        "checkpoints_written",
        "events_skipped_on_resume",
        "retries",
        "worker_restarts",
        "traces_quarantined",
    )

    def merge(self, other: "RunReport") -> "RunReport":
        """Fold another report's counters into this one.

        Used by the parallel subsystem: per-partition and per-worker
        reports are accumulated into one aggregate report.  All integer
        counters are summed; ``plan_cache_hit`` treats ``None`` as "no
        cache consulted" (the other side's verdict wins) and conflicting
        verdicts as ``False`` (at least one miss); ``resumed_from`` is
        kept only when unambiguous — the ambiguity is remembered in
        ``resume_conflict`` so the fold is associative and
        order-insensitive; ``metrics`` snapshots sum leaf-wise.
        """
        for field in self._COUNTER_FIELDS:
            setattr(
                self, field, getattr(self, field) + getattr(other, field)
            )
        if other.plan_cache_hit is not None:
            if self.plan_cache_hit is None:
                self.plan_cache_hit = other.plan_cache_hit
            elif self.plan_cache_hit != other.plan_cache_hit:
                self.plan_cache_hit = False
        if (
            self.resume_conflict
            or other.resume_conflict
            or (
                self.resumed_from is not None
                and other.resumed_from is not None
                and self.resumed_from != other.resumed_from
            )
        ):
            self.resume_conflict = True
            self.resumed_from = None
        elif self.resumed_from is None:
            self.resumed_from = other.resumed_from
        if other.metrics is not None:
            from ..obs.metrics import merge_snapshots

            self.metrics = merge_snapshots(self.metrics, other.metrics)
        return self


# -- error-propagating lift evaluation ---------------------------------------


def wrap_lift(
    stream: str,
    func_name: str,
    impl: Callable[..., Any],
    policy: ErrorPolicy,
) -> Callable[..., Any]:
    """Wrap a bound lift implementation with the error policy.

    The wrapper receives ``(report, ts, *args)`` — the code generators
    thread the monitor's live report and the current timestamp through.
    :class:`AliasGuardError` is deliberately *not* absorbed: it signals
    a monitor bug (a failed alias-guard check), never a data fault, and
    converting it into a stream error would silence the sanitizer.
    """
    fail_fast = policy is ErrorPolicy.FAIL_FAST
    substitute = policy is ErrorPolicy.SUBSTITUTE_DEFAULT

    def wrapped(report: RunReport, ts: int, *args: Any) -> Any:
        for arg in args:
            if arg.__class__ is ErrorValue:
                if fail_fast:
                    raise LiftError(
                        f"stream {stream!r} consumed an error value at"
                        f" t={ts}: {arg.message}"
                    )
                if substitute:
                    report.errors_substituted += 1
                    return None
                report.errors_propagated += 1
                return arg
        try:
            return impl(*args)
        except AliasGuardError:
            raise
        except Exception as exc:
            report.lift_errors += 1
            if fail_fast:
                raise LiftError(
                    f"lift {func_name!r} on stream {stream!r} raised at"
                    f" t={ts}: {type(exc).__name__}: {exc}"
                ) from exc
            if substitute:
                report.errors_substituted += 1
                return None
            return ErrorValue(
                f"{func_name}: {type(exc).__name__}: {exc}",
                origin=stream,
                ts=ts,
            )

    return wrapped


def delay_next(report: RunReport, ts: int, amount: Any) -> Optional[int]:
    """Next pending timestamp for a ``delay`` re-arm, error-tolerant.

    An error-valued delay amount cannot schedule a meaningful wake-up;
    the re-arm is dropped and counted instead of crashing on ``ts +
    error``.
    """
    if amount is None:
        return None
    if amount.__class__ is not ErrorValue:
        try:
            # Delay amounts must be strictly positive (a re-arm into
            # the past would violate timestamp monotonicity); the
            # comparison also rejects NaN, and non-numeric corruption
            # lands in the TypeError arm.
            if amount > 0:
                return ts + amount
        except TypeError:
            pass
    report.delay_errors += 1
    return None


# -- input validation --------------------------------------------------------

_SCALAR_CHECKS: Dict[Any, Callable[[Any], bool]] = {
    ty.INT: lambda v: isinstance(v, int) and not isinstance(v, bool),
    ty.TIME: lambda v: isinstance(v, int) and not isinstance(v, bool),
    ty.FLOAT: lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    ty.BOOL: lambda v: isinstance(v, bool),
    ty.STR: lambda v: isinstance(v, str),
    ty.UNIT: lambda v: v == () and isinstance(v, tuple),
}


def validate_value(value: Any, expected: Optional[ty.Type]) -> bool:
    """True iff *value* is a legal runtime value of type *expected*.

    Unknown or polymorphic types validate trivially — validation only
    rejects what is *provably* wrong.
    """
    if expected is None or isinstance(expected, ty.TypeVar):
        return True
    check = _SCALAR_CHECKS.get(expected)
    if check is not None:
        return check(value)
    if isinstance(expected, ty.SetType):
        return isinstance(value, SetBase)
    if isinstance(expected, ty.MapType):
        return isinstance(value, MapBase)
    if isinstance(expected, ty.QueueType):
        return isinstance(value, QueueBase)
    if isinstance(expected, ty.VectorType):
        return isinstance(value, VectorBase)
    return True


# -- the hardened event-loop driver ------------------------------------------


class MonitorRunner:
    """Drives a compiled monitor with validation, checkpoints, recovery.

    The runner owns the monitor instance and its :class:`RunReport`
    (shared with the generated code's error counters), validates input
    values when asked, writes a durable checkpoint every
    ``checkpoint_every`` consumed events, and — via :meth:`resume` —
    restarts from the newest valid checkpoint such that replaying the
    same trace yields exactly the uninterrupted run's outputs.

    :meth:`feed_batch` is the bulk ingestion path: counters and the
    checkpoint cadence are amortized over whole timestamp-sorted
    batches driven through the monitor's ``feed_batch`` hot path.
    """

    def __init__(
        self,
        compiled: Any,
        on_output: Optional[Callable[[str, int, Any], None]] = None,
        *,
        validate_inputs: bool = False,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 1000,
        checkpoint_keep: int = 3,
        on_checkpoint: Optional[Callable[[], None]] = None,
        checkpoint_gate: Optional[Callable[[], bool]] = None,
        report: Optional[RunReport] = None,
    ) -> None:
        self.compiled = compiled
        self.policy: Optional[ErrorPolicy] = getattr(
            compiled, "error_policy", None
        )
        self.report = report if report is not None else RunReport()
        self.validate_inputs = validate_inputs
        #: Input-type table for validation, resolved lazily so runs
        #: with ``validate_inputs=False`` never force a deferred flat
        #: spec (text-keyed plan-cache hits skip parsing entirely).
        self._types: Optional[Dict[str, ty.Type]] = None
        self._user_output = on_output or (lambda name, ts, value: None)
        self.monitor = compiled.new_monitor(self._emit)
        # Unify the generated code's error counters with ours.
        self.monitor._report = self.report
        self.report.plan_cache_hit = getattr(
            compiled, "plan_cache_hit", None
        )
        #: Position in the (full) input event sequence; the resume
        #: offset recorded in every checkpoint.
        self.events_consumed = 0
        #: Called immediately before each checkpoint file is written.
        #: The exactness guarantee needs the output sink durable up to
        #: the checkpoint's ``outputs_emitted`` watermark — a buffered
        #: sink must flush here, or a hard kill can leave the file
        #: behind the watermark and resume past a hole.
        self._pre_checkpoint = on_checkpoint or (lambda: None)
        #: Consulted before every checkpoint write.  Resume replays the
        #: original trace from offset ``events_consumed``, so a
        #: checkpoint is only sound while the delivery order seen so
        #: far is a prefix of what a fresh read of the full input would
        #: deliver.  A tolerant reader's end-of-input drain breaks that
        #: (buffered events flush early, in positions a longer read
        #: would never produce), so ingestion passes a gate that turns
        #: False once draining begins.
        self._checkpoint_gate = checkpoint_gate or (lambda: True)
        self._manager: Optional[CheckpointManager] = None
        if checkpoint_dir is not None:
            # Prefer the full plan fingerprint (spec content + every
            # result-shaping option: backend, alias_guard, error
            # policy, engine, …) so a monitor never resumes from a
            # checkpoint written under different compile options.
            fingerprint = getattr(
                compiled, "fingerprint", None
            ) or spec_fingerprint(compiled.flat)
            self._manager = CheckpointManager(
                checkpoint_dir,
                every=checkpoint_every,
                keep=checkpoint_keep,
                fingerprint=fingerprint,
            )

    # -- output path -----------------------------------------------------

    def _emit(self, name: str, ts: int, value: Any) -> None:
        self.report.events_out += 1
        self._user_output(name, ts, value)

    def _expected_type(self, name: str) -> Any:
        if self._types is None:
            self._types = dict(
                getattr(self.compiled.flat, "types", None) or {}
            )
        return self._types.get(name)

    # -- input path ------------------------------------------------------

    def push(self, name: str, ts: int, value: Any) -> None:
        """Feed one input event through validation and checkpointing."""
        self.report.events_in += 1
        self.events_consumed += 1
        if self.validate_inputs:
            expected = self._expected_type(name)
            if not validate_value(value, expected):
                self.report.invalid_inputs += 1
                policy = self.policy or ErrorPolicy.FAIL_FAST
                if policy is ErrorPolicy.FAIL_FAST:
                    raise MonitorError(
                        f"invalid value {value!r} for input {name!r} at"
                        f" t={ts}: expected {expected}"
                    )
                if policy is ErrorPolicy.SUBSTITUTE_DEFAULT:
                    self._maybe_checkpoint()
                    return
                value = ErrorValue(
                    f"invalid input value {value!r}: expected {expected}",
                    origin=name,
                    ts=ts,
                )
        self.monitor.push(name, ts, value)
        self._maybe_checkpoint()

    def feed(self, events: Iterable[Tuple[int, str, Any]]) -> None:
        """Feed ``(ts, name, value)`` events from the *current* offset."""
        if self.validate_inputs or self._manager is not None:
            for ts, name, value in events:
                self.push(name, ts, value)
            return
        # Fast path: no per-event validation and no checkpoint cadence
        # to track, so the counters can be bulk-updated around a bare
        # push loop instead of paying :meth:`push` per event.
        push = self.monitor.push
        count = 0
        try:
            for ts, name, value in events:
                count += 1
                push(name, ts, value)
        finally:
            self.report.events_in += count
            self.events_consumed += count

    def feed_batch(self, events: Iterable[Tuple[int, str, Any]]) -> int:
        """Feed one timestamp-sorted batch through the batch hot path.

        Counters, validation and the checkpoint cadence are amortized
        over the whole batch: validation runs as a pre-pass over the
        batch (under ``FAIL_FAST`` an invalid value therefore aborts
        before *any* event of the batch is consumed), and at most one
        checkpoint is written per batch, when a cadence boundary was
        crossed.  Returns the number of events consumed.
        """
        if TRACER.enabled:
            with TRACER.span("run.batch"):
                return self._feed_batch(events)
        return self._feed_batch(events)

    def _feed_batch(self, events: Iterable[Tuple[int, str, Any]]) -> int:
        if not isinstance(events, list):
            events = list(events)
        if not events:
            # An empty batch is an exact no-op: no counters move, no
            # batch is recorded, no checkpoint cadence is consulted.
            return 0
        presented = len(events)
        dropped = 0
        if self.validate_inputs:
            kept = []
            for ts, name, value in events:
                expected = self._expected_type(name)
                if not validate_value(value, expected):
                    self.report.invalid_inputs += 1
                    policy = self.policy or ErrorPolicy.FAIL_FAST
                    if policy is ErrorPolicy.FAIL_FAST:
                        raise MonitorError(
                            f"invalid value {value!r} for input {name!r}"
                            f" at t={ts}: expected {expected}"
                        )
                    if policy is ErrorPolicy.SUBSTITUTE_DEFAULT:
                        continue
                    value = ErrorValue(
                        f"invalid input value {value!r}: expected"
                        f" {expected}",
                        origin=name,
                        ts=ts,
                    )
                kept.append((ts, name, value))
            dropped = presented - len(kept)
            events = kept
        before = self.events_consumed
        consumed = self.monitor.feed_batch(events)
        self.report.events_in += consumed + dropped
        self.events_consumed += consumed + dropped
        self.report.batches += 1
        if (
            self._manager is not None
            and self._manager.due_since(before, self.events_consumed)
            and self._checkpoint_gate()
        ):
            self._pre_checkpoint()
            self._manager.write(
                self.monitor, self.events_consumed, self.report.events_out
            )
            self.report.checkpoints_written += 1
        return consumed

    def feed_columns(self, timestamps: Any, columns: Any) -> int:
        """Feed dense columnar input (shared timestamps + value arrays).

        The columnar fast path hands the arrays to the monitor's
        ``feed_columns`` — zero-copy under the vector engine, a row
        shim elsewhere — and amortizes counters over the whole block.
        Runs with input validation or a checkpoint cadence fall back to
        the row conversion here so both run through the audited
        :meth:`feed_batch` path; outputs are byte-identical either way.
        """
        if self.validate_inputs or self._manager is not None:
            inputs = getattr(self.monitor, "INPUTS", ())
            ts_list = (
                timestamps.tolist()
                if hasattr(timestamps, "tolist")
                else list(timestamps)
            )
            converted = validate_columns(
                ts_list,
                columns,
                inputs,
                getattr(self.monitor, "_done_ts", -1),
            )
            if not ts_list:
                return 0
            names = [n for n in inputs if n in converted]
            events = [
                (ts, name, converted[name][index])
                for index, ts in enumerate(ts_list)
                for name in names
            ]
            return self.feed_batch(events)
        if TRACER.enabled:
            with TRACER.span("run.batch"):
                return self._feed_columns(timestamps, columns)
        return self._feed_columns(timestamps, columns)

    def _feed_columns(self, timestamps: Any, columns: Any) -> int:
        consumed = self.monitor.feed_columns(timestamps, columns)
        if consumed:
            self.report.events_in += consumed
            self.events_consumed += consumed
            self.report.batches += 1
        return consumed

    def feed_from_start(
        self, events: Iterable[Tuple[int, str, Any]]
    ) -> None:
        """Feed a whole trace, skipping events consumed pre-checkpoint.

        Use after :meth:`resume`: pass the same full event sequence the
        crashed run was fed; the first ``events_consumed`` events are
        skipped (they are already reflected in the restored state) and
        counted in the report.
        """
        skip = self.events_consumed
        for index, (ts, name, value) in enumerate(events):
            if index < skip:
                continue
            self.push(name, ts, value)
        self.report.events_skipped_on_resume = skip

    def finish(self, end_time: Optional[int] = None) -> RunReport:
        self.monitor.finish(end_time=end_time)
        return self.report

    def run(
        self,
        events: Iterable[Tuple[int, str, Any]],
        end_time: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> RunReport:
        """Feed a whole event sequence and finish.

        With ``batch_size`` set, events are driven through
        :meth:`feed_batch` in timestamp-aligned chunks of roughly that
        size (one timestamp never spans two batches); otherwise the
        per-event :meth:`feed` path is used.
        """
        if batch_size is not None:
            from ..semantics.traceio import batch_events

            for batch in batch_events(events, batch_size):
                self.feed_batch(batch)
        else:
            self.feed(events)
        return self.finish(end_time=end_time)

    # -- checkpointing ---------------------------------------------------

    def checkpoint(self) -> Optional[str]:
        """Force a durable checkpoint now (no-op without a directory).

        Also a no-op while the checkpoint gate is closed: a forced
        checkpoint of non-replayable progress would be just as unsound
        as a cadence one.
        """
        if self._manager is None or not self._checkpoint_gate():
            return None
        self._pre_checkpoint()
        path = self._manager.write(
            self.monitor, self.events_consumed, self.report.events_out
        )
        self.report.checkpoints_written += 1
        return path

    def _maybe_checkpoint(self) -> None:
        if (
            self._manager is not None
            and self._manager.due(self.events_consumed)
            and self._checkpoint_gate()
        ):
            self._pre_checkpoint()
            self._manager.write(
                self.monitor, self.events_consumed, self.report.events_out
            )
            self.report.checkpoints_written += 1

    @classmethod
    def resume(
        cls,
        compiled: Any,
        checkpoint_dir: str,
        on_output: Optional[Callable[[str, int, Any], None]] = None,
        **kwargs: Any,
    ) -> Tuple["MonitorRunner", Optional[Dict[str, Any]]]:
        """A runner restored from the newest valid checkpoint.

        Returns ``(runner, meta)``; ``meta`` is ``None`` when no valid
        checkpoint exists (the runner then starts fresh).  The caller
        feeds the full original trace through :meth:`feed_from_start`
        and truncates any output sink to ``meta["outputs_emitted"]``
        records — together that reproduces the uninterrupted run
        exactly.
        """
        runner = cls(
            compiled, on_output, checkpoint_dir=checkpoint_dir, **kwargs
        )
        assert runner._manager is not None
        found = runner._manager.latest()
        if found is None:
            return runner, None
        path, state, meta = found
        runner.monitor.restore(state)
        runner.events_consumed = meta.get("events_consumed", 0)
        runner.report.events_out = meta.get("outputs_emitted", 0)
        runner.report.resumed_from = path
        return runner, meta


class HardenedRunner(MonitorRunner):
    """Deprecated alias of :class:`MonitorRunner`.

    Prefer ``repro.api.run`` (the options facade) or
    :class:`MonitorRunner` directly.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        from .._deprecation import warn_once

        warn_once(
            "HardenedRunner",
            "HardenedRunner is deprecated; use repro.api.run(...) or"
            " MonitorRunner",
        )
        super().__init__(*args, **kwargs)
