"""Scala source emitter (the paper's actual target, §I/§III).

Emits a self-contained Scala object with the same two-section structure
as the Python backend: per-stream ``Option`` variables, a calculation
section in the translation order, ``last``/``nextTs`` state, and a
driver loop.  Streams in the mutability set use
``scala.collection.mutable`` collections, the rest
``scala.collection.immutable`` — exactly the paper's generated code.

This backend cannot be executed here (no JVM in the test environment);
it exists to demonstrate that the analysis results retarget cleanly,
and its tests check the structure of the emitted source.  Only
registry builtins carry Scala templates; ad-hoc ``pointwise`` functions
must provide one via their ``scala_template`` attribute or emission
fails with a clear error.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence

from ..lang.ast import Delay, Last, Lift, Nil, TimeExpr, UnitExpr
from ..lang.builtins import EventPattern, LiftedFunction
from ..lang.spec import FlatSpec
from ..lang.types import (
    BOOL,
    FLOAT,
    INT,
    STR,
    UNIT,
    MapType,
    QueueType,
    SetType,
    Type,
    VectorType,
)
from ..structures import Backend
from .codegen import CodegenError

#: Scala expression templates per builtin; {0}, {1}, ... are arguments.
#: Mutable-collection write operations get a separate template (the
#: value is updated in place and then passed on).
_SCALA: Dict[str, str] = {
    "add": "({0} + {1})",
    "sub": "({0} - {1})",
    "mul": "({0} * {1})",
    "div": "({0} / {1})",
    "mod": "({0} % {1})",
    "neg": "(-{0})",
    "abs": "math.abs({0})",
    "fadd": "({0} + {1})",
    "fsub": "({0} - {1})",
    "fmul": "({0} * {1})",
    "fdiv": "({0} / {1})",
    "fabs": "math.abs({0})",
    "to_float": "({0}.toDouble)",
    "round": "math.round({0})",
    "eq": "({0} == {1})",
    "neq": "({0} != {1})",
    "lt": "({0} < {1})",
    "leq": "({0} <= {1})",
    "gt": "({0} > {1})",
    "geq": "({0} >= {1})",
    "and": "({0} && {1})",
    "or": "({0} || {1})",
    "not": "(!{0})",
    "ite": "(if ({0}) {1} else {2})",
    "min": "math.min({0}, {1})",
    "max": "math.max({0}, {1})",
    "str_concat": "({0} + {1})",
    "to_str": "({0}.toString)",
    "set_contains": "({0}.contains({1}))",
    "set_size": "({0}.size)",
    "map_contains": "({0}.contains({1}))",
    "map_size": "({0}.size)",
    "map_get_or": "({0}.getOrElse({1}, {2}))",
    "queue_size": "({0}.size)",
    "queue_front_or": "({0}.headOption.getOrElse({1}))",
    "vec_size": "({0}.size)",
    "vec_get_or": "(if ({1} >= 0 && {1} < {0}.size) {0}({1}) else {2})",
}

_SCALA_WRITE_PERSISTENT: Dict[str, str] = {
    "set_add": "({0} + {1})",
    "set_remove": "({0} - {1})",
    "set_toggle": "(if ({0}.contains({1})) {0} - {1} else {0} + {1})",
    "map_put": "({0} + ({1} -> {2}))",
    "map_remove": "({0} - {1})",
    "queue_enq": "({0}.enqueue({1}))",
    "queue_deq": "(if ({0}.nonEmpty) {0}.dequeue._2 else {0})",
    "queue_deq_if": "(if ({1} && {0}.nonEmpty) {0}.dequeue._2 else {0})",
    "vec_append": "({0} :+ {1})",
    "vec_set": "(if ({1} >= 0 && {1} < {0}.size) {0}.updated({1}, {2}) else {0})",
}

_SCALA_WRITE_MUTABLE: Dict[str, str] = {
    "set_add": "{{ {0} += {1}; {0} }}",
    "set_remove": "{{ {0} -= {1}; {0} }}",
    "set_toggle": "{{ if ({0}.contains({1})) {0} -= {1} else {0} += {1}; {0} }}",
    "map_put": "{{ {0}({1}) = {2}; {0} }}",
    "map_remove": "{{ {0} -= {1}; {0} }}",
    "queue_enq": "{{ {0} += {1}; {0} }}",
    "queue_deq": "{{ if ({0}.nonEmpty) {0}.dequeue(); {0} }}",
    "queue_deq_if": "{{ if ({1} && {0}.nonEmpty) {0}.dequeue(); {0} }}",
    "vec_append": "{{ {0} += {1}; {0} }}",
    "vec_set": "{{ if ({1} >= 0 && {1} < {0}.size) {0}({1}) = {2}; {0} }}",
}

#: Templates for non-strict (ANY/CUSTOM) functions; arguments are the
#: per-stream Option values.  Write variants (mutable, persistent) where
#: the function may modify its first argument.
_SCALA_OPTION: Dict[str, str] = {
    "filter": "(if ({1}.contains(true)) {0} else None)",
    "at": "(if ({1}.isDefined) {0} else None)",
}

_SCALA_OPTION_WRITE: Dict[str, Dict[bool, str]] = {
    "map_put_if": {
        False: "({0}.map(m => (for (k <- {1}; v <- {2}) yield m + (k -> v)).getOrElse(m)))",
        True: "({0}.map {{ m => for (k <- {1}; v <- {2}) m(k) = v; m }})",
    },
    "set_update_if": {
        False: "({0}.map(s => {2}.foldLeft({1}.foldLeft(s)(_ + _))(_ - _)))",
        True: "({0}.map {{ s => {1}.foreach(s += _); {2}.foreach(s -= _); s }})",
    },
}

_SCALA_EMPTY = {
    "set_empty": ("Set.empty{param}", "mutable.Set.empty{param}"),
    "map_empty": ("Map.empty{param}", "mutable.Map.empty{param}"),
    "queue_empty": (
        "Queue.empty{param}",
        "mutable.Queue.empty{param}",
    ),
    "vec_empty": ("Vector.empty{param}", "mutable.ArrayBuffer.empty{param}"),
}


def scala_type(ty: Type, mutable: bool = False) -> str:
    """The Scala rendering of a stream value type."""
    if ty == INT:
        return "Long"
    if ty == FLOAT:
        return "Double"
    if ty == BOOL:
        return "Boolean"
    if ty == STR:
        return "String"
    if ty == UNIT:
        return "Unit"
    prefix = "mutable." if mutable else ""
    if isinstance(ty, SetType):
        return f"{prefix}Set[{scala_type(ty.element)}]"
    if isinstance(ty, MapType):
        return f"{prefix}Map[{scala_type(ty.key)}, {scala_type(ty.value)}]"
    if isinstance(ty, QueueType):
        return f"{prefix}Queue[{scala_type(ty.element)}]"
    if isinstance(ty, VectorType):
        if mutable:
            return f"mutable.ArrayBuffer[{scala_type(ty.element)}]"
        return f"Vector[{scala_type(ty.element)}]"
    raise CodegenError(f"no Scala rendering for type {ty}")


def _scala_call(
    func: LiftedFunction, args: Sequence[str], mutable: bool, result_type: Type
) -> str:
    name = func.name
    if name in _SCALA_EMPTY:
        immutable_tpl, mutable_tpl = _SCALA_EMPTY[name]
        param = "[" + ", ".join(
            scala_type(p) for p in result_type.children()
        ) + "]"
        return (mutable_tpl if mutable else immutable_tpl).format(param=param)
    if name in _SCALA_WRITE_PERSISTENT:
        table = _SCALA_WRITE_MUTABLE if mutable else _SCALA_WRITE_PERSISTENT
        return table[name].format(*args)
    if name in _SCALA:
        return _SCALA[name].format(*args)
    if name.startswith("const("):
        literal = name[len("const("):-1]
        if literal in ("True", "False"):
            return literal.lower()
        return literal
    template = getattr(func, "scala_template", None)
    if template:
        return template.format(*args)
    raise CodegenError(
        f"no Scala template for lifted function {func.name!r};"
        " set its .scala_template attribute"
    )


class ScalaGenerator:
    """Emits one Scala object implementing the monitor."""

    def __init__(
        self,
        flat: FlatSpec,
        order: Sequence[str],
        backend_for: Callable[[str], Backend],
        object_name: str = "GeneratedMonitor",
    ) -> None:
        if sorted(order) != sorted(flat.streams):
            raise CodegenError("order must enumerate exactly the spec's streams")
        self.flat = flat
        self.order = list(order)
        self.backend_for = backend_for
        self.object_name = object_name

    def _is_mutable(self, name: str) -> bool:
        return self.backend_for(name) is Backend.MUTABLE

    def _var_type(self, name: str) -> str:
        return scala_type(self.flat.types[name], self._is_mutable(name))

    def _calc_line(self, name: str) -> str:
        expr = self.flat.definitions[name]
        if isinstance(expr, Nil):
            return f"v_{name} = None"
        if isinstance(expr, UnitExpr):
            return f"v_{name} = if (ts == 0L) Some(()) else None"
        if isinstance(expr, TimeExpr):
            return (
                f"v_{name} = if (v_{expr.operand.name}.isDefined)"
                " Some(ts) else None"
            )
        if isinstance(expr, Last):
            return (
                f"v_{name} = if (v_{expr.trigger.name}.isDefined)"
                f" last_{expr.value.name} else None"
            )
        if isinstance(expr, Delay):
            return (
                f"v_{name} = if (next_{name}.contains(ts))"
                " Some(()) else None"
            )
        assert isinstance(expr, Lift)
        if expr.func.name == "merge":
            a, b = (f"v_{x.name}" for x in expr.args)
            return f"v_{name} = {a}.orElse({b})"
        if expr.func.pattern is EventPattern.ALL:
            args = [f"v_{a.name}.get" for a in expr.args]
            call = _scala_call(
                expr.func, args, self._is_mutable(name), self.flat.types[name]
            )
            guard = " && ".join(f"v_{a.name}.isDefined" for a in expr.args)
            return f"v_{name} = if ({guard}) Some({call}) else None"
        # non-strict patterns operate on the Option values directly
        opt_args = [f"v_{a.name}" for a in expr.args]
        func_name = expr.func.name
        if func_name in _SCALA_OPTION:
            call_opt = _SCALA_OPTION[func_name].format(*opt_args)
        elif func_name in _SCALA_OPTION_WRITE:
            call_opt = _SCALA_OPTION_WRITE[func_name][
                self._is_mutable(name)
            ].format(*opt_args)
        else:
            template = getattr(expr.func, "scala_option_template", None)
            if not template:
                raise CodegenError(
                    f"no Scala Option-template for non-strict function"
                    f" {func_name!r}; set its .scala_option_template"
                )
            call_opt = template.format(*opt_args)
        return f"v_{name} = {call_opt}"

    def source(self) -> str:
        flat = self.flat
        delays = [
            n for n, e in flat.definitions.items() if isinstance(e, Delay)
        ]
        last_values = sorted(
            {
                e.value.name
                for e in flat.definitions.values()
                if isinstance(e, Last)
            }
        )
        lines: List[str] = [
            "import scala.collection.mutable",
            "import scala.collection.immutable.{Map, Queue, Set, Vector}",
            "",
            f"object {self.object_name} {{",
            "  type Time = Long",
            "",
        ]
        # state
        for name in flat.streams:
            lines.append(
                f"  var v_{name}: Option[{self._var_type(name)}] = None"
            )
        for name in last_values:
            lines.append(
                f"  var last_{name}: Option[{self._var_type(name)}] = None"
            )
        for name in delays:
            lines.append(f"  var next_{name}: Option[Time] = None")
        # calculation section
        lines += ["", "  def calc(ts: Time): Unit = {"]
        for name in self.order:
            if name in flat.inputs:
                continue
            lines.append("    " + self._calc_line(name))
        for name in flat.outputs:
            lines.append(
                f'    v_{name}.foreach(v => println(s"$ts,{name},$v"))'
            )
        for name in last_values:
            lines.append(f"    if (v_{name}.isDefined) last_{name} = v_{name}")
        for name in delays:
            expr = flat.definitions[name]
            assert isinstance(expr, Delay)
            lines.append(
                f"    if (v_{expr.reset.name}.isDefined ||"
                f" v_{name}.isDefined)"
            )
            lines.append(
                f"      next_{name} = v_{expr.delay.name}.map(ts + _)"
            )
        for name in flat.streams:
            lines.append(f"    v_{name} = None")
        lines.append("  }")
        # triggering section (driver skeleton)
        lines += [
            "",
            "  def nextDelay: Option[Time] =",
        ]
        if delays:
            opts = ", ".join(f"next_{d}" for d in delays)
            lines.append(f"    Seq({opts}).flatten.minOption")
        else:
            lines.append("    None")
        lines += [
            "",
            "  def run(events: Iterator[(Time, String, Any)]): Unit = {",
            "    var pending: Option[Time] = None",
            "    for ((ts, name, value) <- events) {",
            "      if (pending.exists(_ < ts)) { calc(pending.get); pending = None }",
            "      var nd = nextDelay",
            "      while (nd.exists(_ < ts)) { calc(nd.get); nd = nextDelay }",
            "      pending = Some(ts)",
            "      setInput(name, value)",
            "    }",
            "    pending.foreach(calc)",
            "  }",
            "",
            "  def setInput(name: String, value: Any): Unit = name match {",
        ]
        for name in flat.inputs:
            scala_ty = self._var_type(name)
            lines.append(
                f'    case "{name}" =>'
                f" v_{name} = Some(value.asInstanceOf[{scala_ty}])"
            )
        lines += [
            '    case other => sys.error(s"unknown input $other")',
            "  }",
            "}",
        ]
        return "\n".join(lines) + "\n"


def generate_scala_source(
    flat: FlatSpec,
    order: Sequence[str],
    backends: Mapping[str, Backend],
    default_backend: Backend = Backend.PERSISTENT,
    object_name: str = "GeneratedMonitor",
) -> str:
    """Emit Scala monitor source for *flat* under the given backends."""
    generator = ScalaGenerator(
        flat,
        order,
        lambda name: backends.get(name, default_backend),
        object_name,
    )
    return generator.source()
