"""Columnar vectorized batch engine (``engine="vector"``).

The paper's mutability analysis decides which stream variables can be
updated in place; the same structural facts — scalar data types, no
aggregate structures, no data-dependent clock feedback — are exactly the
eligibility condition for columnar execution.  This module classifies
each alias-closed stream family (the partitioner's union-find over
usage edges and :class:`~repro.analysis.aliasing.AliasAnalysis`) as
*vector-eligible* and lowers the eligible part of the translation order
to whole-column numpy kernels:

* one structure-of-arrays buffer pair per stream variable — a value
  column plus a boolean presence mask over the batch's unique
  timestamps (``Unit`` streams are mask-only);
* masked writes for sub-clocked streams: a kernel is applied either to
  full columns (every lane has an event) or to a compressed gather of
  the event lanes, so value lanes without events are never read;
* ``last`` as a shifted-column read (``maximum.accumulate`` over event
  indices) seeded from the plan engine's cross-batch carry cells;
* in-place column writes only where a batch-local last-use liveness
  pass certifies the argument buffer dead — the column analogue of the
  paper's in-place update rule (the spec-level mutability analysis
  covers aggregate types only; scalar columns get the same
  "no later reader" certificate per batch instead).

Ineligible families — aggregate types, ``delay`` feedback, ad-hoc
lifts — fall back *per family* to the plan engine inside the same
monitor: the vectorized slice pass computes eligible columns first,
then a scalar per-timestamp loop runs the remaining plan ops, bridging
eligible values in by timestamp index.  Every spec still compiles.

:class:`VectorMonitorBase` subclasses the plan engine's monitor, so the
per-event ``push`` path, snapshot/restore and checkpointing reuse the
plan state (slot values, last cells, delay cells) unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import ErrorPolicy
from ..lang import types as ty
from ..lang.ast import Delay, Last, Lift, Nil, TimeExpr, UnitExpr, free_vars
from ..lang.builtins import REGISTRY, EventPattern
from ..lang.spec import FlatSpec
from ..structures import Backend
from . import kernels
from .monitor import UNIT_VALUE, MonitorError
from .plan import (
    OP_DELAY,
    OP_LAST,
    OP_LIFT_ALL,
    OP_LIFT_ANY,
    OP_MERGE,
    OP_TIME,
    OP_UNIT,
    ExecutionPlan,
    PlanMonitorBase,
    build_plan,
)

__all__ = [
    "FamilyVerdict",
    "VectorClassification",
    "classify_vector",
    "make_vector_class",
    "VectorMonitorBase",
]


# ---------------------------------------------------------------------------
# Eligibility classification


@dataclass(frozen=True)
class FamilyVerdict:
    """Vector eligibility of one alias-closed stream family."""

    #: Defined member streams (with replicated scalar prefix), definition order.
    streams: Tuple[str, ...]
    #: Output streams owned by the family.
    outputs: Tuple[str, ...]
    eligible: bool
    #: ``(stream, reason)`` pairs for ineligible members; empty when eligible.
    reasons: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class VectorClassification:
    """Per-family vector eligibility for one flat specification."""

    verdicts: Tuple[FamilyVerdict, ...]
    #: Streams (inputs and definitions) executed columnar.
    eligible: FrozenSet[str]
    #: Topological execution order of the eligible defined streams.
    order: Tuple[str, ...]
    #: Ineligible stream → first reason (structural, family-independent).
    reasons: Mapping[str, str]
    numpy_ok: bool
    error_mode: bool
    #: Recognized running-aggregate feedback triples, executed as one
    #: seeded prefix scan each: ``(h, k, s, x, op_name, ufunc, dtype)``
    #: for ``h = last(s, x); k = op(h, x); s = merge(k, x)``.
    scans: Tuple[Tuple[str, str, str, str, str, str, str], ...] = ()

    @property
    def auto_engine(self) -> str:
        """Engine ``engine="auto"`` resolves to: vector iff every
        output-owning family is eligible (and numpy is importable)."""
        if not self.numpy_ok or self.error_mode or not self.eligible:
            return "plan"
        for verdict in self.verdicts:
            if verdict.outputs and not verdict.eligible:
                return "plan"
        return "vector"

    def diagnostics(self) -> List[Any]:
        """VEC00x NOTE diagnostics explaining any plan fallback."""
        from ..analysis.diagnostics import Diagnostic, Severity

        out: List[Any] = []
        if not self.numpy_ok:
            out.append(
                Diagnostic(
                    code="VEC002",
                    severity=Severity.NOTE,
                    stream="",
                    message=(
                        "numpy is not importable: engine='auto' resolves to"
                        " the plan engine (install the 'vector' extra)"
                    ),
                    source="vector",
                    witness={"rule": "numpy-missing"},
                )
            )
        for verdict in self.verdicts:
            if verdict.eligible:
                continue
            anchor = (
                verdict.streams[0]
                if verdict.streams
                else (verdict.outputs[0] if verdict.outputs else "")
            )
            detail = "; ".join(
                f"{stream}: {reason}" for stream, reason in verdict.reasons
            )
            out.append(
                Diagnostic(
                    code="VEC001",
                    severity=Severity.NOTE,
                    stream=anchor,
                    message=(
                        "family falls back to the plan engine — " + detail
                    ),
                    source="vector",
                    witness={
                        "rule": "vector-fallback",
                        "family": list(verdict.streams),
                        "reasons": {s: r for s, r in verdict.reasons},
                    },
                )
            )
        return out


def _expr_deps(expr: Any) -> Set[str]:
    return set(free_vars(expr))


def _local_reason(flat: FlatSpec, name: str) -> Optional[str]:
    """Family-independent ineligibility reason for one stream, or None."""
    stream_type = flat.types.get(name)
    if stream_type is None or kernels.dtype_name_for(stream_type) is None:
        return f"type {stream_type} has no column representation"
    expr = flat.definitions.get(name)
    if expr is None:
        return None  # scalar-typed input
    if isinstance(expr, (Nil, UnitExpr, TimeExpr, Last)):
        return None
    if isinstance(expr, Delay):
        return "delay introduces data-dependent clock feedback in the batch slice"
    assert isinstance(expr, Lift)
    func = expr.func
    if func.name == "merge":
        return None
    if (
        func.name.startswith("const(")
        and func.pattern is EventPattern.ALL
        and func.arity == 1
    ):
        return None
    if REGISTRY.get(func.name) is not func:
        # pointwise()/fused lifts: arbitrary Python, no kernel table entry.
        return f"ad-hoc lift {func.name!r} has no vector kernel"
    if func.name in ("filter", "at"):
        return None
    if kernels.kernel_for(func.name) is None:
        return f"no vector kernel for lift {func.name!r}"
    if stream_type == ty.UNIT:
        return f"unit-typed result of lift {func.name!r}"
    for arg in expr.args:
        if flat.types.get(arg.name) == ty.UNIT:
            return f"unit-typed argument {arg.name!r} to lift {func.name!r}"
    return None


def _find_scan_triple(
    flat: FlatSpec,
    remaining: Sequence[str],
    reasons: Mapping[str, str],
    placed: Set[str],
) -> Optional[Tuple[str, str, str, str, str, str, str]]:
    """Find one running-aggregate feedback triple among *remaining*.

    The shape is the self-seeded accumulator the spec library lowers
    ``running_aggregate`` to::

        h = last(s, x)          # previous total (absent on first event)
        k = op(h, x)            # combine — add/fadd/mul/fmul/max/min
        s = merge(k, x)         # seeded by the first event itself

    which is exactly ``op.accumulate`` over the batch's ``x`` column,
    seeded by the cross-batch last cell of ``s``.  Every member of the
    table is commutative, so ``op(h, x)`` and ``op(x, h)`` both match;
    ``merge`` argument order is significant (``merge(x, k)`` would shadow
    the accumulator) and must be ``merge(k, x)``.
    """
    defined = flat.definitions
    pending = set(remaining)
    for s in remaining:
        expr = defined[s]
        if not isinstance(expr, Lift) or expr.func.name != "merge":
            continue
        k, x = (arg.name for arg in expr.args)
        if k not in pending or x == k:
            continue
        if x in reasons or (x in defined and x not in placed):
            continue
        k_expr = defined.get(k)
        if not isinstance(k_expr, Lift) or len(k_expr.args) != 2:
            continue
        func = k_expr.func
        if REGISTRY.get(func.name) is not func:
            continue
        if func.pattern is not EventPattern.ALL:
            continue
        dtype_name = kernels.dtype_name_for(flat.types[s])
        if dtype_name is None:
            continue
        ufunc_name = kernels.scan_ufunc_for(func.name, dtype_name)
        if ufunc_name is None:
            continue
        a, b = (arg.name for arg in k_expr.args)
        h = b if a == x else (a if b == x else None)
        if h is None or h == x or h not in pending:
            continue
        h_expr = defined.get(h)
        if not isinstance(h_expr, Last):
            continue
        if h_expr.value.name != s or h_expr.trigger.name != x:
            continue
        if not (flat.types[h] == flat.types[k] == flat.types[s]
                == flat.types[x]):
            continue
        return (h, k, s, x, func.name, ufunc_name, dtype_name)
    return None


def classify_vector(
    flat: FlatSpec,
    *,
    error_policy: Optional[ErrorPolicy] = None,
) -> VectorClassification:
    """Classify every alias-closed family of *flat* as vector-eligible.

    Purely syntactic over the typed flat spec (plus the partitioner's
    alias-closed family structure), so it is cheap enough to run on
    every compile — including warm plan-cache hits — for ``auto``
    engine resolution.
    """
    from ..parallel.partition import partition_spec

    defined = flat.definitions
    reasons: Dict[str, str] = {}
    for name in flat.streams:
        reason = _local_reason(flat, name)
        if reason is not None:
            reasons[name] = reason

    # Dependency-closure demotion + cycle detection via Kahn's algorithm:
    # a stream is placed once all of its dependencies are eligible and
    # placed; leftovers either depend on an ineligible stream or sit on
    # an in-batch feedback cycle through ``last``.  One cycle shape is
    # salvageable: the running-aggregate triple, which lowers to a
    # seeded ``ufunc.accumulate`` — when a pass stalls, recognized
    # triples are placed as a unit and the loop resumes.
    deps_of: Dict[str, Set[str]] = {
        name: _expr_deps(expr)
        for name, expr in defined.items()
        if name not in reasons
    }
    order: List[str] = []
    placed: Set[str] = set()
    scans: List[Tuple[str, str, str, str, str, str, str]] = []
    remaining = list(deps_of)
    while remaining:
        progress = False
        still: List[str] = []
        for name in remaining:
            ready = True
            for dep in deps_of[name]:
                if dep in reasons or (dep in defined and dep not in placed):
                    ready = False
                    break
            if ready:
                order.append(name)
                placed.add(name)
                progress = True
            else:
                still.append(name)
        remaining = still
        if progress:
            continue
        triple = _find_scan_triple(flat, remaining, reasons, placed)
        if triple is None:
            break
        scans.append(triple)
        for member in triple[:3]:  # h, k, s — scan step order
            order.append(member)
            placed.add(member)
            remaining.remove(member)
    changed = True
    while changed:
        changed = False
        for name in remaining:
            if name in reasons:
                continue
            for dep in deps_of[name]:
                if dep in reasons:
                    reasons[name] = f"depends on ineligible stream {dep!r}"
                    changed = True
                    break
    for name in remaining:
        reasons.setdefault(
            name, "recursive: in-batch feedback through last"
        )

    # Family granularity: the alias-closed partitions (union-find over
    # usage edges, AliasAnalysis classes never split, replicable scalar
    # prefix copied per family).  An ineligible member demotes its whole
    # family to the scalar plan path.
    plan_partitions = partition_spec(flat)
    verdicts: List[FamilyVerdict] = []
    eligible: Set[str] = set()
    for part in plan_partitions.partitions:
        bad: List[Tuple[str, str]] = [
            (stream, reasons[stream])
            for stream in part.streams
            if stream in reasons
        ]
        for out in part.outputs:
            # Passthrough outputs (an input re-exported) have no defining
            # member; their type still has to be columnar.
            if out in flat.inputs and out in reasons:
                bad.append((out, reasons[out]))
        verdict = FamilyVerdict(
            streams=part.streams,
            outputs=part.outputs,
            eligible=not bad,
            reasons=tuple(bad),
        )
        verdicts.append(verdict)
        if verdict.eligible:
            eligible.update(part.streams)
            eligible.update(
                name for name in part.inputs if name not in reasons
            )
            eligible.update(
                name
                for name in part.outputs
                if name in flat.inputs and name not in reasons
            )

    return VectorClassification(
        verdicts=tuple(verdicts),
        eligible=frozenset(eligible),
        order=tuple(name for name in order if name in eligible),
        reasons=reasons,
        numpy_ok=kernels.numpy_available(),
        error_mode=error_policy is not None,
        scans=tuple(
            triple
            for triple in scans
            # A demoted family drops its members from the order; the
            # scan only survives with all three streams columnar.
            if all(member in eligible for member in triple[:3])
        ),
    )


# ---------------------------------------------------------------------------
# Vector program lowering

VOP_UNIT = 0
VOP_TIME = 1
VOP_NIL = 2
VOP_MERGE = 3
VOP_LAST = 4
VOP_CONST = 5
VOP_FILTER = 6
VOP_AT = 7
VOP_KERNEL = 8
VOP_SCAN = 9


@dataclass(frozen=True)
class VectorProgram:
    """The columnar half of a hybrid vector/plan monitor."""

    n_vslots: int
    vslot_of: Mapping[str, int]
    #: Eligible inputs: ``(name, vslot, dtype_name)`` (``"unit"`` → mask only).
    col_inputs: Tuple[Tuple[str, int, str], ...]
    #: Ineligible inputs routed to the scalar loop: ``(name, plan_slot)``.
    row_inputs: Tuple[Tuple[str, int], ...]
    steps: Tuple[tuple, ...]
    #: True when the whole batch slice runs columnar (no scalar ops, no
    #: delays, every output eligible).
    pure: bool
    #: Plan ops of the ineligible streams, original order.
    scalar_ops: Tuple[tuple, ...]
    #: Eligible values read by the scalar section: ``(plan_slot, vslot, is_unit)``.
    bridge: Tuple[Tuple[int, int, bool], ...]
    #: All outputs in declaration order: ``(name, plan_slot, vslot|None, is_unit)``.
    out_sched: Tuple[Tuple[str, int, Optional[int], bool], ...]
    #: Eligible ``last`` sources: ``(vslot, cell_index, is_unit)``.
    last_vec: Tuple[Tuple[int, int, bool], ...]
    #: Ineligible ``last`` sources: ``(plan_slot, cell_index)``.
    last_scalar: Tuple[Tuple[int, int], ...]
    #: Kernel steps certified for in-place buffer reuse (step position).
    inplace_steps: Tuple[int, ...] = ()


def _step_reads(step: tuple) -> Tuple[int, ...]:
    kind = step[0]
    if kind in (VOP_UNIT, VOP_NIL):
        return ()
    if kind == VOP_TIME:
        return (step[2],)
    if kind == VOP_MERGE:
        return (step[2], step[3])
    if kind == VOP_LAST:
        return (step[3], step[4])
    if kind == VOP_CONST:
        return (step[2],)
    if kind in (VOP_FILTER, VOP_AT):
        return (step[2], step[3])
    if kind == VOP_SCAN:
        return (step[5],)  # src_x — h/k/s are all written, never read
    return tuple(step[2])  # VOP_KERNEL


def build_vector_program(
    flat: FlatSpec,
    plan: ExecutionPlan,
    classification: VectorClassification,
    default_backend: Backend = Backend.PERSISTENT,
) -> VectorProgram:
    """Lower the eligible streams of *flat* to columnar steps."""
    eligible = classification.eligible
    name_of_slot = {slot: name for name, slot in plan.slot_of.items()}

    vslot_of: Dict[str, int] = {}
    col_inputs: List[Tuple[str, int, str]] = []
    for name in flat.inputs:
        if name in eligible:
            vslot = len(vslot_of)
            vslot_of[name] = vslot
            col_inputs.append(
                (name, vslot, kernels.dtype_name_for(flat.types[name]))
            )
    for name in classification.order:
        vslot_of[name] = len(vslot_of)
    row_inputs = tuple(
        (name, plan.slot_of[name])
        for name in flat.inputs
        if name not in eligible
    )

    vslot_dtype: List[Optional[str]] = [None] * len(vslot_of)
    for name, vslot in vslot_of.items():
        vslot_dtype[vslot] = kernels.dtype_name_for(flat.types[name])

    # Replicate build_plan's last-cell numbering (keyed by source stream).
    last_index: Dict[str, int] = {}
    for expr in flat.definitions.values():
        if isinstance(expr, Last):
            last_index.setdefault(expr.value.name, len(last_index))

    protected: Set[int] = {vslot for _, vslot, _ in col_inputs}
    # Scan triples lower to one VOP_SCAN at the ``h`` member computing
    # all three columns; ``k`` and ``s`` emit no step of their own.
    scan_at: Dict[str, Tuple[str, str, str, str, str, str, str]] = {}
    scan_skip: Set[str] = set()
    for triple in classification.scans:
        scan_at[triple[0]] = triple
        scan_skip.update(triple[1:3])
    steps: List[list] = []
    for name in classification.order:
        if name in scan_skip:
            continue
        triple = scan_at.get(name)
        if triple is not None:
            h, k, s, x, _op_name, ufunc_name, scan_dtype = triple
            steps.append(
                [
                    VOP_SCAN,
                    vslot_of[h],
                    vslot_of[k],
                    vslot_of[s],
                    last_index[s],
                    vslot_of[x],
                    ufunc_name,
                    scan_dtype,
                    k,
                ]
            )
            continue
        expr = flat.definitions[name]
        dst = vslot_of[name]
        dtn = vslot_dtype[dst]
        is_unit = dtn == "unit"
        if isinstance(expr, UnitExpr):
            steps.append([VOP_UNIT, dst])
        elif isinstance(expr, Nil):
            steps.append([VOP_NIL, dst, None if is_unit else dtn])
        elif isinstance(expr, TimeExpr):
            steps.append([VOP_TIME, dst, vslot_of[expr.operand.name]])
            protected.add(dst)  # column aliases the shared ts array
        elif isinstance(expr, Last):
            src = vslot_of[expr.value.name]
            steps.append(
                [
                    VOP_LAST,
                    dst,
                    last_index[expr.value.name],
                    src,
                    vslot_of[expr.trigger.name],
                    is_unit,
                ]
            )
        else:
            assert isinstance(expr, Lift)
            func = expr.func
            if func.name == "merge":
                a, b = (vslot_of[arg.name] for arg in expr.args)
                steps.append([VOP_MERGE, dst, a, b, is_unit])
            elif func.name == "filter":
                value, cond = (vslot_of[arg.name] for arg in expr.args)
                steps.append([VOP_FILTER, dst, value, cond, is_unit])
                protected.add(value)  # result column aliases the value column
                protected.add(dst)
            elif func.name == "at":
                value, trigger = (vslot_of[arg.name] for arg in expr.args)
                steps.append([VOP_AT, dst, value, trigger, is_unit])
                protected.add(value)
                protected.add(dst)
            elif func.name.startswith("const("):
                value = func.bind(default_backend)(UNIT_VALUE)
                trigger = vslot_of[expr.args[0].name]
                steps.append([VOP_CONST, dst, trigger, value, dtn])
            else:
                kernel = kernels.kernel_for(func.name)
                assert kernel is not None, func.name
                arg_vslots = tuple(vslot_of[arg.name] for arg in expr.args)
                steps.append(
                    [VOP_KERNEL, dst, arg_vslots, kernel, dtn, -1, name]
                )

    # Scalar section: plan ops whose destination stream is ineligible.
    scalar_ops = tuple(
        op for op in plan.ops if name_of_slot[op[1]] not in eligible
    )
    eligible_slots = {
        plan.slot_of[name] for name in eligible if name in plan.slot_of
    }
    bridge_slots: Set[int] = set()
    for opcode, _dst, args, _fn in scalar_ops:
        if opcode == OP_DELAY or opcode == OP_UNIT:
            continue
        candidates = (args[1],) if opcode == OP_LAST else args
        for slot in candidates:
            if slot in eligible_slots:
                bridge_slots.add(slot)
    for _cell, _own, reset_slot, amount_slot in plan.delay_arms:
        for slot in (reset_slot, amount_slot):
            if slot in eligible_slots:
                bridge_slots.add(slot)
    bridge = tuple(
        (
            slot,
            vslot_of[name_of_slot[slot]],
            flat.types[name_of_slot[slot]] == ty.UNIT,
        )
        for slot in sorted(bridge_slots)
    )

    out_sched = tuple(
        (
            name,
            slot,
            vslot_of.get(name),
            flat.types[name] == ty.UNIT,
        )
        for name, slot in plan.outputs
    )
    last_vec: List[Tuple[int, int, bool]] = []
    last_scalar: List[Tuple[int, int]] = []
    for src_slot, cell in plan.last_stores:
        src_name = name_of_slot[src_slot]
        if src_name in eligible:
            last_vec.append(
                (vslot_of[src_name], cell, flat.types[src_name] == ty.UNIT)
            )
        else:
            last_scalar.append((src_slot, cell))

    pure = (
        not scalar_ops
        and plan.n_delays == 0
        and not last_scalar
        and all(vslot is not None for _n, _s, vslot, _u in out_sched)
    )

    # Batch-local liveness: a kernel may overwrite an argument column
    # in place iff this step is the argument's last read and nothing
    # outside the step order (outputs, last carries, the scalar bridge,
    # input buffers, aliased columns) can observe it afterwards.
    for _name, _slot, vslot, _unit in out_sched:
        if vslot is not None:
            protected.add(vslot)
    for vslot, _cell, _unit in last_vec:
        protected.add(vslot)
    for _slot, vslot, _unit in bridge:
        protected.add(vslot)
    last_read: Dict[int, int] = {}
    for position, step in enumerate(steps):
        for vslot in _step_reads(tuple(step)):
            last_read[vslot] = position
    inplace_steps: List[int] = []
    for position, step in enumerate(steps):
        if step[0] != VOP_KERNEL:
            continue
        kernel = step[3]
        if not kernel.supports_out or step[4] == "unit":
            continue
        for arg_pos, vslot in enumerate(step[2]):
            if vslot in protected:
                continue
            if last_read.get(vslot) != position:
                continue
            if vslot_dtype[vslot] != step[4]:
                continue
            step[5] = arg_pos
            inplace_steps.append(position)
            break

    return VectorProgram(
        n_vslots=len(vslot_of),
        vslot_of=dict(vslot_of),
        col_inputs=tuple(col_inputs),
        row_inputs=row_inputs,
        steps=tuple(tuple(step) for step in steps),
        pure=pure,
        scalar_ops=scalar_ops,
        bridge=bridge,
        out_sched=out_sched,
        last_vec=tuple(last_vec),
        last_scalar=tuple(last_scalar),
        inplace_steps=tuple(inplace_steps),
    )


# ---------------------------------------------------------------------------
# Runtime


class VectorMonitorBase(PlanMonitorBase):
    """Hybrid columnar/plan monitor.

    ``feed_batch``/``feed_columns`` run the eligible streams as whole
    columns over the batch's timestamp slice; ineligible streams run in
    the inherited plan loop.  Per-event ``push``, ``snapshot``/
    ``restore`` and the delay machinery are inherited unchanged — the
    only cross-batch state is the plan state (last cells, delay cells,
    pending input attributes).
    """

    VPROG: Optional[VectorProgram] = None
    NP: Any = None
    METRICS: Any = None
    SOURCE = "<vector engine — columnar numpy kernels, no generated source>"

    # -- batched ingestion -------------------------------------------------

    def feed_batch(self, events: Iterable[Tuple[int, str, Any]]) -> int:
        if self._finished:
            raise MonitorError("feed_batch() after finish()")
        if not isinstance(events, list):
            events = list(events)
        if not events:
            return 0
        if self.VPROG is None:
            return super().feed_batch(events)
        packed = self._pack_batch(events)
        if packed is not None:
            return self._feed_batch_fast(events, *packed)
        error_index, error = self._validate_batch(events)
        if error is not None:
            # Replay the valid prefix through the scalar path so the
            # partial progress is byte-identical to a push loop.
            if error_index:
                super().feed_batch(events[:error_index])
            raise error

        input_attrs = type(self).INPUT_ATTRS
        tail_ts = events[-1][0]
        prepend: List[Tuple[int, str, Any]] = []
        pending = self._pending_ts
        if pending is not None:
            if events[0][0] == pending:
                for name in self.INPUTS:
                    attr = input_attrs[name]
                    value = getattr(self, attr)
                    if value is not None:
                        prepend.append((pending, name, value))
                        setattr(self, attr, None)
            else:
                self._run_calc(pending)
            self._pending_ts = None
        all_events = prepend + events if prepend else events

        split = len(all_events)
        while split > 0 and all_events[split - 1][0] == tail_ts:
            split -= 1
        slice_events = all_events[:split]
        tail_events = all_events[split:]

        if not slice_events:
            self._catch_up(tail_ts)
        else:
            if self._done_ts < 0 and slice_events[0][0] > 0:
                self._run_calc(0)
            from ..obs.trace import TRACER

            if TRACER.enabled:
                with TRACER.span("run.vector_batch"):
                    self._vector_slice(slice_events, tail_ts)
            else:
                self._vector_slice(slice_events, tail_ts)
        for _ts, name, value in tail_events:
            setattr(self, input_attrs[name], value)
        self._pending_ts = tail_ts
        return len(events)

    def _pack_batch(
        self, events: List[Tuple[int, str, Any]]
    ) -> Optional[Tuple[Any, tuple, tuple]]:
        """Columnar transpose + wholesale validation for the hot path.

        Returns ``(ts_arr, name_tuple, value_tuple)`` only when the
        batch provably passes every per-event protocol check, so the
        caller can skip the row loop entirely.  Any irregularity —
        malformed rows, unknown streams, None payloads, reordered or
        pending-merging timestamps, row-shim inputs — returns None and
        the scalar path takes over to report the exact offending index
        with its exact message.
        """
        prog = self.VPROG
        if prog.row_inputs or len(events) < 64:
            return None
        np = self.NP
        try:
            ts_tuple, name_tuple, value_tuple = zip(*events)
            ts_arr = np.asarray(ts_tuple, dtype=np.int64)
        except Exception:
            return None
        if ts_arr.ndim != 1 or ts_arr.shape[0] != len(events):
            return None
        try:
            if None in value_tuple:
                return None
        except Exception:
            # Exotic payloads with ambiguous __eq__ (e.g. arrays):
            # let the scalar validator look at them one by one.
            return None
        if not set(name_tuple) <= type(self).INPUT_ATTRS.keys():
            return None
        first = int(ts_arr[0])
        if first < 0 or not bool((ts_arr[1:] >= ts_arr[:-1]).all()):
            return None
        pending = self._pending_ts
        if pending is not None:
            # first == pending is the (legal) merge corner; the row
            # path prepends the stored attrs, so hand it over.
            if first <= pending:
                return None
        elif first <= self._done_ts:
            return None
        return ts_arr, name_tuple, value_tuple

    def _feed_batch_fast(
        self,
        events: List[Tuple[int, str, Any]],
        ts_arr: Any,
        name_tuple: tuple,
        value_tuple: tuple,
    ) -> int:
        np = self.NP
        pending = self._pending_ts
        if pending is not None:
            # _pack_batch guarantees the batch starts past it.
            self._run_calc(pending)
            self._pending_ts = None
        tail_ts = int(ts_arr[-1])
        split = int(np.searchsorted(ts_arr, tail_ts, side="left"))
        input_attrs = type(self).INPUT_ATTRS
        if split == 0:
            self._catch_up(tail_ts)
        else:
            if self._done_ts < 0 and int(ts_arr[0]) > 0:
                self._run_calc(0)
            ts_slice, cols, masks = self._scatter_columns(
                np, ts_arr[:split], name_tuple[:split], value_tuple[:split]
            )
            ts_list = ts_slice.tolist()
            from ..obs.trace import TRACER

            if TRACER.enabled:
                with TRACER.span("run.vector_batch"):
                    self._vector_exec(
                        ts_list, cols, masks, None, tail_ts, ts_slice
                    )
            else:
                self._vector_exec(
                    ts_list, cols, masks, None, tail_ts, ts_slice
                )
        for _ts, name, value in events[split:]:
            setattr(self, input_attrs[name], value)
        self._pending_ts = tail_ts
        return len(events)

    def _scatter_columns(
        self, np: Any, ts_arr: Any, name_tuple: tuple, value_tuple: tuple
    ) -> Tuple[Any, List[Any], List[Any]]:
        """Scatter validated rows into per-stream columns, loop-free.

        Duplicate (timestamp, stream) rows keep numpy's fancy-index
        last-write-wins, matching the row loop's overwrite behavior.
        """
        prog = self.VPROG
        n = ts_arr.shape[0]
        keep = np.empty(n, dtype=bool)
        keep[0] = True
        np.not_equal(ts_arr[1:], ts_arr[:-1], out=keep[1:])
        positions = np.cumsum(keep) - 1
        ts_slice = ts_arr[keep]
        length = int(ts_slice.shape[0])
        cols: List[Any] = [None] * prog.n_vslots
        masks: List[Any] = [None] * prog.n_vslots
        names_arr = np.empty(n, dtype=object)
        names_arr[:] = name_tuple
        value_arr = None
        for name, vslot, dtype_name in prog.col_inputs:
            mask = np.zeros(length, dtype=bool)
            sel = names_arr == name
            pos = positions[sel]
            mask[pos] = True
            masks[vslot] = mask
            if dtype_name != "unit":
                if value_arr is None:
                    value_arr = np.empty(n, dtype=object)
                    value_arr[:] = value_tuple
                column = np.zeros(
                    length, dtype=kernels.resolve_dtype(np, dtype_name)
                )
                column[pos] = value_arr[sel]
                cols[vslot] = column
        return ts_slice, cols, masks

    def _validate_batch(
        self, events: List[Tuple[int, str, Any]]
    ) -> Tuple[int, Optional[MonitorError]]:
        """Mirror the scalar ``feed_batch`` checks without executing.

        Returns ``(index_of_offending_event, error)`` — the prefix
        before the index is exactly what a push loop would have
        consumed before raising.
        """
        input_attrs = type(self).INPUT_ATTRS
        pending = self._pending_ts
        done = self._done_ts
        for index, (ts, name, value) in enumerate(events):
            if name not in input_attrs:
                return index, MonitorError(f"unknown input stream {name!r}")
            if value is None:
                return index, MonitorError(
                    "None is the no-event value; not a valid payload"
                )
            if ts != pending:
                if pending is not None:
                    if ts < pending:
                        return index, MonitorError(
                            f"out-of-order event: t={ts} after t={pending}"
                        )
                    done = pending
                    pending = None
                if ts < 0:
                    return index, MonitorError(f"negative timestamp {ts}")
                if ts <= done:
                    return index, MonitorError(
                        f"event at t={ts} arrived after t={done} was"
                        " calculated"
                    )
                pending = ts
        return -1, None

    def feed_columns(
        self,
        timestamps: Sequence[int],
        columns: Mapping[str, Sequence[Any]],
    ) -> int:
        """Columnar ingestion: zero-copy handoff to the vector engine.

        Dense semantics: every stream in *columns* has an event at
        every timestamp; streams absent from *columns* have none.
        Timestamps must be strictly increasing.  Caller arrays are
        never mutated; eligible numeric columns are consumed as numpy
        views without row conversion.  The final timestamp stays
        pending, exactly as with :meth:`feed_batch`.
        """
        prog = self.VPROG
        if prog is None or self._finished or self._pending_ts is not None:
            # Scalar engines / pending-merge corner: row-convert.
            return super().feed_columns(timestamps, columns)
        np = self.NP
        ts_arr = np.asarray(timestamps)
        if ts_arr.dtype != np.int64:
            ts_arr = ts_arr.astype(np.int64)
        total = int(ts_arr.shape[0])
        input_attrs = type(self).INPUT_ATTRS
        for name, column in columns.items():
            if name not in input_attrs:
                raise MonitorError(f"unknown input stream {name!r}")
            if len(column) != total:
                raise MonitorError(
                    f"column {name!r} has {len(column)} values for"
                    f" {total} timestamps"
                )
            # Dense semantics: a hole is not expressible as None (that
            # is the no-event value) — validated eagerly, before any
            # slice executes, since numeric dtype conversion would
            # otherwise turn it into an opaque TypeError mid-batch.
            if (
                not hasattr(column, "dtype")
                or getattr(column.dtype, "kind", "O") == "O"
            ) and any(value is None for value in column):
                raise MonitorError(
                    "None is the no-event value; not a valid payload"
                )
        if total == 0:
            # After column validation: an unknown or ragged column is
            # reported even for an empty batch, exactly as the row shim
            # does.
            return 0
        ts_list = ts_arr.tolist()
        if ts_list[0] < 0:
            raise MonitorError(f"negative timestamp {ts_list[0]}")
        if ts_list[0] <= self._done_ts:
            raise MonitorError(
                f"event at t={ts_list[0]} arrived after t={self._done_ts}"
                " was calculated"
            )
        if total > 1 and bool((ts_arr[1:] <= ts_arr[:-1]).any()):
            raise MonitorError(
                "feed_columns() timestamps must be strictly increasing"
            )

        tail_ts = ts_list[-1]
        count = total * len(columns)
        if total == 1:
            self._catch_up(tail_ts)
            self._set_column_tail(columns, 0)
            self._pending_ts = tail_ts
            return count

        sliced = total - 1
        n_vslots = prog.n_vslots
        cols: List[Any] = [None] * n_vslots
        masks: List[Any] = [None] * n_vslots
        for name, vslot, dtype_name in prog.col_inputs:
            column = columns.get(name)
            if column is None:
                masks[vslot] = np.zeros(sliced, dtype=bool)
                if dtype_name != "unit":
                    cols[vslot] = np.zeros(
                        sliced, dtype=kernels.resolve_dtype(np, dtype_name)
                    )
            else:
                masks[vslot] = np.ones(sliced, dtype=bool)
                if dtype_name != "unit":
                    arr = np.asarray(column)
                    target = kernels.resolve_dtype(np, dtype_name)
                    if arr.dtype != target:
                        arr = arr.astype(target)
                    cols[vslot] = arr[:sliced]
        row_values: Optional[Dict[str, List[Any]]] = None
        if prog.row_inputs:
            row_values = {}
            for name, _slot in prog.row_inputs:
                column = columns.get(name)
                if column is None:
                    row_values[name] = [None] * sliced
                else:
                    values = (
                        column.tolist()
                        if hasattr(column, "tolist")
                        else list(column)
                    )
                    row_values[name] = values[:sliced]

        if self._done_ts < 0 and ts_list[0] > 0:
            self._run_calc(0)
        from ..obs.trace import TRACER

        if TRACER.enabled:
            with TRACER.span("run.vector_batch"):
                self._vector_exec(
                    ts_list[:sliced], cols, masks, row_values, tail_ts
                )
        else:
            self._vector_exec(
                ts_list[:sliced], cols, masks, row_values, tail_ts
            )
        self._set_column_tail(columns, total - 1)
        self._pending_ts = tail_ts
        return count

    def _set_column_tail(
        self, columns: Mapping[str, Sequence[Any]], index: int
    ) -> None:
        input_attrs = type(self).INPUT_ATTRS
        for name, column in columns.items():
            value = column[index]
            if hasattr(value, "item"):
                value = value.item()
            if value is None:
                raise MonitorError(
                    "None is the no-event value; not a valid payload"
                )
            setattr(self, input_attrs[name], value)

    # -- columnar execution ------------------------------------------------

    def _vector_slice(
        self, events: List[Tuple[int, str, Any]], bound_ts: int
    ) -> None:
        """Run one slice of row events through the columnar pass."""
        np = self.NP
        prog = self.VPROG
        ts_list: List[int] = []
        previous = None
        for event in events:
            ts = event[0]
            if ts != previous:
                ts_list.append(ts)
                previous = ts
        length = len(ts_list)
        n_vslots = prog.n_vslots
        cols: List[Any] = [None] * n_vslots
        masks: List[Any] = [None] * n_vslots
        col_slot_by_name: Dict[str, int] = {}
        for name, vslot, dtype_name in prog.col_inputs:
            masks[vslot] = np.zeros(length, dtype=bool)
            if dtype_name != "unit":
                cols[vslot] = np.zeros(
                    length, dtype=kernels.resolve_dtype(np, dtype_name)
                )
            col_slot_by_name[name] = vslot
        row_values: Optional[Dict[str, List[Any]]] = None
        if prog.row_inputs:
            row_values = {
                name: [None] * length for name, _slot in prog.row_inputs
            }
        position = -1
        previous = None
        for ts, name, value in events:
            if ts != previous:
                position += 1
                previous = ts
            vslot = col_slot_by_name.get(name)
            if vslot is not None:
                masks[vslot][position] = True
                column = cols[vslot]
                if column is not None:
                    column[position] = value
            else:
                row_values[name][position] = value
        self._vector_exec(ts_list, cols, masks, row_values, bound_ts)

    def _vector_exec(
        self,
        ts_list: List[int],
        cols: List[Any],
        masks: List[Any],
        row_values: Optional[Dict[str, List[Any]]],
        bound_ts: int,
        ts_arr: Any = None,
    ) -> None:
        np = self.NP
        prog = self.VPROG
        registry = self.METRICS
        length = len(ts_list)
        if ts_arr is None:
            ts_arr = np.asarray(ts_list, dtype=np.int64)
        arange = np.arange(length)
        if registry is not None:
            registry.inc("vector.batches")
            registry.inc("vector.rows", length)
        for step in prog.steps:
            kind = step[0]
            if kind == VOP_KERNEL:
                self._exec_kernel(np, length, cols, masks, step, registry)
            elif kind == VOP_MERGE:
                _k, dst, a, b, is_unit = step
                mask_a = masks[a]
                masks[dst] = mask_a | masks[b]
                cols[dst] = (
                    None if is_unit else np.where(mask_a, cols[a], cols[b])
                )
            elif kind == VOP_LAST:
                self._exec_last(np, length, arange, cols, masks, step)
            elif kind == VOP_SCAN:
                self._exec_scan(np, length, cols, masks, step, registry)
            elif kind == VOP_FILTER:
                _k, dst, value, cond, is_unit = step
                mask = masks[value] & masks[cond] & cols[cond]
                masks[dst] = mask
                cols[dst] = None if is_unit else cols[value]
            elif kind == VOP_AT:
                _k, dst, value, trigger, is_unit = step
                masks[dst] = masks[value] & masks[trigger]
                cols[dst] = None if is_unit else cols[value]
            elif kind == VOP_CONST:
                _k, dst, trigger, value, dtype_name = step
                masks[dst] = masks[trigger]
                cols[dst] = np.full(
                    length, value, dtype=kernels.resolve_dtype(np, dtype_name)
                )
            elif kind == VOP_TIME:
                masks[step[1]] = masks[step[2]]
                cols[step[1]] = ts_arr
            elif kind == VOP_UNIT:
                masks[step[1]] = ts_arr == 0
            else:  # VOP_NIL
                _k, dst, dtype_name = step
                masks[dst] = np.zeros(length, dtype=bool)
                cols[dst] = (
                    None
                    if dtype_name is None
                    else np.zeros(
                        length, dtype=kernels.resolve_dtype(np, dtype_name)
                    )
                )
        if prog.pure:
            self._emit_columns(ts_list, cols, masks)
            self._store_last_columns(np, cols, masks)
            self._done_ts = ts_list[-1]
        else:
            self._hybrid_loop(ts_list, cols, masks, row_values, bound_ts)

    def _exec_kernel(
        self,
        np: Any,
        length: int,
        cols: List[Any],
        masks: List[Any],
        step: tuple,
        registry: Any,
    ) -> None:
        _kind, dst, arg_vslots, kernel, dtype_name, donate, name = step
        mask = masks[arg_vslots[0]]
        for vslot in arg_vslots[1:]:
            mask = mask & masks[vslot]
        masks[dst] = mask
        if not mask.any():
            cols[dst] = np.empty(
                length, dtype=kernels.resolve_dtype(np, dtype_name)
            )
            return
        out = cols[arg_vslots[donate]] if donate >= 0 else None
        if mask.all():
            result = kernel.fn(np, out, *[cols[v] for v in arg_vslots])
        else:
            indices = np.flatnonzero(mask)
            gathered = [cols[v][indices] for v in arg_vslots]
            partial = kernel.fn(np, None, *gathered)
            buffer = (
                out
                if out is not None
                else np.empty(
                    length, dtype=kernels.resolve_dtype(np, dtype_name)
                )
            )
            buffer[indices] = partial
            result = buffer
        cols[dst] = result
        if registry is not None:
            registry.inc("vector.kernel." + kernel.name)
            stats = registry.stream(name)
            written = int(mask.sum())
            if donate >= 0:
                stats.inplace_updates += written
            else:
                stats.copies_performed += written

    def _exec_last(
        self,
        np: Any,
        length: int,
        arange: Any,
        cols: List[Any],
        masks: List[Any],
        step: tuple,
    ) -> None:
        _kind, dst, cell, src, trigger, is_unit = step
        mask_src = masks[src]
        mask_trigger = masks[trigger]
        carry = self._last_cells[cell]
        event_at = np.where(mask_src, arange, -1)
        running = np.maximum.accumulate(event_at)
        previous = np.empty(length, dtype=np.int64)
        previous[0] = -1
        previous[1:] = running[:-1]
        if is_unit:
            if carry is not None:
                masks[dst] = mask_trigger
            else:
                masks[dst] = mask_trigger & (previous >= 0)
            cols[dst] = None
            return
        gathered = cols[src][np.maximum(previous, 0)]
        if carry is None:
            masks[dst] = mask_trigger & (previous >= 0)
            cols[dst] = gathered
        else:
            masks[dst] = mask_trigger
            cols[dst] = np.where(previous >= 0, gathered, carry)

    def _exec_scan(
        self,
        np: Any,
        length: int,
        cols: List[Any],
        masks: List[Any],
        step: tuple,
        registry: Any,
    ) -> None:
        """One running-aggregate triple as a seeded prefix scan.

        ``ufunc.accumulate`` folds strictly left-to-right — the same
        order as the per-event feedback loop, so results are
        bit-identical (the dtype gate in :data:`kernels.SCAN_UFUNCS`
        excludes the one divergent case, float ``max``/``min``).  The
        cross-batch seed is the plan engine's last cell for ``s``,
        which ``_store_last_columns`` keeps current because ``s`` is a
        ``last`` source.
        """
        (_kind, dst_h, dst_k, dst_s, cell, src_x,
         ufunc_name, dtype_name, name) = step
        mask = masks[src_x]
        dtype = kernels.resolve_dtype(np, dtype_name)
        ufunc = getattr(np, ufunc_name)
        carry = self._last_cells[cell]
        idx = np.flatnonzero(mask)
        vals = cols[src_x][idx]
        col_h = np.zeros(length, dtype=dtype)
        col_k = np.zeros(length, dtype=dtype)
        col_s = np.zeros(length, dtype=dtype)
        if carry is not None:
            seeded = np.empty(idx.size + 1, dtype=dtype)
            seeded[0] = carry
            seeded[1:] = vals
            acc = ufunc.accumulate(seeded)
            col_h[idx] = acc[:-1]
            col_k[idx] = acc[1:]
            col_s[idx] = acc[1:]
            masks[dst_h] = mask
            masks[dst_k] = mask
            masks[dst_s] = mask
        else:
            acc = ufunc.accumulate(vals)
            col_s[idx] = acc
            masks[dst_s] = mask
            if idx.size:
                # No seed: the first event only initializes ``s``; the
                # combine fires from the second event on.
                sub = mask.copy()
                sub[idx[0]] = False
                col_h[idx[1:]] = acc[:-1]
                col_k[idx[1:]] = acc[1:]
                masks[dst_h] = sub
                masks[dst_k] = sub
            else:
                masks[dst_h] = mask
                masks[dst_k] = mask
        cols[dst_h] = col_h
        cols[dst_k] = col_k
        cols[dst_s] = col_s
        if registry is not None:
            registry.inc("vector.kernel.scan_" + ufunc_name)
            stats = registry.stream(name)
            stats.copies_performed += int(idx.size)

    def _emit_columns(
        self, ts_list: List[int], cols: List[Any], masks: List[Any]
    ) -> None:
        # Iterate only the rows where something fires: monitors whose
        # outputs are sparse alerts pay for firings, not batch length.
        prog = self.VPROG
        emit = self._on_output
        np = self.NP
        sched = prog.out_sched
        if len(sched) == 1:
            name, _slot, vslot, is_unit = sched[0]
            indices = np.flatnonzero(masks[vslot])
            if not indices.size:
                return
            if is_unit:
                for index in indices.tolist():
                    emit(name, ts_list[index], UNIT_VALUE)
            else:
                values = cols[vslot][indices].tolist()
                for index, value in zip(indices.tolist(), values):
                    emit(name, ts_list[index], value)
            return
        any_mask = masks[sched[0][2]]
        for _name, _slot, vslot, _is_unit in sched[1:]:
            any_mask = any_mask | masks[vslot]
        rows = np.flatnonzero(any_mask).tolist()
        if not rows:
            return
        outputs = [
            (
                name,
                masks[vslot].tolist(),
                None if is_unit else cols[vslot].tolist(),
            )
            for name, _slot, vslot, is_unit in sched
        ]
        for index in rows:
            ts = ts_list[index]
            for name, mask_list, value_list in outputs:
                if mask_list[index]:
                    emit(
                        name,
                        ts,
                        UNIT_VALUE
                        if value_list is None
                        else value_list[index],
                    )

    def _store_last_columns(
        self, np: Any, cols: List[Any], masks: List[Any]
    ) -> None:
        cells = self._last_cells
        for vslot, cell, is_unit in self.VPROG.last_vec:
            indices = np.flatnonzero(masks[vslot])
            if indices.size:
                cells[cell] = (
                    UNIT_VALUE if is_unit else cols[vslot][indices[-1]].item()
                )

    def _hybrid_loop(
        self,
        ts_list: List[int],
        cols: List[Any],
        masks: List[Any],
        row_values: Optional[Dict[str, List[Any]]],
        bound_ts: int,
    ) -> None:
        """Per-timestamp scalar loop for the ineligible streams.

        Eligible values computed by the columnar pass are bridged in by
        timestamp index; delay-generated timestamps carry no eligible
        events (eligibility is dependency-closed away from delays).

        The bridge is *sparse*: instead of materializing every eligible
        column as a full Python list per batch (paying O(batch length)
        per bridged stream even when it rarely fires), each bridged
        slot keeps only its firing positions and the values gathered at
        those positions, walked by a cursor that advances monotonically
        with ``column_index``.  The loop still visits every timestamp,
        but conversion cost is proportional to firings.
        """
        prog = self.VPROG
        plan = self.PLAN
        np = self.NP

        def _sparse(vslot: int, is_unit: bool) -> Tuple[List[int], Any]:
            positions = np.flatnonzero(masks[vslot])
            gathered = (
                None if is_unit else cols[vslot][positions].tolist()
            )
            return positions.tolist(), gathered

        # Mutable entries: the last element is the cursor into positions.
        bridge = []
        for slot, vslot, is_unit in prog.bridge:
            positions, gathered = _sparse(vslot, is_unit)
            bridge.append([slot, positions, gathered, 0])
        outputs = []
        for name, slot, vslot, is_unit in prog.out_sched:
            if vslot is None:
                outputs.append([name, slot, None, None, 0])
            else:
                positions, gathered = _sparse(vslot, is_unit)
                outputs.append([name, slot, positions, gathered, 0])
        vector_lasts = []
        for vslot, cell, is_unit in prog.last_vec:
            positions, gathered = _sparse(vslot, is_unit)
            vector_lasts.append([cell, positions, gathered, 0])
        values = self._values
        cells = self._last_cells
        nxt = self._next_cells
        emit = self._on_output
        has_delays = self.HAS_DELAYS
        n_slots = len(values)
        length = len(ts_list)
        index = 0
        while True:
            upcoming = self._next_delay() if has_delays else None
            if index < length:
                input_ts = ts_list[index]
                if upcoming is not None and upcoming < input_ts:
                    ts, column_index = upcoming, None
                else:
                    ts, column_index = input_ts, index
            elif upcoming is not None and upcoming < bound_ts:
                ts, column_index = upcoming, None
            else:
                break
            for slot in range(n_slots):
                values[slot] = None
            if column_index is not None:
                if row_values is not None:
                    for name, slot in prog.row_inputs:
                        value = row_values[name][column_index]
                        if value is not None:
                            values[slot] = value
                for entry in bridge:
                    positions = entry[1]
                    cursor = entry[3]
                    if (
                        cursor < len(positions)
                        and positions[cursor] == column_index
                    ):
                        gathered = entry[2]
                        values[entry[0]] = (
                            UNIT_VALUE
                            if gathered is None
                            else gathered[cursor]
                        )
                        entry[3] = cursor + 1
            for opcode, dst, args, fn in prog.scalar_ops:
                if opcode == OP_LIFT_ALL:
                    triggered = True
                    for a in args:
                        if values[a] is None:
                            triggered = False
                            break
                    if triggered:
                        values[dst] = fn(*[values[a] for a in args])
                elif opcode == OP_MERGE:
                    first = values[args[0]]
                    values[dst] = (
                        first if first is not None else values[args[1]]
                    )
                elif opcode == OP_LIFT_ANY:
                    triggered = False
                    for a in args:
                        if values[a] is not None:
                            triggered = True
                            break
                    if triggered:
                        values[dst] = fn(*[values[a] for a in args])
                elif opcode == OP_LAST:
                    if values[args[1]] is not None:
                        values[dst] = cells[args[0]]
                elif opcode == OP_TIME:
                    if values[args[0]] is not None:
                        values[dst] = ts
                elif opcode == OP_UNIT:
                    if ts == 0:
                        values[dst] = UNIT_VALUE
                else:  # OP_DELAY
                    if nxt[args[0]] == ts:
                        values[dst] = UNIT_VALUE
            for entry in outputs:
                positions = entry[2]
                if positions is None:
                    value = values[entry[1]]
                    if value is not None:
                        emit(entry[0], ts, value)
                elif column_index is not None:
                    cursor = entry[4]
                    if (
                        cursor < len(positions)
                        and positions[cursor] == column_index
                    ):
                        gathered = entry[3]
                        emit(
                            entry[0],
                            ts,
                            UNIT_VALUE
                            if gathered is None
                            else gathered[cursor],
                        )
                        entry[4] = cursor + 1
            for entry in vector_lasts:
                if column_index is not None:
                    positions = entry[1]
                    cursor = entry[3]
                    if (
                        cursor < len(positions)
                        and positions[cursor] == column_index
                    ):
                        gathered = entry[2]
                        cells[entry[0]] = (
                            UNIT_VALUE
                            if gathered is None
                            else gathered[cursor]
                        )
                        entry[3] = cursor + 1
            for slot, cell in prog.last_scalar:
                value = values[slot]
                if value is not None:
                    cells[cell] = value
            for cell, own_slot, reset_slot, amount_slot in plan.delay_arms:
                if (
                    values[reset_slot] is not None
                    or values[own_slot] is not None
                ):
                    amount = values[amount_slot]
                    nxt[cell] = ts + amount if amount is not None else None
            self._done_ts = ts
            if column_index is not None:
                index += 1


# ---------------------------------------------------------------------------
# Class builder


def make_vector_class(
    flat: FlatSpec,
    order: Sequence[str],
    backends: Mapping[str, Backend],
    default_backend: Backend = Backend.PERSISTENT,
    class_name: str = "VectorMonitor",
    error_policy: Optional[ErrorPolicy] = None,
    metrics: Optional[Any] = None,
    classification: Optional[VectorClassification] = None,
) -> type:
    """Build a vector-engine monitor class for *flat*.

    The full execution plan is always built (per-event path, scalar
    fallback section); the columnar program covers the eligible
    families.  With an error policy — or nothing eligible — the class
    degrades to plain plan-engine behavior, error semantics included.
    """
    np = kernels.numpy_module()
    plan = build_plan(
        flat,
        order,
        backends,
        default_backend=default_backend,
        error_policy=error_policy,
        metrics=metrics,
    )
    if classification is None:
        classification = classify_vector(flat, error_policy=error_policy)
    if error_policy is not None or not classification.eligible:
        program = None
    else:
        program = build_vector_program(
            flat, plan, classification, default_backend=default_backend
        )
    return type(
        class_name,
        (VectorMonitorBase,),
        {
            "INPUTS": tuple(flat.inputs),
            "OUTPUTS": tuple(flat.outputs),
            "HAS_DELAYS": plan.n_delays > 0,
            "PLAN": plan,
            "VPROG": program,
            "NP": np,
            "METRICS": metrics if (metrics and getattr(metrics, "enabled", True)) else None,
        },
    )
