"""First-class stream error values (TeSSLa error semantics).

TeSSLa specifications do not abort when a lifted function fails on one
event: the event's *value* becomes an error, and that error propagates
through ``lift``/``last``/``delay`` like any other value until it
reaches an output (Convent et al., *TeSSLa: Temporal Stream-based
Specification Language*).  :class:`ErrorValue` is our runtime encoding
of such a value; :class:`ErrorPolicy` selects what a compiled monitor
does when one is produced.

This module is dependency-free on purpose: both the trace readers
(:mod:`repro.semantics.traceio`) and the compiler runtime
(:mod:`repro.compiler.runtime`) need these names, and neither may
import the other.
"""

from __future__ import annotations

import enum
import json
from typing import Any, Optional


class ErrorValue:
    """A first-class error occupying an event's value slot.

    Error values are **events**: they are not ``None`` (the no-event
    value), so they flow through the triggering machinery exactly like
    ordinary values.  They are immutable, hashable and compare by
    content, so frozen output traces containing errors can be diffed.

    ``origin`` names the stream whose evaluation produced the error and
    ``ts`` the timestamp of production; both survive propagation so an
    error observed on an output can be traced back to its source.
    """

    __slots__ = ("message", "origin", "ts")

    def __init__(
        self,
        message: str,
        origin: Optional[str] = None,
        ts: Optional[int] = None,
    ) -> None:
        object.__setattr__(self, "message", message)
        object.__setattr__(self, "origin", origin)
        object.__setattr__(self, "ts", ts)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("ErrorValue is immutable")

    def __reduce__(self):
        # Default slot-state pickling would call __setattr__ on
        # unpickling and hit the immutability guard; reconstruct
        # through __init__ instead.  Error values must cross process
        # boundaries intact — the supervised worker pool ships them
        # home in trace outputs under the propagate policy.
        return (ErrorValue, (self.message, self.origin, self.ts))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ErrorValue):
            return NotImplemented
        return (
            self.message == other.message
            and self.origin == other.origin
            and self.ts == other.ts
        )

    def __hash__(self) -> int:
        return hash(("error", self.message, self.origin, self.ts))

    def __repr__(self) -> str:
        # The TeSSLa trace literal form; round-trips through
        # ``repro.semantics.traceio.parse_value``.
        return f"error({json.dumps(self.message)})"

    def __bool__(self) -> bool:
        raise LiftError(
            f"error value used in a boolean context: {self.message!r}"
            " (a lift implementation inspected an error instead of"
            " letting the runtime propagate it)"
        )


def is_error(value: Any) -> bool:
    """True iff *value* is a stream error value."""
    return value.__class__ is ErrorValue


class ErrorPolicy(enum.Enum):
    """What a hardened monitor does when an evaluation error occurs.

    * ``FAIL_FAST`` — raise :class:`LiftError` immediately, with the
      stream name and timestamp attached (the classic crash, but with
      context; this is also the effective behaviour of monitors compiled
      without any error policy, minus the context).
    * ``PROPAGATE`` — the TeSSLa semantics: the failing stream's event
      carries an :class:`ErrorValue` which propagates through downstream
      operators and is surfaced on outputs.
    * ``SUBSTITUTE_DEFAULT`` — the failing event is suppressed (the
      stream simply has no event at that timestamp) and the suppression
      is counted in the run report.
    """

    FAIL_FAST = "fail-fast"
    PROPAGATE = "propagate"
    SUBSTITUTE_DEFAULT = "substitute-default"


def coerce_policy(policy: Any) -> Optional[ErrorPolicy]:
    """Accept an :class:`ErrorPolicy`, its string value, or ``None``."""
    if policy is None or isinstance(policy, ErrorPolicy):
        return policy
    return ErrorPolicy(policy)


class LiftError(Exception):
    """Raised under ``ErrorPolicy.FAIL_FAST`` when evaluation fails."""


class PoolError(RuntimeError):
    """A multi-trace worker pool aborted under a fail-fast error policy.

    Carries the supervision context as structured attributes so callers
    (and the CLI's one-line diagnostic) can name exactly what died:
    ``trace_index`` (submission index of the trace that sank the pool),
    ``worker_id`` (the worker running the final attempt, if any) and
    ``attempts`` (the full attempt history, one human-readable string
    per attempt).  The formatted message is always a single line.
    """

    def __init__(
        self,
        message: str,
        *,
        trace_index: Optional[int] = None,
        worker_id: Optional[str] = None,
        attempts: Any = (),
    ) -> None:
        self.trace_index = trace_index
        self.worker_id = worker_id
        self.attempts = tuple(str(record) for record in attempts)
        detail = message
        if self.attempts:
            detail += " [" + "; ".join(self.attempts) + "]"
        super().__init__(" ".join(detail.split()))
