"""Textual frontend: lexer and parser for the concrete syntax."""

from .lexer import FrontendError, Token, tokenize
from .parser import parse_spec
from .printer import UnparseableError, unparse, unparse_expr, unparse_flat

__all__ = [
    "FrontendError",
    "Token",
    "UnparseableError",
    "parse_spec",
    "tokenize",
    "unparse",
    "unparse_expr",
    "unparse_flat",
]
