"""Lexer for the concrete TeSSLa-like specification syntax."""

from __future__ import annotations

import re
from typing import List, NamedTuple


class FrontendError(Exception):
    """Raised on lexical or syntactic errors, with line/column info."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class Token(NamedTuple):
    kind: str
    text: str
    line: int
    column: int


KEYWORDS = {
    "in",
    "def",
    "out",
    "if",
    "then",
    "else",
    "true",
    "false",
    "nil",
    "unit",
    "last",
    "delay",
    "time",
    "merge",
    "default",
}

_TOKEN_RE = re.compile(
    r"""
      (?P<comment>\#[^\n]*|--[^\n]*)
    | (?P<float>\d+\.\d+([eE][+-]?\d+)?|\d+[eE][+-]?\d+)
    | (?P<int>\d+)
    | (?P<string>"(?:[^"\\]|\\.)*")
    | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<symbol>:=|==|!=|<=|>=|&&|\|\||[()\[\],:<>+\-*/%!=])
    | (?P<newline>\n)
    | (?P<space>[ \t\r]+)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[Token]:
    """Tokenize *text*; raises :class:`FrontendError` on stray characters."""
    tokens: List[Token] = []
    line, line_start = 1, 0
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise FrontendError(
                f"unexpected character {text[position]!r}",
                line,
                position - line_start + 1,
            )
        kind = match.lastgroup
        value = match.group()
        column = position - line_start + 1
        if kind == "newline":
            tokens.append(Token("newline", value, line, column))
            line += 1
            line_start = match.end()
        elif kind in ("space", "comment"):
            pass
        elif kind == "name" and value in KEYWORDS:
            tokens.append(Token(value, value, line, column))
        else:
            tokens.append(Token(kind, value, line, column))
        position = match.end()
    tokens.append(Token("eof", "", line, position - line_start + 1))
    return tokens
