"""Recursive-descent parser for the concrete specification syntax.

Grammar (one declaration per line; ``--`` and ``#`` start comments)::

    spec      := { declaration NEWLINE }
    declaration := "in" NAME ":" type
                 | "def" NAME [":" type] ":=" expr
                 | "out" NAME { "," NAME }
    type      := NAME [ "<" type { "," type } ">" ]
    expr      := or-expr | "if" expr "then" expr "else" expr
    or-expr   := and-expr { "||" and-expr }
    and-expr  := cmp-expr { "&&" cmp-expr }
    cmp-expr  := add-expr [ ("=="|"!="|"<"|"<="|">"|">=") add-expr ]
    add-expr  := mul-expr { ("+"|"-") mul-expr }
    mul-expr  := unary { ("*"|"/"|"%") unary }
    unary     := ("!"|"-") unary | atom
    atom      := INT | FLOAT | STRING | "true" | "false" | "unit"
               | "nil" "<" type ">"
               | "last" "(" expr "," expr ")"       (likewise delay/time/
               | NAME "(" [ expr {"," expr} ] ")"    merge/default)
               | NAME | "(" expr ")"

Integer/float/string/boolean literals denote constant streams (one
event at timestamp 0), as in the paper's syntactic sugar.  The binary
operators resolve to the integer builtins (use ``fadd``/``fdiv``/... by
name for floats; the comparisons are polymorphic).
"""

from __future__ import annotations

import ast as python_ast
from typing import Dict, List, Optional, Tuple

from ..lang.ast import (
    Const,
    Default,
    Delay,
    Expr,
    Last,
    Lift,
    Merge,
    Nil,
    TimeExpr,
    UnitExpr,
    Var,
)
from ..lang.builtins import builtin
from ..lang.spec import Specification
from ..lang.types import Type, parametric, primitive
from ..lang.types import TypeError_ as LangTypeError
from .lexer import FrontendError, Token, tokenize

_BINARY_OPS = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "mod",
    "==": "eq",
    "!=": "neq",
    "<": "lt",
    "<=": "leq",
    ">": "gt",
    ">=": "geq",
    "&&": "and",
    "||": "or",
}


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.position = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.current
        if token.kind != kind:
            raise FrontendError(
                f"expected {kind!r}, got {token.kind!r} ({token.text!r})",
                token.line,
                token.column,
            )
        return self.advance()

    def accept(self, kind: str) -> Optional[Token]:
        if self.current.kind == kind:
            return self.advance()
        return None

    def skip_newlines(self) -> None:
        while self.current.kind == "newline":
            self.advance()

    def error(self, message: str) -> FrontendError:
        return FrontendError(message, self.current.line, self.current.column)

    # -- types -------------------------------------------------------------

    def parse_type(self) -> Type:
        name = self.expect("name").text
        if self.current.kind == "symbol" and self.current.text == "<":
            self.advance()
            params = [self.parse_type()]
            while self.current.kind == "symbol" and self.current.text == ",":
                self.advance()
                params.append(self.parse_type())
            closing = self.expect("symbol")
            if closing.text != ">":
                raise FrontendError(
                    f"expected '>', got {closing.text!r}",
                    closing.line,
                    closing.column,
                )
            try:
                return parametric(name, *params)
            except LangTypeError as exc:
                raise FrontendError(str(exc), closing.line, closing.column)
        prim = primitive(name)
        if prim is None:
            raise self.error(f"unknown type {name!r}")
        return prim

    # -- expressions -------------------------------------------------------

    def parse_expr(self) -> Expr:
        if self.accept("if"):
            condition = self.parse_expr()
            self.expect("then")
            then_branch = self.parse_expr()
            self.expect("else")
            else_branch = self.parse_expr()
            return Lift(builtin("ite"), (condition, then_branch, else_branch))
        return self.parse_binary(0)

    _PRECEDENCE: List[Tuple[str, ...]] = [
        ("||",),
        ("&&",),
        ("==", "!=", "<", "<=", ">", ">="),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_binary(self, level: int) -> Expr:
        if level >= len(self._PRECEDENCE):
            return self.parse_unary()
        operators = self._PRECEDENCE[level]
        left = self.parse_binary(level + 1)
        while self.current.kind == "symbol" and self.current.text in operators:
            op = self.advance().text
            right = self.parse_binary(level + 1)
            left = Lift(builtin(_BINARY_OPS[op]), (left, right))
            if operators == self._PRECEDENCE[2]:
                break  # comparisons do not chain
        return left

    def parse_unary(self) -> Expr:
        if self.current.kind == "symbol" and self.current.text == "!":
            self.advance()
            return Lift(builtin("not"), (self.parse_unary(),))
        if self.current.kind == "symbol" and self.current.text == "-":
            self.advance()
            operand = self.parse_unary()
            if isinstance(operand, Const) and isinstance(
                operand.value, (int, float)
            ):
                return Const(-operand.value)
            return Lift(builtin("neg"), (operand,))
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        token = self.current
        if token.kind == "int":
            self.advance()
            return Const(int(token.text))
        if token.kind == "float":
            self.advance()
            return Const(float(token.text))
        if token.kind == "string":
            self.advance()
            return Const(python_ast.literal_eval(token.text))
        if self.accept("true"):
            return Const(True)
        if self.accept("false"):
            return Const(False)
        if self.accept("unit"):
            return UnitExpr()
        if self.accept("nil"):
            if not (self.current.kind == "symbol" and self.current.text == "<"):
                raise FrontendError(
                    "nil requires a type argument: nil<Int>",
                    token.line,
                    token.column,
                )
            self.advance()
            ty = self.parse_type()
            closing = self.expect("symbol")
            if closing.text != ">":
                raise FrontendError(
                    f"expected '>', got {closing.text!r}",
                    closing.line,
                    closing.column,
                )
            return Nil(ty)
        if token.kind in ("last", "delay", "time", "merge", "default"):
            return self.parse_special(token.kind)
        if token.kind == "name":
            self.advance()
            if self.current.kind == "symbol" and self.current.text == "(":
                if token.text == "slift":
                    return self.parse_slift(token)
                return self.parse_call(token)
            return Var(token.text)
        if token.kind == "symbol" and token.text == "(":
            self.advance()
            inner = self.parse_expr()
            closing = self.expect("symbol")
            if closing.text != ")":
                raise FrontendError(
                    f"expected ')', got {closing.text!r}",
                    closing.line,
                    closing.column,
                )
            return inner
        raise self.error(f"unexpected token {token.text!r}")

    def parse_args(self) -> List[Expr]:
        opening = self.expect("symbol")
        if opening.text != "(":
            raise FrontendError(
                f"expected '(', got {opening.text!r}", opening.line, opening.column
            )
        args: List[Expr] = []
        if not (self.current.kind == "symbol" and self.current.text == ")"):
            args.append(self.parse_expr())
            while self.current.kind == "symbol" and self.current.text == ",":
                self.advance()
                args.append(self.parse_expr())
        closing = self.expect("symbol")
        if closing.text != ")":
            raise FrontendError(
                f"expected ')', got {closing.text!r}", closing.line, closing.column
            )
        return args

    def parse_special(self, keyword: str) -> Expr:
        token = self.advance()
        args = self.parse_args()

        def arity(n: int) -> None:
            if len(args) != n:
                raise FrontendError(
                    f"{keyword} expects {n} argument(s), got {len(args)}",
                    token.line,
                    token.column,
                )

        if keyword == "time":
            arity(1)
            return TimeExpr(args[0])
        arity(2)
        if keyword == "last":
            return Last(args[0], args[1])
        if keyword == "delay":
            return Delay(args[0], args[1])
        if keyword == "merge":
            return Merge(args[0], args[1])
        assert keyword == "default"
        value = args[1]
        if not isinstance(value, Const):
            raise FrontendError(
                "default's second argument must be a literal",
                token.line,
                token.column,
            )
        return Default(args[0], value.value)

    def parse_slift(self, token: Token) -> Expr:
        """``slift(func_name, arg1, ..., argN)`` — signal-semantics lift."""
        from ..lang.ast import SLift

        args = self.parse_args()
        if len(args) < 2:
            raise FrontendError(
                "slift needs a function name and at least one argument",
                token.line,
                token.column,
            )
        head = args[0]
        if not isinstance(head, Var):
            raise FrontendError(
                "slift's first argument must be a builtin function name",
                token.line,
                token.column,
            )
        try:
            func = builtin(head.name)
        except KeyError:
            raise FrontendError(
                f"unknown function {head.name!r}", token.line, token.column
            ) from None
        if len(args) - 1 != func.arity:
            raise FrontendError(
                f"{func.name} expects {func.arity} argument(s),"
                f" got {len(args) - 1}",
                token.line,
                token.column,
            )
        return SLift(func, tuple(args[1:]))

    #: Macros usable anywhere in an expression (no self-reference).
    _PLAIN_MACROS = {
        "held": 2,
        "changed": 1,
        "previous": 1,
        "time_since_last": 1,
        "time_of_last": 1,
    }
    #: Macros that reference their own result stream; only valid as the
    #: entire body of a definition.
    _SELF_MACROS = {
        "count": ("counting", 1),
        "sum": ("summing", 1),
        "running_max": ("running_max", 1),
        "running_min": ("running_min", 1),
    }

    def parse_call(self, name_token: Token) -> Expr:
        name = name_token.text
        if name in self._PLAIN_MACROS:
            from ..lang import macros

            args = self.parse_args()
            if len(args) != self._PLAIN_MACROS[name]:
                raise FrontendError(
                    f"{name} expects {self._PLAIN_MACROS[name]} argument(s),"
                    f" got {len(args)}",
                    name_token.line,
                    name_token.column,
                )
            return getattr(macros, name)(*args)
        if name in self._SELF_MACROS:
            # reaching here means the macro is nested inside a larger
            # expression — parse_def_body handles the legal position
            raise FrontendError(
                f"{name}(...) is recursive and must be the entire"
                " right-hand side of a definition",
                name_token.line,
                name_token.column,
            )
        args = self.parse_args()
        try:
            func = builtin(name_token.text)
        except KeyError:
            raise FrontendError(
                f"unknown function {name_token.text!r}",
                name_token.line,
                name_token.column,
            ) from None
        if len(args) != func.arity:
            raise FrontendError(
                f"{func.name} expects {func.arity} argument(s), got {len(args)}",
                name_token.line,
                name_token.column,
            )
        return Lift(func, tuple(args))

    # -- declarations ------------------------------------------------------

    def parse_def_body(self, def_name: str) -> Expr:
        """The right-hand side of a definition; self-referencing macros
        (``count``/``sum``/``running_max``/``running_min``) are only
        legal here, as the entire body."""
        token = self.current
        next_token = self.tokens[self.position + 1]
        if (
            token.kind == "name"
            and token.text in self._SELF_MACROS
            and next_token.kind == "symbol"
            and next_token.text == "("
        ):
            from ..lang import macros

            self.advance()
            macro_name, arity = self._SELF_MACROS[token.text]
            args = self.parse_args()
            if len(args) != arity:
                raise FrontendError(
                    f"{token.text} expects {arity} argument(s),"
                    f" got {len(args)}",
                    token.line,
                    token.column,
                )
            if self.current.kind not in ("newline", "eof"):
                raise FrontendError(
                    f"{token.text}(...) must be the entire right-hand side",
                    self.current.line,
                    self.current.column,
                )
            return getattr(macros, macro_name)(def_name, *args)
        return self.parse_expr()

    def parse_spec(self) -> Specification:
        inputs: Dict[str, Type] = {}
        definitions: Dict[str, Expr] = {}
        annotations: Dict[str, Type] = {}
        outputs: List[str] = []
        self.skip_newlines()
        while self.current.kind != "eof":
            if self.accept("in"):
                name = self.expect("name").text
                colon = self.expect("symbol")
                if colon.text != ":":
                    raise FrontendError(
                        "input declarations need ': Type'",
                        colon.line,
                        colon.column,
                    )
                if name in inputs:
                    raise self.error(f"duplicate input {name!r}")
                inputs[name] = self.parse_type()
            elif self.accept("def"):
                name = self.expect("name").text
                if name in definitions:
                    raise self.error(f"duplicate definition {name!r}")
                if self.current.kind == "symbol" and self.current.text == ":":
                    self.advance()
                    annotations[name] = self.parse_type()
                assign = self.expect("symbol")
                if assign.text != ":=":
                    raise FrontendError(
                        "definitions use ':='", assign.line, assign.column
                    )
                definitions[name] = self.parse_def_body(name)
            elif self.accept("out"):
                outputs.append(self.expect("name").text)
                while self.current.kind == "symbol" and self.current.text == ",":
                    self.advance()
                    outputs.append(self.expect("name").text)
            else:
                raise self.error(
                    f"expected 'in', 'def' or 'out', got {self.current.text!r}"
                )
            if self.current.kind != "eof":
                self.expect("newline")
                self.skip_newlines()
        return Specification(
            inputs,
            definitions,
            outputs or None,
            type_annotations=annotations,
        )


def parse_spec(text: str) -> Specification:
    """Parse the concrete syntax in *text* into a :class:`Specification`."""
    return _Parser(text).parse_spec()
