"""Pretty-printer: Specification → concrete syntax.

The inverse of :func:`repro.frontend.parse_spec`, for programmatically
built specifications that stay within the textual subset: registry
builtins, the special forms and literals.  Ad-hoc ``pointwise``/
``const_fn`` lifted functions have no surface syntax and raise
:class:`UnparseableError`.

Round-trip guarantee (tested property): ``parse_spec(unparse(s))``
produces a specification with identical expression ASTs.
"""

from __future__ import annotations

from typing import List

from ..lang.ast import (
    Const,
    Default,
    Delay,
    Expr,
    Last,
    Lift,
    Merge,
    Nil,
    SLift,
    TimeExpr,
    UnitExpr,
    Var,
)
from ..lang.builtins import REGISTRY
from ..lang.spec import Specification


class UnparseableError(Exception):
    """Raised for constructs without a surface syntax."""


#: builtins rendered as infix/prefix operators by the printer
_OPERATORS = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "div": "/",
    "mod": "%",
    "eq": "==",
    "neq": "!=",
    "lt": "<",
    "leq": "<=",
    "gt": ">",
    "geq": ">=",
    "and": "&&",
    "or": "||",
}


def format_literal(value) -> str:
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        import json

        return json.dumps(value)
    if isinstance(value, (int, float)):
        return repr(value)
    raise UnparseableError(f"no literal syntax for {value!r}")


def unparse_expr(expr: Expr) -> str:
    """Render one expression."""
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Const):
        if expr.type is not None:
            raise UnparseableError(
                "explicitly-typed constants have no surface syntax"
            )
        return format_literal(expr.value)
    if isinstance(expr, Nil):
        return f"nil<{expr.type}>"
    if isinstance(expr, UnitExpr):
        return "unit"
    if isinstance(expr, TimeExpr):
        return f"time({unparse_expr(expr.operand)})"
    if isinstance(expr, Last):
        return f"last({unparse_expr(expr.value)}, {unparse_expr(expr.trigger)})"
    if isinstance(expr, Delay):
        return f"delay({unparse_expr(expr.delay)}, {unparse_expr(expr.reset)})"
    if isinstance(expr, Merge):
        return f"merge({unparse_expr(expr.left)}, {unparse_expr(expr.right)})"
    if isinstance(expr, Default):
        return (
            f"default({unparse_expr(expr.operand)},"
            f" {format_literal(expr.value)})"
        )
    if isinstance(expr, SLift):
        _require_registered(expr.func)
        inner = ", ".join(unparse_expr(a) for a in expr.args)
        return f"slift({expr.func.name}, {inner})"
    if isinstance(expr, Lift):
        name = expr.func.name
        if name in _OPERATORS and len(expr.args) == 2:
            left, right = (unparse_expr(a) for a in expr.args)
            return f"({left} {_OPERATORS[name]} {right})"
        if name == "neg":
            return f"(-{unparse_expr(expr.args[0])})"
        if name == "not":
            return f"(!{unparse_expr(expr.args[0])})"
        if name == "ite":
            condition, then_branch, else_branch = (
                unparse_expr(a) for a in expr.args
            )
            return f"(if {condition} then {then_branch} else {else_branch})"
        _require_registered(expr.func)
        inner = ", ".join(unparse_expr(a) for a in expr.args)
        return f"{name}({inner})"
    raise UnparseableError(f"cannot print {expr!r}")


def _require_registered(func) -> None:
    if REGISTRY.get(func.name) is not func:
        raise UnparseableError(
            f"lifted function {func.name!r} is not a registry builtin and"
            " has no surface syntax"
        )


def unparse(spec: Specification) -> str:
    """Render a whole specification in the concrete syntax."""
    lines: List[str] = []
    for name, input_type in spec.inputs.items():
        lines.append(f"in {name}: {input_type}")
    for name, expr in spec.definitions.items():
        annotation = spec.type_annotations.get(name)
        colon = f": {annotation}" if annotation is not None else ""
        lines.append(f"def {name}{colon} := {unparse_expr(expr)}")
    if spec.outputs:
        lines.append("out " + ", ".join(spec.outputs))
    return "\n".join(lines) + "\n"


def unparse_flat(flat) -> str:
    """Render a *flattened* specification back into concrete syntax.

    Used to re-emit rewritten specifications (``repro optimize
    --emit-spec``).  Flattening is not surface-reversible as-is, so
    three re-sugarings are applied:

    * synthetic ``_s*`` streams are renamed to ``_t*`` (the flattener
      reserves the ``_s`` prefix, rejecting it on re-parse);
    * ``const(v)`` lifts over a unit clock become literals, and fused
      lifts (:class:`repro.opt.FusedFunction`) are unfolded back into
      nested registry applications;
    * everything else is printed by :func:`unparse_expr` (a lift that
      is neither a registry builtin nor re-sugarable raises
      :class:`UnparseableError`).

    Round trip: ``flatten(parse_spec(unparse_flat(f)))`` defines the
    same streams as ``f`` up to synthetic naming.
    """
    from ..lang.ast import Expr as _Expr
    from ..opt.rewrite import unfold_fused

    rename = {}
    taken = set(flat.inputs) | set(flat.definitions)
    counter = 0
    for name in flat.definitions:
        if name.startswith("_s"):
            while f"_t{counter}" in taken:
                counter += 1
            rename[name] = f"_t{counter}"
            taken.add(f"_t{counter}")
            counter += 1

    def resugar(expr: _Expr) -> _Expr:
        expr = unfold_fused(expr)
        if isinstance(expr, Var):
            return Var(rename.get(expr.name, expr.name))
        if isinstance(expr, TimeExpr):
            return TimeExpr(resugar(expr.operand))
        if isinstance(expr, Last):
            return Last(resugar(expr.value), resugar(expr.trigger))
        if isinstance(expr, Delay):
            return Delay(resugar(expr.delay), resugar(expr.reset))
        if isinstance(expr, Lift):
            name = expr.func.name
            if name == "merge" and len(expr.args) == 2:
                return Merge(resugar(expr.args[0]), resugar(expr.args[1]))
            if name.startswith("const(") and len(expr.args) == 1:
                clock = expr.args[0]
                clock_def = (
                    flat.definitions.get(clock.name)
                    if isinstance(clock, Var)
                    else None
                )
                if isinstance(clock_def, UnitExpr):
                    from ..structures import Backend

                    value = expr.func.bind(Backend.PERSISTENT)(())
                    return Const(value)
                raise UnparseableError(
                    f"constant lift {name} over non-unit clock"
                    f" {clock!r} has no surface syntax"
                )
            return Lift(expr.func, tuple(resugar(a) for a in expr.args))
        return expr  # Nil / UnitExpr / Const

    lines: List[str] = []
    for name, input_type in flat.inputs.items():
        lines.append(f"in {name}: {input_type}")
    for name, expr in flat.definitions.items():
        surface = resugar(expr)
        lines.append(
            f"def {rename.get(name, name)} := {unparse_expr(surface)}"
        )
    if flat.outputs:
        lines.append("out " + ", ".join(flat.outputs))
    return "\n".join(lines) + "\n"
