"""Usage graph and translation orders (paper §III, Defs. 1-3)."""

from .order import (
    all_translation_orders,
    is_valid_translation_order,
    translation_order,
)
from .usage_graph import Edge, EdgeClass, GraphError, UsageGraph, build_usage_graph

__all__ = [
    "Edge",
    "EdgeClass",
    "GraphError",
    "UsageGraph",
    "all_translation_orders",
    "build_usage_graph",
    "is_valid_translation_order",
    "translation_order",
]
