"""Translation orders (paper Definition 2).

A translation order is a total order on the streams such that every
non-special dependency is computed before its user; the calculation
section of the generated monitor evaluates equations in this order.
Special edges (``last``/``delay`` first parameters) are exempt because
those operators only consume the *previous* value of their first
argument.

The mutability algorithm additionally injects read-before-write
constraint edges (paper §IV-E step 4); :func:`translation_order` accepts
them as extra edges.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from .usage_graph import GraphError, UsageGraph

#: A constraint edge: (earlier, later).
Constraint = Tuple[str, str]


def _ordering_edges(
    graph: UsageGraph, extra: Iterable[Constraint]
) -> Dict[str, Set[str]]:
    """Successor map of the order-relevant graph: (E \\ S) ∪ extra."""
    successors: Dict[str, Set[str]] = {n: set() for n in graph.nodes}
    for edge in graph.edges:
        if not edge.special and edge.src != edge.dst:
            successors[edge.src].add(edge.dst)
    for src, dst in extra:
        if src != dst:
            successors[src].add(dst)
    return successors


def translation_order(
    graph: UsageGraph, extra: Iterable[Constraint] = ()
) -> List[str]:
    """A deterministic translation order (Kahn's algorithm, name-stable).

    Raises :class:`GraphError` if the constraints are cyclic — by the
    paper's well-formedness rule this can only happen through the extra
    (read-before-write) edges.
    """
    successors = _ordering_edges(graph, extra)
    indegree: Dict[str, int] = {n: 0 for n in graph.nodes}
    for node, succs in successors.items():
        for succ in succs:
            indegree[succ] += 1
    ready = sorted(n for n, d in indegree.items() if d == 0)
    order: List[str] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        inserted = []
        for succ in successors[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                inserted.append(succ)
        if inserted:
            ready.extend(inserted)
            ready.sort()
    if len(order) != len(graph.nodes):
        stuck = sorted(n for n, d in indegree.items() if d > 0)
        raise GraphError(f"ordering constraints are cyclic among {stuck}")
    return order


def is_valid_translation_order(
    graph: UsageGraph,
    order: Sequence[str],
    extra: Iterable[Constraint] = (),
) -> bool:
    """Check Def. 2 (plus extra constraints) for a candidate order."""
    if sorted(order) != sorted(graph.nodes):
        return False
    position = {name: index for index, name in enumerate(order)}
    successors = _ordering_edges(graph, extra)
    return all(
        position[src] < position[dst]
        for src, succs in successors.items()
        for dst in succs
    )


def all_translation_orders(
    graph: UsageGraph, limit: int = 10_000
) -> Iterator[List[str]]:
    """Enumerate every valid translation order (testing aid; the order is
    "not necessarily unique" — Def. 2 discussion)."""
    successors = _ordering_edges(graph, ())
    indegree: Dict[str, int] = {n: 0 for n in graph.nodes}
    for node, succs in successors.items():
        for succ in succs:
            indegree[succ] += 1
    produced = 0
    order: List[str] = []

    def extend() -> Iterator[List[str]]:
        nonlocal produced
        if len(order) == len(graph.nodes):
            produced += 1
            if produced > limit:
                raise GraphError(f"more than {limit} translation orders")
            yield list(order)
            return
        for node in sorted(n for n, d in indegree.items() if d == 0):
            indegree[node] = -1
            for succ in successors[node]:
                indegree[succ] -= 1
            order.append(node)
            yield from extend()
            order.pop()
            for succ in successors[node]:
                indegree[succ] += 1
            indegree[node] = 0

    yield from extend()
