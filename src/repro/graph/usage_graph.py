"""The TeSSLa usage graph (paper Definitions 1 and 3).

Nodes are stream names; there is an edge ``(u, v)`` whenever ``u``
occurs in the expression defining ``v``.  Edges whose source stream has
a *complex* data type are classified (Def. 3):

* **Write** — the defining expression modifies ``u``'s current value,
* **Read** — it reads ``u``'s current value,
* **Pass** — ``u``'s value may be handed to ``v`` unchanged,
* **Last** — ``v = last(u, ·)``.

Edges that pass no aggregate value (scalar streams, ``time`` operands,
``last``/``delay`` triggers) stay unclassified (**Plain**).  The
*special* edges ``S`` (Def. 1) are the first-parameter edges of ``last``
and ``delay`` — precisely the edges a translation order may ignore.

Parallel edges are kept separate (e.g. ``lift(f)(x, x)`` contributes two
classified edges from ``x``), since the mutability rules quantify over
edges, not node pairs.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, NamedTuple, Optional, Set

from ..lang.ast import Delay, Last, Lift, Nil, TimeExpr, UnitExpr
from ..lang.builtins import Access
from ..lang.spec import FlatSpec
from ..lang.typecheck import check_types


class GraphError(Exception):
    """Raised for inconsistent graphs or metadata."""


class EdgeClass(enum.Enum):
    """Classification of usage-graph edges (paper Def. 3)."""

    WRITE = "W"
    READ = "R"
    LAST = "L"
    PASS = "P"
    #: No aggregate value flows along the edge; not classified.
    PLAIN = "·"


class Edge(NamedTuple):
    """A directed usage edge with its classification.

    ``special`` marks membership in S (Def. 1): first parameter of a
    ``last`` or ``delay``.  ``arg_index`` records which operand position
    produced the edge (useful for diagnostics; -1 for non-lift edges).
    """

    src: str
    dst: str
    cls: EdgeClass
    special: bool = False
    arg_index: int = -1

    def __str__(self) -> str:
        arrow = "-->" if self.special else "->"
        return f"{self.src} {arrow}[{self.cls.value}] {self.dst}"


_ACCESS_TO_CLASS = {
    Access.WRITE: EdgeClass.WRITE,
    Access.READ: EdgeClass.READ,
    Access.PASS: EdgeClass.PASS,
}


class UsageGraph:
    """Usage graph of a flat, type-checked specification."""

    def __init__(self, flat: FlatSpec) -> None:
        if not flat.types:
            check_types(flat)
        self.flat = flat
        self.nodes: List[str] = list(flat.streams)
        self.edges: List[Edge] = []
        self._out: Dict[str, List[Edge]] = {n: [] for n in self.nodes}
        self._in: Dict[str, List[Edge]] = {n: [] for n in self.nodes}
        self._build()

    # -- construction -------------------------------------------------------

    def _add(self, edge: Edge) -> None:
        self.edges.append(edge)
        self._out[edge.src].append(edge)
        self._in[edge.dst].append(edge)

    def _is_complex(self, name: str) -> bool:
        return self.flat.types[name].is_complex

    def _build(self) -> None:
        for dst, expr in self.flat.definitions.items():
            if isinstance(expr, (Nil, UnitExpr)):
                continue
            if isinstance(expr, TimeExpr):
                # only the timestamp is used; no value flows
                self._add(Edge(expr.operand.name, dst, EdgeClass.PLAIN))
            elif isinstance(expr, Last):
                value, trigger = expr.value.name, expr.trigger.name
                cls = EdgeClass.LAST if self._is_complex(value) else EdgeClass.PLAIN
                self._add(Edge(value, dst, cls, special=True))
                self._add(Edge(trigger, dst, EdgeClass.PLAIN))
            elif isinstance(expr, Delay):
                self._add(Edge(expr.delay.name, dst, EdgeClass.PLAIN, special=True))
                self._add(Edge(expr.reset.name, dst, EdgeClass.PLAIN))
            elif isinstance(expr, Lift):
                for index, (arg, access) in enumerate(
                    zip(expr.args, expr.func.access)
                ):
                    src = arg.name
                    if not self._is_complex(src):
                        cls = EdgeClass.PLAIN
                    else:
                        cls = _ACCESS_TO_CLASS.get(access)
                        if cls is None:
                            raise GraphError(
                                f"builtin {expr.func.name!r} declares no"
                                f" access class for complex argument"
                                f" {index} (stream {src!r})"
                            )
                    self._add(Edge(src, dst, cls, arg_index=index))
            else:  # pragma: no cover - FlatSpec guarantees basic operators
                raise GraphError(f"unexpected operator for {dst!r}: {expr!r}")

    # -- queries -------------------------------------------------------------

    def out_edges(self, node: str) -> List[Edge]:
        return list(self._out[node])

    def in_edges(self, node: str) -> List[Edge]:
        return list(self._in[node])

    def edges_of_class(self, *classes: EdgeClass) -> Iterator[Edge]:
        wanted = set(classes)
        return (e for e in self.edges if e.cls in wanted)

    @property
    def write_edges(self) -> List[Edge]:
        return list(self.edges_of_class(EdgeClass.WRITE))

    @property
    def special_edges(self) -> List[Edge]:
        return [e for e in self.edges if e.special]

    def complex_nodes(self) -> List[str]:
        """Streams carrying aggregate data (candidates for the analysis)."""
        return [n for n in self.nodes if self._is_complex(n)]

    # -- P/L navigation (used by the aliasing analysis) ----------------------

    def pl_out_edges(self, node: str) -> List[Edge]:
        """Outgoing Pass/Last edges — the edges along which the *same*
        event/data structure propagates (Def. 6 path alphabet)."""
        return [
            e
            for e in self._out[node]
            if e.cls in (EdgeClass.PASS, EdgeClass.LAST)
        ]

    def pl_in_edges(self, node: str) -> List[Edge]:
        return [
            e
            for e in self._in[node]
            if e.cls in (EdgeClass.PASS, EdgeClass.LAST)
        ]

    def pl_ancestors(self, node: str) -> Set[str]:
        """All nodes that reach *node* via Pass/Last edges (incl. itself)."""
        seen = {node}
        stack = [node]
        while stack:
            current = stack.pop()
            for edge in self.pl_in_edges(current):
                if edge.src not in seen:
                    seen.add(edge.src)
                    stack.append(edge.src)
        return seen

    def pl_descendants(self, node: str) -> Set[str]:
        """All nodes reachable from *node* via Pass/Last edges (incl. itself)."""
        seen = {node}
        stack = [node]
        while stack:
            current = stack.pop()
            for edge in self.pl_out_edges(current):
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    stack.append(edge.dst)
        return seen

    def pl_paths(self, src: str, dst: str, limit: int = 10_000) -> Optional[List[List[Edge]]]:
        """All edge-simple Pass/Last paths from *src* to *dst*.

        Edge-simple (no edge repeats) rather than node-simple, so paths
        that traverse a recursion cycle once are still found.  Returns
        ``None`` if more than *limit* paths exist — callers must then be
        conservative.
        """
        results: List[List[Edge]] = []
        path: List[Edge] = []
        used: Set[int] = set()

        def visit(node: str) -> bool:
            if node == dst:
                results.append(list(path))
                if len(results) > limit:
                    return False
                # keep exploring: dst may also be an intermediate node
            for edge in self.pl_out_edges(node):
                key = id(edge)
                if key in used:
                    continue
                used.add(key)
                path.append(edge)
                ok = visit(edge.dst)
                path.pop()
                used.discard(key)
                if not ok:
                    return False
            return True

        if not visit(src):
            return None
        return results

    # -- rendering -----------------------------------------------------------

    def to_dot(self) -> str:
        """GraphViz rendering (classified edges labelled, S dashed)."""
        lines = ["digraph usage {"]
        for node in self.nodes:
            shape = "box" if self._is_complex(node) else "ellipse"
            lines.append(f'  "{node}" [shape={shape}];')
        for edge in self.edges:
            style = "dashed" if edge.special else "solid"
            label = edge.cls.value if edge.cls is not EdgeClass.PLAIN else ""
            lines.append(
                f'  "{edge.src}" -> "{edge.dst}"'
                f' [style={style}, label="{label}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"UsageGraph({len(self.nodes)} nodes, {len(self.edges)} edges)"


def build_usage_graph(flat: FlatSpec) -> UsageGraph:
    """Construct the usage graph of *flat* (type-checking it if needed)."""
    return UsageGraph(flat)
