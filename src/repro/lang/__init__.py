"""TeSSLa-like language core: types, AST, builtins, specifications."""

from . import macros
from .compose import compose, rename
from .lint import LintWarning, lint
from .prune import live_streams, prune
from .ast import (
    Const,
    Default,
    Delay,
    Expr,
    Last,
    Lift,
    Merge,
    Nil,
    SLift,
    TimeExpr,
    UnitExpr,
    Var,
)
from .builtins import (
    Access,
    EventPattern,
    LiftedFunction,
    builtin,
    const_fn,
    register,
)
from .flatten import desugar, flatten
from .spec import FlatSpec, SpecError, Specification, spec
from .windows import AGGREGATES, AggregateInfo, WindowParams, eligibility_table
from .typecheck import check_types
from .types import (
    BOOL,
    FLOAT,
    INT,
    STR,
    TIME,
    UNIT,
    MapType,
    QueueType,
    SetType,
    Type,
    TypeVar,
    VectorType,
)

__all__ = [
    "AGGREGATES",
    "AggregateInfo",
    "WindowParams",
    "eligibility_table",
    "Access",
    "BOOL",
    "Const",
    "Default",
    "Delay",
    "EventPattern",
    "Expr",
    "FLOAT",
    "FlatSpec",
    "INT",
    "Last",
    "Lift",
    "LiftedFunction",
    "MapType",
    "Merge",
    "Nil",
    "QueueType",
    "SLift",
    "STR",
    "SetType",
    "SpecError",
    "Specification",
    "TIME",
    "TimeExpr",
    "Type",
    "TypeVar",
    "UNIT",
    "UnitExpr",
    "Var",
    "VectorType",
    "builtin",
    "check_types",
    "const_fn",
    "LintWarning",
    "compose",
    "desugar",
    "flatten",
    "lint",
    "live_streams",
    "macros",
    "prune",
    "rename",
    "register",
    "spec",
]
