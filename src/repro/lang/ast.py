"""Expression AST for TeSSLa specifications.

The six basic operators of the paper (§II) — ``nil``, ``unit``,
``time``, ``lift``, ``last``, ``delay`` — plus stream references and the
syntactic sugar the paper introduces (constants as single-event streams,
``merge``, ``default``).  Sugar is eliminated by
:mod:`repro.lang.flatten` before any analysis runs.

All nodes are immutable and hashable so that flattening can perform
common-subexpression deduplication structurally.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple, TYPE_CHECKING

from .types import Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .builtins import LiftedFunction


class Expr:
    """Base class of all expression nodes."""

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def __repr__(self) -> str:
        return str(self)


class Var(Expr):
    """Reference to a named input or defined stream."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("var", self.name))


class Nil(Expr):
    """The empty stream with no events; carries its element type."""

    __slots__ = ("type",)

    def __init__(self, type: Type) -> None:
        self.type = type

    def __str__(self) -> str:
        return f"nil[{self.type}]"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Nil) and other.type == self.type

    def __hash__(self) -> int:
        return hash(("nil", self.type))


class UnitExpr(Expr):
    """A single unit-valued event at timestamp 0."""

    __slots__ = ()

    def __str__(self) -> str:
        return "unit"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UnitExpr)

    def __hash__(self) -> int:
        return hash("unit")


class TimeExpr(Expr):
    """Events of the operand with the timestamp as value."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"time({self.operand})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TimeExpr) and other.operand == self.operand

    def __hash__(self) -> int:
        return hash(("time", self.operand))


class Lift(Expr):
    """Apply a lifted function pointwise to the argument streams."""

    __slots__ = ("func", "args")

    def __init__(self, func: "LiftedFunction", args: Tuple[Expr, ...]) -> None:
        self.func = func
        self.args = tuple(args)

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"lift({self.func.name})({inner})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Lift)
            and other.func == self.func
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash(("lift", self.func, self.args))


class Last(Expr):
    """Strictly-last value of ``value``, sampled at events of ``trigger``."""

    __slots__ = ("value", "trigger")

    def __init__(self, value: Expr, trigger: Expr) -> None:
        self.value = value
        self.trigger = trigger

    def children(self) -> Tuple[Expr, ...]:
        return (self.value, self.trigger)

    def __str__(self) -> str:
        return f"last({self.value}, {self.trigger})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Last)
            and other.value == self.value
            and other.trigger == self.trigger
        )

    def __hash__(self) -> int:
        return hash(("last", self.value, self.trigger))


class Delay(Expr):
    """Unit event ``d`` time units after the last reset (paper §II)."""

    __slots__ = ("delay", "reset")

    def __init__(self, delay: Expr, reset: Expr) -> None:
        self.delay = delay
        self.reset = reset

    def children(self) -> Tuple[Expr, ...]:
        return (self.delay, self.reset)

    def __str__(self) -> str:
        return f"delay({self.delay}, {self.reset})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Delay)
            and other.delay == self.delay
            and other.reset == self.reset
        )

    def __hash__(self) -> int:
        return hash(("delay", self.delay, self.reset))


# ---------------------------------------------------------------------------
# Syntactic sugar (removed by flattening)
# ---------------------------------------------------------------------------


class SLift(Expr):
    """Signal lift: apply *func* whenever ANY argument has an event,
    substituting the last value for absent arguments.

    The signal semantics of Lustre-style languages (and of real TeSSLa's
    ``slift``), expressible in the six basic operators (paper §II: every
    future-independent transformation is): each argument is wrapped as
    ``merge(xᵢ, last(xᵢ, trigger))`` where *trigger* merges all
    arguments, and the strict ``lift`` is applied to the wrapped
    streams.  No event is produced until every argument has been
    initialized.  Desugared by :mod:`repro.lang.flatten`.
    """

    __slots__ = ("func", "args")

    def __init__(self, func: "LiftedFunction", args: Tuple[Expr, ...]) -> None:
        self.func = func
        self.args = tuple(args)

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"slift({self.func.name})({inner})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SLift)
            and other.func == self.func
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash(("slift", self.func, self.args))


class Const(Expr):
    """A constant: one event with *value* at timestamp 0 (paper §II sugar)."""

    __slots__ = ("value", "type")

    def __init__(self, value: Any, type: Optional[Type] = None) -> None:
        self.value = value
        self.type = type

    def __str__(self) -> str:
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Const)
            and other.value == self.value
            and other.type == self.type
        )

    def __hash__(self) -> int:
        return hash(("const", repr(self.value), self.type))


class Merge(Expr):
    """Combine events of two streams, prioritizing the first (paper §II)."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"merge({self.left}, {self.right})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Merge)
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("merge", self.left, self.right))


class Default(Expr):
    """``operand`` with an initial event *value* at timestamp 0 merged in."""

    __slots__ = ("operand", "value")

    def __init__(self, operand: Expr, value: Any) -> None:
        self.operand = operand
        self.value = value

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"default({self.operand}, {self.value!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Default)
            and other.operand == self.operand
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash(("default", self.operand, repr(self.value)))


def walk(expr: Expr) -> Iterator[Expr]:
    """Pre-order traversal of *expr* and all descendants."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def free_vars(expr: Expr) -> Iterator[str]:
    """Yield the names of all stream references in *expr* (with repeats)."""
    for node in walk(expr):
        if isinstance(node, Var):
            yield node.name


def is_basic(expr: Expr) -> bool:
    """True if *expr* is one of the six basic operators (or a Var)."""
    return isinstance(expr, (Var, Nil, UnitExpr, TimeExpr, Lift, Last, Delay))


def is_flat(expr: Expr) -> bool:
    """True if *expr* is a basic operator whose children are all Vars."""
    if not is_basic(expr):
        return False
    return all(isinstance(child, Var) for child in expr.children())
