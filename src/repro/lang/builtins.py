"""Lifted functions: the value-level vocabulary of specifications.

Every ``lift`` carries a :class:`LiftedFunction`, which bundles

* the runtime implementation (over ``None`` as the no-event value ⊥),
* the **event pattern** — whether the lift produces an event iff *all*
  inputs have one (arithmetic, data-structure ops), iff *any* input has
  one (``merge``), or something custom (``filter``).  The pattern feeds
  the triggering-behaviour approximation ``ev'`` (paper §IV-C, which
  distinguishes exactly the ALL and ANY groups and treats the rest as
  formula atoms);
* the per-argument **access class** — whether the function Writes,
  Reads, Passes-through or does not touch the argument's value.  This
  feeds the edge classification of the usage graph (paper §IV-A,
  Def. 3);
* a polymorphic type **signature** for type checking/inference.

Data-structure constructors additionally take the collection *backend*
(mutable vs. persistent) at bind time — the single point where the
mutability analysis influences runtime behaviour.

Invariant: stream values are never Python ``None``; ``None`` uniformly
encodes ⊥ (no event) in implementations and in generated monitors.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from ..structures import Backend, empty_map, empty_queue, empty_set, empty_vector
from ..structures.interface import EmptyCollectionError
from . import types as ty
from .types import (
    BOOL,
    FLOAT,
    INT,
    STR,
    TIME,
    UNIT,
    MapType,
    QueueType,
    SetType,
    Type,
    TypeVar,
    VectorType,
)


class EventPattern(enum.Enum):
    """When a lifted function produces an event (paper §IV-C)."""

    #: Event iff **all** argument streams have an event (``+``, ``*``, ...).
    ALL = "all"
    #: Event iff **any** argument stream has an event (``merge``).
    ANY = "any"
    #: Anything else; the triggering analysis treats the stream as an atom.
    CUSTOM = "custom"


class Access(enum.Enum):
    """How a lifted function touches one argument (paper §IV-A, Def. 3)."""

    #: The argument's value is not an aggregate / is not inspected.
    NONE = "none"
    #: Read access to the current value.
    READ = "read"
    #: Write (modifying) access to the current value.
    WRITE = "write"
    #: The value may be handed through to the result unchanged.
    PASS = "pass"


#: Trigger specs describe *exactly* when a lifted function produces an
#: event, as a positive boolean combination of argument presences:
#: an ``int`` is an argument index ("argument i has an event"),
#: ``("and", s1, s2, ...)`` / ``("or", s1, s2, ...)`` combine sub-specs.
#: ``None`` means "not expressible" — the triggering analysis then treats
#: the stream as an opaque atom (paper §IV-C, last rule).
TriggerSpec = Any


class LiftedFunction:
    """A function that can be lifted over streams.

    ``make_impl(backend)`` yields the concrete callable; most functions
    ignore the backend, constructors use it to pick the collection
    family.  Under pattern ``ALL`` the callable only runs when every
    argument is present; under ``ANY``/``CUSTOM`` it receives ``None``
    for absent arguments and may return ``None`` for "no event".

    For ``CUSTOM`` functions an optional *trigger* spec states exactly
    when an event is produced; it must be exact (not an approximation),
    otherwise the triggering analysis — and with it the mutability
    analysis — would be unsound.
    """

    __slots__ = (
        "name",
        "pattern",
        "access",
        "arg_types",
        "result_type",
        "make_impl",
        "custom_trigger",
        "scala_template",
        "scala_option_template",
        "metric_name",
    )

    def __init__(
        self,
        name: str,
        pattern: EventPattern,
        access: Sequence[Access],
        arg_types: Sequence[Type],
        result_type: Type,
        make_impl: Callable[[Backend], Callable[..., Any]],
        custom_trigger: TriggerSpec = None,
        scala_template: Optional[str] = None,
        scala_option_template: Optional[str] = None,
        metric_name: Optional[str] = None,
    ) -> None:
        if len(access) != len(arg_types):
            raise ValueError(f"{name}: access/arity mismatch")
        self.name = name
        self.pattern = pattern
        self.access = tuple(access)
        self.arg_types = tuple(arg_types)
        self.result_type = result_type
        self.make_impl = make_impl
        self.custom_trigger = custom_trigger
        #: Optional Scala expression template for the Scala backend
        #: ({0}, {1}, ... are unwrapped argument values).
        self.scala_template = scala_template
        #: Template over Option values, for non-strict functions.
        self.scala_option_template = scala_option_template
        #: Optional counter name bumped per invocation when the monitor
        #: runs instrumented (see :func:`repro.obs.metrics.instrument_lift`).
        self.metric_name = metric_name

    @property
    def trigger(self) -> TriggerSpec:
        """The exact trigger spec, or ``None`` for value-dependent events."""
        if self.pattern is EventPattern.ALL:
            return ("and", *range(self.arity))
        if self.pattern is EventPattern.ANY:
            return ("or", *range(self.arity))
        return self.custom_trigger

    @property
    def arity(self) -> int:
        return len(self.arg_types)

    def bind(self, backend: Backend) -> Callable[..., Any]:
        """Return the runtime callable for the given collection backend."""
        return self.make_impl(backend)

    def instantiate(self, suffix: str) -> Tuple[Tuple[Type, ...], Type]:
        """Return (argument types, result type) with fresh type variables."""
        binding: Dict[TypeVar, Type] = {}
        for ty_ in self.arg_types + (self.result_type,):
            for var in ty.type_vars(ty_):
                binding.setdefault(var, TypeVar(f"{var.name}#{suffix}"))
        args = tuple(ty.substitute(t, binding) for t in self.arg_types)
        return args, ty.substitute(self.result_type, binding)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LiftedFunction) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("lifted", self.name))

    def __repr__(self) -> str:
        return f"LiftedFunction({self.name!r})"


REGISTRY: Dict[str, LiftedFunction] = {}


def register(func: LiftedFunction) -> LiftedFunction:
    """Add *func* to the global registry (used by frontend name lookup)."""
    if func.name in REGISTRY:
        raise ValueError(f"builtin {func.name!r} already registered")
    REGISTRY[func.name] = func
    return func


def builtin(name: str) -> LiftedFunction:
    """Look up a registered lifted function by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown builtin {name!r}") from None


def _simple(fn: Callable[..., Any]) -> Callable[[Backend], Callable[..., Any]]:
    """Implementation factory for backend-independent functions."""
    return lambda backend: fn


def _define(
    name: str,
    pattern: EventPattern,
    access: Sequence[Access],
    arg_types: Sequence[Type],
    result_type: Type,
    fn: Callable[..., Any],
) -> LiftedFunction:
    return register(
        LiftedFunction(name, pattern, access, arg_types, result_type, _simple(fn))
    )


_A = TypeVar("a")
_K = TypeVar("k")
_V = TypeVar("v")

_N = Access.NONE
_R = Access.READ
_W = Access.WRITE
_P = Access.PASS

# ---------------------------------------------------------------------------
# Scalar arithmetic / logic (pattern ALL)
# ---------------------------------------------------------------------------

ADD = _define("add", EventPattern.ALL, (_N, _N), (INT, INT), INT, lambda a, b: a + b)
SUB = _define("sub", EventPattern.ALL, (_N, _N), (INT, INT), INT, lambda a, b: a - b)
MUL = _define("mul", EventPattern.ALL, (_N, _N), (INT, INT), INT, lambda a, b: a * b)
DIV = _define(
    "div", EventPattern.ALL, (_N, _N), (INT, INT), INT, lambda a, b: a // b
)
MOD = _define("mod", EventPattern.ALL, (_N, _N), (INT, INT), INT, lambda a, b: a % b)
NEG = _define("neg", EventPattern.ALL, (_N,), (INT,), INT, lambda a: -a)
ABS = _define("abs", EventPattern.ALL, (_N,), (INT,), INT, abs)

FADD = _define(
    "fadd", EventPattern.ALL, (_N, _N), (FLOAT, FLOAT), FLOAT, lambda a, b: a + b
)
FSUB = _define(
    "fsub", EventPattern.ALL, (_N, _N), (FLOAT, FLOAT), FLOAT, lambda a, b: a - b
)
FMUL = _define(
    "fmul", EventPattern.ALL, (_N, _N), (FLOAT, FLOAT), FLOAT, lambda a, b: a * b
)
FDIV = _define(
    "fdiv", EventPattern.ALL, (_N, _N), (FLOAT, FLOAT), FLOAT, lambda a, b: a / b
)
FABS = _define("fabs", EventPattern.ALL, (_N,), (FLOAT,), FLOAT, abs)
TO_FLOAT = _define(
    "to_float", EventPattern.ALL, (_N,), (INT,), FLOAT, float
)
ROUND = _define("round", EventPattern.ALL, (_N,), (FLOAT,), INT, round)

EQ = _define(
    "eq", EventPattern.ALL, (_R, _R), (_A, _A), BOOL, lambda a, b: a == b
)
NEQ = _define(
    "neq", EventPattern.ALL, (_R, _R), (_A, _A), BOOL, lambda a, b: a != b
)
LT = _define("lt", EventPattern.ALL, (_N, _N), (_A, _A), BOOL, lambda a, b: a < b)
LEQ = _define("leq", EventPattern.ALL, (_N, _N), (_A, _A), BOOL, lambda a, b: a <= b)
GT = _define("gt", EventPattern.ALL, (_N, _N), (_A, _A), BOOL, lambda a, b: a > b)
GEQ = _define("geq", EventPattern.ALL, (_N, _N), (_A, _A), BOOL, lambda a, b: a >= b)

AND = _define(
    "and", EventPattern.ALL, (_N, _N), (BOOL, BOOL), BOOL, lambda a, b: a and b
)
OR = _define(
    "or", EventPattern.ALL, (_N, _N), (BOOL, BOOL), BOOL, lambda a, b: a or b
)
NOT = _define("not", EventPattern.ALL, (_N,), (BOOL,), BOOL, lambda a: not a)

ITE = _define(
    "ite",
    EventPattern.ALL,
    (_N, _P, _P),
    (BOOL, _A, _A),
    _A,
    lambda c, a, b: a if c else b,
)
MIN = _define(
    "min", EventPattern.ALL, (_P, _P), (_A, _A), _A, lambda a, b: a if a <= b else b
)
MAX = _define(
    "max", EventPattern.ALL, (_P, _P), (_A, _A), _A, lambda a, b: a if a >= b else b
)

STR_CONCAT = _define(
    "str_concat", EventPattern.ALL, (_N, _N), (STR, STR), STR, lambda a, b: a + b
)
TO_STR = _define(
    "to_str", EventPattern.ALL, (_R,), (_A,), STR, str
)

# ---------------------------------------------------------------------------
# Stream combinators
# ---------------------------------------------------------------------------

MERGE = _define(
    "merge",
    EventPattern.ANY,
    (_P, _P),
    (_A, _A),
    _A,
    lambda a, b: a if a is not None else b,
)

FILTER = _define(
    "filter",
    EventPattern.CUSTOM,
    (_P, _N),
    (_A, BOOL),
    _A,
    lambda v, c: v if (v is not None and c is not None and c) else None,
)

#: Pass the first argument's event only where the second also has one.
AT = register(
    LiftedFunction(
        "at",
        EventPattern.CUSTOM,
        (_P, _N),
        (_A, _V),
        _A,
        _simple(lambda v, t: v if (v is not None and t is not None) else None),
        custom_trigger=("and", 0, 1),
    )
)


def pointwise(
    name: str,
    fn: Callable[..., Any],
    arg_types: Sequence[Type],
    result_type: Type,
    access: Optional[Sequence[Access]] = None,
    metric_name: Optional[str] = None,
) -> LiftedFunction:
    """Create an ad-hoc (unregistered) strict lifted function.

    The idiomatic way to lift a plain Python function with baked-in
    constants — e.g. ``pointwise("mod8", lambda x: x % 8, (INT,), INT)``
    — instead of routing constants through single-event constant streams
    (which would starve ALL-pattern lifts after timestamp 0).
    """
    if access is None:
        access = tuple(_R if t.is_complex else _N for t in arg_types)
    return LiftedFunction(
        name,
        EventPattern.ALL,
        access,
        arg_types,
        result_type,
        _simple(fn),
        metric_name=metric_name,
    )


def const_fn(value: Any, value_type: Optional[Type] = None) -> LiftedFunction:
    """A lifted constant: maps any event (usually ``unit``) to *value*.

    Not registered by name — every constant gets its own instance, used
    by the desugaring of :class:`repro.lang.ast.Const`.
    """
    result = value_type if value_type is not None else ty.type_of_value(value)
    return LiftedFunction(
        f"const({value!r})",
        EventPattern.ALL,
        (_N,),
        (UNIT,),
        result,
        _simple(lambda _u, _value=value: _value),
    )


# ---------------------------------------------------------------------------
# Aggregate constructors (backend-sensitive)
# ---------------------------------------------------------------------------


def _constructor(
    name: str, result_type: Type, factory: Callable[[Backend], Any]
) -> LiftedFunction:
    return register(
        LiftedFunction(
            name,
            EventPattern.ALL,
            (_N,),
            (UNIT,),
            result_type,
            lambda backend: (lambda _u, _b=backend: factory(_b)),
        )
    )


SET_EMPTY = _constructor("set_empty", SetType(_A), empty_set)
MAP_EMPTY = _constructor("map_empty", MapType(_K, _V), empty_map)
QUEUE_EMPTY = _constructor("queue_empty", QueueType(_A), empty_queue)
VEC_EMPTY = _constructor("vec_empty", VectorType(_A), empty_vector)

# ---------------------------------------------------------------------------
# Set operations
# ---------------------------------------------------------------------------

SET_ADD = _define(
    "set_add",
    EventPattern.ALL,
    (_W, _N),
    (SetType(_A), _A),
    SetType(_A),
    lambda s, x: s.add(x),
)
SET_REMOVE = _define(
    "set_remove",
    EventPattern.ALL,
    (_W, _N),
    (SetType(_A), _A),
    SetType(_A),
    lambda s, x: s.remove(x),
)
SET_TOGGLE = _define(
    "set_toggle",
    EventPattern.ALL,
    (_W, _N),
    (SetType(_A), _A),
    SetType(_A),
    lambda s, x: s.remove(x) if x in s else s.add(x),
)
SET_CONTAINS = _define(
    "set_contains",
    EventPattern.ALL,
    (_R, _N),
    (SetType(_A), _A),
    BOOL,
    lambda s, x: x in s,
)
SET_SIZE = _define(
    "set_size", EventPattern.ALL, (_R,), (SetType(_A),), INT, len
)

# ---------------------------------------------------------------------------
# Map operations
# ---------------------------------------------------------------------------

MAP_PUT = _define(
    "map_put",
    EventPattern.ALL,
    (_W, _N, _N),
    (MapType(_K, _V), _K, _V),
    MapType(_K, _V),
    lambda m, k, v: m.put(k, v),
)
MAP_REMOVE = _define(
    "map_remove",
    EventPattern.ALL,
    (_W, _N),
    (MapType(_K, _V), _K),
    MapType(_K, _V),
    lambda m, k: m.remove(k),
)
MAP_GET_OR = _define(
    "map_get_or",
    EventPattern.ALL,
    (_R, _N, _N),
    (MapType(_K, _V), _K, _V),
    _V,
    lambda m, k, d: m.get(k, d),
)
MAP_CONTAINS = _define(
    "map_contains",
    EventPattern.ALL,
    (_R, _N),
    (MapType(_K, _V), _K),
    BOOL,
    lambda m, k: k in m,
)
MAP_SIZE = _define(
    "map_size", EventPattern.ALL, (_R,), (MapType(_K, _V),), INT, len
)

# ---------------------------------------------------------------------------
# Queue operations
# ---------------------------------------------------------------------------


def _queue_front_or(q: Any, default: Any) -> Any:
    try:
        return q.front()
    except EmptyCollectionError:
        return default


QUEUE_ENQ = _define(
    "queue_enq",
    EventPattern.ALL,
    (_W, _N),
    (QueueType(_A), _A),
    QueueType(_A),
    lambda q, x: q.enqueue(x),
)
QUEUE_DEQ = _define(
    "queue_deq",
    EventPattern.ALL,
    (_W,),
    (QueueType(_A),),
    QueueType(_A),
    lambda q: q.dequeue() if len(q) else q,
)
QUEUE_FRONT_OR = _define(
    "queue_front_or",
    EventPattern.ALL,
    (_R, _N),
    (QueueType(_A), _A),
    _A,
    _queue_front_or,
)
QUEUE_SIZE = _define(
    "queue_size", EventPattern.ALL, (_R,), (QueueType(_A),), INT, len
)

# ---------------------------------------------------------------------------
# Vector operations
# ---------------------------------------------------------------------------


def _vec_get_or(v: Any, index: int, default: Any) -> Any:
    try:
        return v.get(index)
    except EmptyCollectionError:
        return default


VEC_APPEND = _define(
    "vec_append",
    EventPattern.ALL,
    (_W, _N),
    (VectorType(_A), _A),
    VectorType(_A),
    lambda v, x: v.append(x),
)
VEC_SET = _define(
    "vec_set",
    EventPattern.ALL,
    (_W, _N, _N),
    (VectorType(_A), INT, _A),
    VectorType(_A),
    lambda v, i, x: v.set(i, x) if 0 <= i < len(v) else v,
)
VEC_GET_OR = _define(
    "vec_get_or",
    EventPattern.ALL,
    (_R, _N, _N),
    (VectorType(_A), INT, _A),
    _A,
    _vec_get_or,
)
VEC_SIZE = _define(
    "vec_size", EventPattern.ALL, (_R,), (VectorType(_A),), INT, len
)

# ---------------------------------------------------------------------------
# Conditional in-place updates
# ---------------------------------------------------------------------------
#
# These produce an event whenever the *structure* argument has one and
# modify it only when the condition/key arguments are present (or true).
# In the unchanged case the same structure flows through the single Write
# edge unmodified — which is sound for in-place backends because writing
# nothing and passing the object on are indistinguishable.  They exist so
# that multi-trigger monitors (update on stream A, read on stream B) can
# keep the single-write shape of the paper's Fig. 1 instead of a
# conditional `ite` pass that would alias the structure to two targets.

QUEUE_DEQ_IF = _define(
    "queue_deq_if",
    EventPattern.ALL,
    (_W, _N),
    (QueueType(_A), BOOL),
    QueueType(_A),
    lambda q, c: q.dequeue() if (c and len(q)) else q,
)

SET_ADD_IF = _define(
    "set_add_if",
    EventPattern.ALL,
    (_W, _N, _N),
    (SetType(_A), _A, BOOL),
    SetType(_A),
    lambda s, x, c: s.add(x) if c else s,
)

MAP_PUT_IF = register(
    LiftedFunction(
        "map_put_if",
        EventPattern.CUSTOM,
        (_W, _N, _N),
        (MapType(_K, _V), _K, _V),
        MapType(_K, _V),
        _simple(
            lambda m, k, v: (
                None if m is None else (m if (k is None or v is None) else m.put(k, v))
            )
        ),
        custom_trigger=0,
    )
)


def _set_update_if(s: Any, add: Any, remove: Any) -> Any:
    if s is None:
        return None
    if add is not None:
        s = s.add(add)
    if remove is not None:
        s = s.remove(remove)
    return s


SET_UPDATE_IF = register(
    LiftedFunction(
        "set_update_if",
        EventPattern.CUSTOM,
        (_W, _N, _N),
        (SetType(_A), _A, _A),
        SetType(_A),
        _simple(_set_update_if),
        custom_trigger=0,
    )
)

# TIME is currently interchangeable with INT in signatures; expose an
# explicit alias so specs reading timestamps type-check descriptively.
_ = TIME
