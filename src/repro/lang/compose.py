"""Composing specifications.

Monitors are often built from reusable pieces — one spec per property —
and run as a single compiled monitor over shared inputs (one analysis,
one translation order, one pass over the event stream).  ``rename``
namespaces a specification's defined streams; ``compose`` merges
several specifications, requiring agreement on shared inputs and
rejecting definition clashes.
"""

from __future__ import annotations

from typing import Dict, List

from .ast import (
    Const,
    Default,
    Delay,
    Expr,
    Last,
    Lift,
    Merge,
    Nil,
    SLift,
    TimeExpr,
    UnitExpr,
    Var,
)
from .spec import SpecError, Specification


def _rename_expr(expr: Expr, mapping: Dict[str, str]) -> Expr:
    if isinstance(expr, Var):
        return Var(mapping.get(expr.name, expr.name))
    if isinstance(expr, (Nil, UnitExpr, Const)):
        return expr
    if isinstance(expr, TimeExpr):
        return TimeExpr(_rename_expr(expr.operand, mapping))
    if isinstance(expr, Lift):
        return Lift(
            expr.func, tuple(_rename_expr(a, mapping) for a in expr.args)
        )
    if isinstance(expr, SLift):
        return SLift(
            expr.func, tuple(_rename_expr(a, mapping) for a in expr.args)
        )
    if isinstance(expr, Last):
        return Last(
            _rename_expr(expr.value, mapping),
            _rename_expr(expr.trigger, mapping),
        )
    if isinstance(expr, Delay):
        return Delay(
            _rename_expr(expr.delay, mapping),
            _rename_expr(expr.reset, mapping),
        )
    if isinstance(expr, Merge):
        return Merge(
            _rename_expr(expr.left, mapping),
            _rename_expr(expr.right, mapping),
        )
    if isinstance(expr, Default):
        return Default(_rename_expr(expr.operand, mapping), expr.value)
    raise SpecError(f"cannot rename within {expr!r}")


def rename(spec: Specification, prefix: str) -> Specification:
    """A copy of *spec* with every DEFINED stream prefixed.

    Input streams keep their names (they are the shared interface).
    """
    mapping = {name: f"{prefix}{name}" for name in spec.definitions}
    return Specification(
        spec.inputs,
        {
            mapping[name]: _rename_expr(expr, mapping)
            for name, expr in spec.definitions.items()
        },
        [mapping.get(name, name) for name in spec.outputs],
        type_annotations={
            mapping.get(name, name): annotation
            for name, annotation in spec.type_annotations.items()
        },
    )


def substitute_inputs(
    spec: Specification, mapping: Dict[str, str]
) -> Specification:
    """Rewire *spec*'s input streams per *mapping* (old → new name).

    Used to adapt a reusable property spec to the stream names of a
    concrete system before :func:`compose`.
    """
    unknown = set(mapping) - set(spec.inputs)
    if unknown:
        raise SpecError(f"not input streams: {sorted(unknown)}")
    inputs = {
        mapping.get(name, name): input_type
        for name, input_type in spec.inputs.items()
    }
    if len(inputs) != len(spec.inputs):
        raise SpecError("input substitution must stay injective")
    return Specification(
        inputs,
        {
            name: _rename_expr(expr, mapping)
            for name, expr in spec.definitions.items()
        },
        spec.outputs,
        type_annotations=spec.type_annotations,
    )


def compose(*specs: Specification, namespace: bool = False) -> Specification:
    """Merge several specifications into one.

    Shared input names must agree on their types.  Defined-stream name
    clashes are an error unless ``namespace=True``, which prefixes each
    part's definitions with ``p0_``, ``p1_``, ...  Outputs are
    concatenated (deduplicated, order-preserving).
    """
    if not specs:
        raise SpecError("compose() needs at least one specification")
    parts: List[Specification] = (
        [rename(spec, f"p{index}_") for index, spec in enumerate(specs)]
        if namespace
        else list(specs)
    )
    inputs: Dict[str, object] = {}
    definitions: Dict[str, Expr] = {}
    outputs: List[str] = []
    annotations: Dict[str, object] = {}
    for part in parts:
        for name, input_type in part.inputs.items():
            known = inputs.get(name)
            if known is not None and known != input_type:
                raise SpecError(
                    f"input {name!r} declared with conflicting types"
                    f" {known} and {input_type}"
                )
            inputs[name] = input_type
        for name, expr in part.definitions.items():
            if name in definitions and definitions[name] != expr:
                raise SpecError(
                    f"stream {name!r} defined differently in two parts;"
                    " compose with namespace=True"
                )
            if name in inputs:
                raise SpecError(
                    f"stream {name!r} is an input of one part and a"
                    " definition of another"
                )
            definitions[name] = expr
        for name in part.outputs:
            if name not in outputs:
                outputs.append(name)
        annotations.update(part.type_annotations)
    return Specification(inputs, definitions, outputs, annotations)
