"""Desugaring and flattening of specifications (paper §II/§III).

Sugar removal:

* ``Const(v)`` becomes ``lift(const_v)(unit)`` — a stream with one event
  at timestamp 0,
* ``Merge(a, b)`` becomes ``lift(f_merge)(a, b)``,
* ``Default(x, v)`` becomes ``merge(x, Const(v))``.

Flattening then introduces fresh synthetic streams for every nested
sub-expression so each equation applies exactly one basic operator to
plain stream names.  Structurally identical sub-expressions are shared
(common-subexpression elimination), which both shrinks the usage graph
and — as in the paper's worked example, where the single ``unit`` node
feeds several places — keeps the triggering analysis precise.
"""

from __future__ import annotations

from typing import Dict

from .ast import (
    Const,
    Default,
    Delay,
    Expr,
    Last,
    Lift,
    Merge,
    Nil,
    SLift,
    TimeExpr,
    UnitExpr,
    Var,
)
from .builtins import MERGE, const_fn
from .spec import FlatSpec, SpecError, Specification

#: Prefix of synthetic stream names introduced by flattening.  User
#: streams may not start with it, so generated names can never clash.
SYNTHETIC_PREFIX = "_s"


def _constructs_aggregate(expr: Expr) -> bool:
    """Does *expr* create a fresh aggregate from scalar ingredients?

    Such expressions (e.g. two occurrences of ``Set.empty``) are never
    CSE-shared: sharing would make the single constructed object flow
    into several places, creating aliasing that forces the analysis to
    reject in-place updates.  Distinct construction sites keep the
    object lineages — and hence the variable families — independent.
    """
    return (
        isinstance(expr, Lift)
        and expr.func.result_type.is_complex
        and not any(t.is_complex for t in expr.func.arg_types)
    )


def desugar(expr: Expr) -> Expr:
    """Remove sugar nodes, recursively."""
    if isinstance(expr, Const):
        func = const_fn(expr.value, expr.type)
        return Lift(func, (UnitExpr(),))
    if isinstance(expr, Merge):
        return Lift(MERGE, (desugar(expr.left), desugar(expr.right)))
    if isinstance(expr, Default):
        return desugar(Merge(expr.operand, Const(expr.value)))
    if isinstance(expr, SLift):
        args = tuple(desugar(a) for a in expr.args)
        if len(args) == 1:
            return Lift(expr.func, args)
        # The shared trigger carries event *presence* only; time() maps
        # every argument to Int so differently-typed arguments merge.
        trigger = TimeExpr(args[0])
        for arg in args[1:]:
            trigger = Lift(MERGE, (trigger, TimeExpr(arg)))
        held = tuple(
            Lift(MERGE, (arg, Last(arg, trigger))) for arg in args
        )
        return Lift(expr.func, held)
    if isinstance(expr, TimeExpr):
        return TimeExpr(desugar(expr.operand))
    if isinstance(expr, Lift):
        return Lift(expr.func, tuple(desugar(a) for a in expr.args))
    if isinstance(expr, Last):
        return Last(desugar(expr.value), desugar(expr.trigger))
    if isinstance(expr, Delay):
        return Delay(desugar(expr.delay), desugar(expr.reset))
    if isinstance(expr, (Var, Nil, UnitExpr)):
        return expr
    raise SpecError(f"cannot desugar unknown expression {expr!r}")


class _Flattener:
    def __init__(self, spec: Specification) -> None:
        self.spec = spec
        self.flat: Dict[str, Expr] = {}
        self.synthetic: list = []
        #: structural CSE table: desugared sub-expression -> stream name
        self.memo: Dict[Expr, str] = {}
        self.counter = 0
        self.aliases: Dict[str, str] = {}

    def fresh(self) -> str:
        name = f"{SYNTHETIC_PREFIX}{self.counter}"
        self.counter += 1
        self.synthetic.append(name)
        return name

    def atomize(self, expr: Expr) -> Var:
        """Reduce *expr* to a stream reference, adding equations as needed."""
        if isinstance(expr, Var):
            return Var(self.resolve(expr.name))
        shareable = not _constructs_aggregate(expr)
        if shareable:
            cached = self.memo.get(expr)
            if cached is not None:
                return Var(cached)
        name = self.fresh()
        if shareable:
            # Insert the placeholder before recursing so that (ill-formed)
            # self-referencing sugar cannot loop forever.
            self.memo[expr] = name
        self.flat[name] = self.flatten_expr(expr)
        return Var(name)

    def resolve(self, name: str) -> str:
        """Follow alias chains (from ``x := y`` definitions)."""
        seen = set()
        while name in self.aliases:
            if name in seen:
                raise SpecError(f"alias cycle involving {name!r}")
            seen.add(name)
            name = self.aliases[name]
        return name

    def flatten_expr(self, expr: Expr) -> Expr:
        """Return *expr* with all children reduced to Vars."""
        if isinstance(expr, (Nil, UnitExpr)):
            return expr
        if isinstance(expr, TimeExpr):
            return TimeExpr(self.atomize(expr.operand))
        if isinstance(expr, Lift):
            return Lift(expr.func, tuple(self.atomize(a) for a in expr.args))
        if isinstance(expr, Last):
            return Last(self.atomize(expr.value), self.atomize(expr.trigger))
        if isinstance(expr, Delay):
            return Delay(self.atomize(expr.delay), self.atomize(expr.reset))
        raise SpecError(f"cannot flatten {expr!r}")

    def run(self) -> FlatSpec:
        desugared: Dict[str, Expr] = {}
        for name, expr in self.spec.definitions.items():
            if name.startswith(SYNTHETIC_PREFIX):
                raise SpecError(
                    f"stream name {name!r} uses the reserved prefix"
                    f" {SYNTHETIC_PREFIX!r}"
                )
            desugared[name] = desugar(expr)
        # Alias definitions (x := y) are substituted away: flat
        # specifications have exactly one defining operator per stream.
        for name, expr in desugared.items():
            if isinstance(expr, Var):
                self.aliases[name] = expr.name
        for name, expr in desugared.items():
            if isinstance(expr, Var):
                continue
            self.flat[name] = self.flatten_expr(expr)
            self.memo.setdefault(expr, name)
        outputs = []
        for out in self.spec.outputs:
            resolved = self.resolve(out) if out in self.aliases else out
            if resolved not in self.flat and resolved not in self.spec.inputs:
                raise SpecError(f"output {out!r} resolves to undefined {resolved!r}")
            outputs.append(resolved)
        annotations = {
            self.resolve(k) if k in self.aliases else k: v
            for k, v in self.spec.type_annotations.items()
        }
        flat = FlatSpec(
            self.spec.inputs, self.flat, outputs, self.synthetic, annotations
        )
        flat.window_info = getattr(self.spec, "window_info", None)
        return flat


def flatten(spec: Specification) -> FlatSpec:
    """Desugar and flatten *spec* into a :class:`FlatSpec`."""
    return _Flattener(spec).run()
