"""Specification linter.

Multi-clocked languages have a classic foot-gun: a constant is a stream
with a *single* event at timestamp 0, so a strict (ALL-pattern) lift
over a constant and a live stream fires at most once — almost never
what the author meant (they wanted ``slift``, ``default`` or a baked-in
constant).  The linter detects this and a few related diagnoses
statically; the CLI prints the warnings with ``analyze``.

Checks:

* **starved lift** — a strict lift mixing zero-only streams (events at
  timestamp 0 only) with live streams;
* **dead stream** — a defined stream no output depends on;
* **unused input** — an input no defined stream reads;
* **constant output** — an output that provably only ever fires at
  timestamp 0;
* **never fires** — a defined stream (other than an explicit ``nil``)
  that provably never produces any event.

Each check's slug maps to a stable ``LINT00x`` code (``LINT_CODES``)
used by the unified diagnostics layer
(:mod:`repro.analysis.diagnostics`) and catalogued in
``docs/analysis.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from .ast import Delay, Last, Lift, Nil, TimeExpr, UnitExpr, free_vars
from .builtins import EventPattern
from .prune import live_streams
from .spec import FlatSpec

#: check slug → stable diagnostic code (see docs/analysis.md).
LINT_CODES: Dict[str, str] = {
    "starved-lift": "LINT001",
    "dead-stream": "LINT002",
    "unused-input": "LINT003",
    "constant-output": "LINT004",
    "never-fires": "LINT005",
}


@dataclass(frozen=True)
class LintWarning:
    """One diagnostic: a code (stable identifier) and a message."""

    code: str
    stream: str
    message: str

    @property
    def diagnostic_code(self) -> str:
        """The stable ``LINT00x`` code for the unified diagnostics layer."""
        return LINT_CODES.get(self.code, "LINT000")

    def __str__(self) -> str:
        return f"[{self.code}] {self.stream}: {self.message}"


def zero_only_streams(flat: FlatSpec) -> Set[str]:
    """Streams whose events provably all lie at timestamp 0.

    Greatest fixpoint: start from "everything zero-only" and strike out
    streams that can provably fire later (inputs, delays); strict lifts
    are zero-only if ANY argument is, lenient ones only if ALL are.
    """
    zero_only = set(flat.definitions)
    changed = True
    while changed:
        changed = False
        for name, expr in flat.definitions.items():
            if name not in zero_only:
                continue
            if not _zero_only_now(expr, zero_only):
                zero_only.discard(name)
                changed = True
    return zero_only


def _zero_only_now(expr, zero_only: Set[str]) -> bool:
    if isinstance(expr, (Nil, UnitExpr)):
        return True
    if isinstance(expr, TimeExpr):
        return expr.operand.name in zero_only
    if isinstance(expr, Last):
        # a last fires only when its trigger does (and never at 0)
        return expr.trigger.name in zero_only
    if isinstance(expr, Delay):
        return False
    assert isinstance(expr, Lift)
    flags = [arg.name in zero_only for arg in expr.args]
    if expr.func.pattern is EventPattern.ALL:
        return any(flags)
    return all(flags)


def may_fire_streams(flat: FlatSpec) -> Set[str]:
    """Streams that may produce at least one event (over-approximation).

    Least fixpoint seeded with the inputs and ``unit``: a lift needs all
    (strict) or any (lenient/custom) argument to fire; a ``last`` needs
    both its value and its trigger; a ``delay`` needs its delay operand.
    The complement is a sound "provably never fires" set.
    """
    may: Set[str] = set(flat.inputs)
    changed = True
    while changed:
        changed = False
        for name, expr in flat.definitions.items():
            if name in may:
                continue
            if _may_fire_now(expr, may):
                may.add(name)
                changed = True
    return may


def _may_fire_now(expr, may: Set[str]) -> bool:
    if isinstance(expr, Nil):
        return False
    if isinstance(expr, UnitExpr):
        return True
    if isinstance(expr, TimeExpr):
        return expr.operand.name in may
    if isinstance(expr, Last):
        return expr.value.name in may and expr.trigger.name in may
    if isinstance(expr, Delay):
        return expr.delay.name in may
    assert isinstance(expr, Lift)
    flags = [arg.name in may for arg in expr.args]
    if expr.func.pattern is EventPattern.ALL:
        return all(flags)
    # Lenient and custom lifts fire at most when some argument does.
    return any(flags)


def lint(flat: FlatSpec) -> List[LintWarning]:
    """Run all checks; returns warnings sorted by stream name."""
    warnings: List[LintWarning] = []
    zero_only = zero_only_streams(flat)

    for name, expr in flat.definitions.items():
        if (
            isinstance(expr, Lift)
            and expr.func.pattern is EventPattern.ALL
            and len(expr.args) > 1
        ):
            starving = [a.name for a in expr.args if a.name in zero_only]
            live = [a.name for a in expr.args if a.name not in zero_only]
            if starving and live:
                warnings.append(
                    LintWarning(
                        "starved-lift",
                        name,
                        f"strict lift {expr.func.name!r} mixes the"
                        f" timestamp-0-only stream(s) {starving} with live"
                        f" stream(s) {live}; it can only fire at timestamp 0"
                        " — consider slift, default(...) or a baked-in"
                        " constant",
                    )
                )

    live = live_streams(flat)
    for name in flat.definitions:
        if name not in live:
            warnings.append(
                LintWarning(
                    "dead-stream",
                    name,
                    "no output depends on this stream; it will be computed"
                    " but never observed (compile with prune_dead=True to"
                    " drop it)",
                )
            )

    used: Dict[str, bool] = {name: False for name in flat.inputs}
    for expr in flat.definitions.values():
        for var in free_vars(expr):
            if var in used:
                used[var] = True
    for name, was_used in used.items():
        if not was_used:
            warnings.append(
                LintWarning(
                    "unused-input",
                    name,
                    "declared as input but never read by any definition",
                )
            )

    for name in flat.outputs:
        if name in zero_only:
            warnings.append(
                LintWarning(
                    "constant-output",
                    name,
                    "this output can only ever fire at timestamp 0",
                )
            )

    may_fire = may_fire_streams(flat)
    for name, expr in flat.definitions.items():
        if name not in may_fire and not isinstance(expr, Nil):
            warnings.append(
                LintWarning(
                    "never-fires",
                    name,
                    "this stream provably never produces an event (its"
                    " dependencies can never fire together); if that is"
                    " intentional, define it as nil",
                )
            )
    return sorted(warnings, key=lambda w: (w.code, w.stream))
