"""Derived stream operators (a small TeSSLa-style standard library).

Everything here is sugar over the six basic operators — the paper's
point that TeSSLa "is able to express every future-independent
multi-clocked stream transformation" (§I) — so the aggregate-update
analysis sees only the core constructs.  Recursive aggregators
(``counting``, ``summing`` ...) reference their own result stream, so
they take the *name* the caller will bind the expression to::

    spec = Specification(
        inputs={"x": INT},
        definitions={"n": counting("n", Var("x"))},
        outputs=["n"],
    )
"""

from __future__ import annotations

from .ast import Const, Expr, Last, Lift, Merge, SLift, TimeExpr, Var
from .builtins import builtin, pointwise
from .types import INT

#: Shared pointwise helpers (module-level so CSE can share their lifts).
_INC = pointwise("inc", lambda x: x + 1, (INT,), INT)
_INC.scala_template = "({0} + 1L)"


def counting(self_name: str, trigger: Expr) -> Expr:
    """Number of events seen on *trigger* (0 at timestamp 0).

    ``n := merge(inc(last(n, trigger)), 0)``
    """
    return Merge(
        Lift(_INC, (Last(Var(self_name), trigger),)),
        Const(0),
    )


def summing(self_name: str, values: Expr, zero=0) -> Expr:
    """Running sum of the events of *values*, starting from *zero*."""
    add = builtin("add") if isinstance(zero, int) else builtin("fadd")
    return Merge(
        Lift(add, (Last(Var(self_name), values), values)),
        Const(zero),
    )


def running_max(self_name: str, values: Expr) -> Expr:
    """Largest value seen so far (first event = first value)."""
    return Merge(
        Lift(builtin("max"), (Last(Var(self_name), values), values)),
        values,
    )


def running_min(self_name: str, values: Expr) -> Expr:
    """Smallest value seen so far."""
    return Merge(
        Lift(builtin("min"), (Last(Var(self_name), values), values)),
        values,
    )


def held(values: Expr, clock: Expr) -> Expr:
    """The signal value of *values* at every *clock* event: the current
    value if present, otherwise the last one (Lustre's ``current``)."""
    return Merge(Lift(builtin("at"), (values, clock)), Last(values, clock))


def changed(values: Expr) -> Expr:
    """True at each event whose value differs from the previous one
    (no event at the very first occurrence)."""
    return Lift(builtin("neq"), (values, Last(values, values)))


def previous(values: Expr) -> Expr:
    """The previous value of *values*, at each of its events."""
    return Last(values, values)


def time_of_last(values: Expr) -> Expr:
    """Timestamp of the previous event of *values*, at each event."""
    return Last(TimeExpr(values), values)


def time_since_last(values: Expr) -> Expr:
    """Elapsed time since the previous event, at each event of *values*
    (no event at the very first occurrence)."""
    return Lift(builtin("sub"), (TimeExpr(values), time_of_last(values)))


def signal_add(a: Expr, b: Expr) -> Expr:
    """Signal-semantics integer addition (``slift`` of ``add``)."""
    return SLift(builtin("add"), (a, b))
