"""Dead-stream elimination.

A monitor only needs the streams its outputs (transitively) depend on —
including ``last``/``delay`` dependencies, which carry state across
timestamps, and ``delay`` reset inputs.  Everything else is dead code:
it can never influence an output event.  The compiler applies this
before analysis when requested; fewer streams mean a smaller usage
graph, a cheaper analysis and a faster calculation section.

This is a semantics-preserving *projection*: outputs of the pruned
specification equal outputs of the original on every input (asserted by
differential tests).
"""

from __future__ import annotations

from typing import Set

from .ast import free_vars
from .spec import FlatSpec


def live_streams(flat: FlatSpec) -> Set[str]:
    """Streams reachable from the outputs through any dependency."""
    live: Set[str] = set()
    stack = [name for name in flat.outputs]
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        if name in flat.definitions:
            stack.extend(free_vars(flat.definitions[name]))
    return live


def prune(flat: FlatSpec) -> FlatSpec:
    """Deprecated alias of :func:`repro.opt.project_live`.

    The dead-stream projection moved into the rewrite optimizer as its
    ``OPT005`` rule (``repro.opt``); this shim delegates unchanged.
    Input streams are kept in the interface even when dead (the monitor
    still accepts their events; they just trigger no computation).
    """
    from .._deprecation import warn_once
    from ..opt import project_live

    warn_once(
        "lang.prune.prune",
        "repro.lang.prune.prune() is deprecated; use"
        " repro.opt.project_live() or compile with rewrite=True (the"
        " optimizer's OPT005 dead-stream rule subsumes it)",
    )
    return project_live(flat)
