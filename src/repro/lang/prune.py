"""Dead-stream elimination.

A monitor only needs the streams its outputs (transitively) depend on —
including ``last``/``delay`` dependencies, which carry state across
timestamps, and ``delay`` reset inputs.  Everything else is dead code:
it can never influence an output event.  The compiler applies this
before analysis when requested; fewer streams mean a smaller usage
graph, a cheaper analysis and a faster calculation section.

This is a semantics-preserving *projection*: outputs of the pruned
specification equal outputs of the original on every input (asserted by
differential tests).
"""

from __future__ import annotations

from typing import Set

from .ast import free_vars
from .spec import FlatSpec


def live_streams(flat: FlatSpec) -> Set[str]:
    """Streams reachable from the outputs through any dependency."""
    live: Set[str] = set()
    stack = [name for name in flat.outputs]
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        if name in flat.definitions:
            stack.extend(free_vars(flat.definitions[name]))
    return live


def prune(flat: FlatSpec) -> FlatSpec:
    """Return *flat* restricted to output-reachable streams.

    Input streams are kept in the interface even when dead (the monitor
    still accepts their events; they just trigger no computation).
    """
    live = live_streams(flat)
    definitions = {
        name: expr
        for name, expr in flat.definitions.items()
        if name in live
    }
    if len(definitions) == len(flat.definitions):
        return flat
    pruned = FlatSpec(
        flat.inputs,
        definitions,
        flat.outputs,
        synthetic=[name for name in flat.synthetic if name in live],
        type_annotations={
            name: annotation
            for name, annotation in flat.type_annotations.items()
            if name in live
        },
    )
    if flat.types:
        pruned.types = {
            name: ty
            for name, ty in flat.types.items()
            if name in live or name in flat.inputs
        }
    return pruned
