"""Specifications: named equation systems over streams.

A TeSSLa specification (paper §II) is a set of equations assigning an
expression to every defined stream, together with declared input streams
and a subset of streams marked as outputs.  Validation enforces the
paper's well-formedness rule: recursive definitions are only allowed if
every dependency cycle passes through the *first* parameter of a
``last`` or ``delay`` expression (those are the "special" edges of the
usage graph, Def. 1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .ast import Delay, Expr, Last, Var, free_vars
from .types import Type


class SpecError(Exception):
    """Raised for malformed specifications."""


class Specification:
    """An (unflattened) specification.

    Parameters
    ----------
    inputs:
        Mapping from input stream name to its value type.
    definitions:
        Mapping from defined stream name to its defining expression.
    outputs:
        Names of streams whose events the monitor reports.  Defaults to
        all defined streams.
    type_annotations:
        Optional explicit types for defined streams; used to seed type
        inference where it cannot make progress on its own (e.g. the
        element type of a set built from an empty constructor only).
    """

    def __init__(
        self,
        inputs: Mapping[str, Type],
        definitions: Mapping[str, Expr],
        outputs: Optional[Sequence[str]] = None,
        type_annotations: Optional[Mapping[str, Type]] = None,
    ) -> None:
        self.inputs: Dict[str, Type] = dict(inputs)
        self.definitions: Dict[str, Expr] = dict(definitions)
        self.outputs: List[str] = (
            list(outputs) if outputs is not None else list(self.definitions)
        )
        self.type_annotations: Dict[str, Type] = dict(type_annotations or {})
        #: Optional window metadata attached by the windowing macros
        #: (:mod:`repro.lang.windows`): carried through flattening so the
        #: diagnostics pass can report aggregate eligibility (WIN00x).
        self.window_info: Optional[Dict[str, object]] = None
        self.validate_names()

    # -- validation --------------------------------------------------------

    def validate_names(self) -> None:
        """Check name hygiene: no redefinition, no unresolved references."""
        overlap = set(self.inputs) & set(self.definitions)
        if overlap:
            raise SpecError(f"streams defined and declared as input: {sorted(overlap)}")
        known = set(self.inputs) | set(self.definitions)
        for name, expr in self.definitions.items():
            for used in free_vars(expr):
                if used not in known:
                    raise SpecError(f"definition of {name!r} uses unknown stream {used!r}")
        for out in self.outputs:
            if out not in known:
                raise SpecError(f"output {out!r} is not a known stream")

    def __repr__(self) -> str:
        return (
            f"Specification(inputs={sorted(self.inputs)}, "
            f"definitions={sorted(self.definitions)}, outputs={self.outputs})"
        )


class FlatSpec:
    """A flattened specification: one basic operator per equation.

    Every equation's sub-expressions are plain :class:`Var` references
    (paper §II: "A TeSSLa specification is called flat, if only stream
    names are used as sub-expressions inside the basic operators").
    Produced by :func:`repro.lang.flatten.flatten`; synthetic streams
    introduced by flattening are recorded in ``synthetic``.
    """

    def __init__(
        self,
        inputs: Mapping[str, Type],
        definitions: Mapping[str, Expr],
        outputs: Sequence[str],
        synthetic: Iterable[str] = (),
        type_annotations: Optional[Mapping[str, Type]] = None,
    ) -> None:
        self.inputs: Dict[str, Type] = dict(inputs)
        self.definitions: Dict[str, Expr] = dict(definitions)
        self.outputs: List[str] = list(outputs)
        self.synthetic: Set[str] = set(synthetic)
        self.type_annotations: Dict[str, Type] = dict(type_annotations or {})
        #: Stream types, filled in by the type checker.
        self.types: Dict[str, Type] = {}
        #: Window metadata (see :class:`Specification`), copied by
        #: :func:`repro.lang.flatten.flatten`.
        self.window_info: Optional[Dict[str, object]] = None
        self._check_flat()
        self.check_recursion()

    # -- structure ---------------------------------------------------------

    @property
    def streams(self) -> List[str]:
        """All stream names: inputs then definitions."""
        return list(self.inputs) + list(self.definitions)

    def _check_flat(self) -> None:
        from .ast import is_flat

        for name, expr in self.definitions.items():
            if isinstance(expr, Var):
                raise SpecError(
                    f"flat specification may not alias streams: {name} = {expr}"
                )
            if not is_flat(expr):
                raise SpecError(f"definition of {name!r} is not flat: {expr}")

    def dependencies(self, name: str) -> List[str]:
        """Streams the definition of *name* references (with repeats)."""
        return list(free_vars(self.definitions[name]))

    def special_dependencies(self, name: str) -> Set[str]:
        """First-parameter dependencies of ``last``/``delay`` (S edges)."""
        expr = self.definitions[name]
        if isinstance(expr, Last):
            assert isinstance(expr.value, Var)
            return {expr.value.name}
        if isinstance(expr, Delay):
            assert isinstance(expr.delay, Var)
            return {expr.delay.name}
        return set()

    def check_recursion(self) -> None:
        """Reject cycles that do not pass through a special edge.

        The dependency graph restricted to non-special edges must be
        acyclic (paper §II / Def. 2: a translation order exists exactly
        then).
        """
        non_special: Dict[str, Set[str]] = {}
        for name in self.definitions:
            special = self.special_dependencies(name)
            non_special[name] = {
                dep
                for dep in self.dependencies(name)
                if dep not in special and dep in self.definitions
            }
        state: Dict[str, int] = {}  # 0 visiting, 1 done

        def visit(node: str, stack: Tuple[str, ...]) -> None:
            status = state.get(node)
            if status == 1:
                return
            if status == 0:
                cycle = stack[stack.index(node):] + (node,)
                raise SpecError(
                    "illegal recursion (cycle without last/delay): "
                    + " -> ".join(cycle)
                )
            state[node] = 0
            for dep in non_special[node]:
                visit(dep, stack + (node,))
            state[node] = 1

        for name in self.definitions:
            visit(name, ())

    def __repr__(self) -> str:
        lines = [f"  {name} = {expr}" for name, expr in self.definitions.items()]
        header = f"FlatSpec(inputs={sorted(self.inputs)}, outputs={self.outputs})"
        return "\n".join([header] + lines)


def spec(
    inputs: Mapping[str, Type],
    outputs: Optional[Sequence[str]] = None,
    **definitions: Expr,
) -> Specification:
    """Convenience constructor for specifications in Python code."""
    return Specification(inputs, definitions, outputs)
