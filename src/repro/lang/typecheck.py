"""Type checking / inference for flat specifications.

A standard unification pass: every stream gets a type variable, every
equation contributes constraints from its operator (builtin signatures
are instantiated with fresh variables per use), user annotations are
unified in, and at the end every stream type must be ground.

Timestamps are plain ``Int``s — ``time(x)`` produces ``Int`` so that
timestamp arithmetic works with the ordinary integer builtins (the
paper's time domain is totally ordered and supports subtraction; ours is
ℤ).

One restriction beyond unification: complex types may not nest (no
``Set<Queue<Int>>``).  The paper's aliasing analysis tracks one
aggregate per stream variable; element-level sharing between nested
aggregates is outside its model, so we reject it at the type level.
"""

from __future__ import annotations

from typing import Dict

from . import types as ty
from .ast import Delay, Expr, Last, Lift, Nil, TimeExpr, UnitExpr
from .spec import FlatSpec, SpecError
from .types import INT, UNIT, Type, TypeVar


def _stream_var(name: str) -> TypeVar:
    return TypeVar(f"${name}")


def _constrain(
    flat: FlatSpec, name: str, expr: Expr, binding: Dict[TypeVar, Type]
) -> None:
    this = _stream_var(name)
    try:
        if isinstance(expr, Nil):
            ty.unify(this, expr.type, binding)
        elif isinstance(expr, UnitExpr):
            ty.unify(this, UNIT, binding)
        elif isinstance(expr, TimeExpr):
            ty.unify(this, INT, binding)
        elif isinstance(expr, Lift):
            arg_types, result = expr.func.instantiate(name)
            if len(expr.args) != len(arg_types):
                raise SpecError(
                    f"{name}: {expr.func.name} expects {len(arg_types)}"
                    f" argument(s), got {len(expr.args)}"
                )
            for arg, expected in zip(expr.args, arg_types):
                ty.unify(_stream_var(arg.name), expected, binding)
            ty.unify(this, result, binding)
        elif isinstance(expr, Last):
            ty.unify(this, _stream_var(expr.value.name), binding)
        elif isinstance(expr, Delay):
            ty.unify(_stream_var(expr.delay.name), INT, binding)
            ty.unify(this, UNIT, binding)
        else:  # pragma: no cover - FlatSpec guarantees basic operators
            raise SpecError(f"{name}: unexpected operator {expr!r}")
    except ty.TypeError_ as exc:
        raise SpecError(f"type error in definition of {name!r}: {exc}") from None


def _reject_nested_complex(name: str, resolved: Type) -> None:
    if resolved.is_complex:
        for param in resolved.children():
            if param.is_complex:
                raise SpecError(
                    f"stream {name!r} has nested complex type {resolved};"
                    " aggregate element types must be scalar"
                )


def check_types(flat: FlatSpec) -> Dict[str, Type]:
    """Infer and validate all stream types; store them on ``flat.types``."""
    binding: Dict[TypeVar, Type] = {}
    for name, input_type in flat.inputs.items():
        ty.unify(_stream_var(name), input_type, binding)
    for name, annotation in flat.type_annotations.items():
        try:
            ty.unify(_stream_var(name), annotation, binding)
        except ty.TypeError_ as exc:
            raise SpecError(f"annotation mismatch for {name!r}: {exc}") from None
    for name, expr in flat.definitions.items():
        _constrain(flat, name, expr, binding)

    resolved: Dict[str, Type] = {}
    for name in flat.streams:
        result = ty.substitute(_stream_var(name), binding)
        leftover = list(ty.type_vars(result))
        if leftover:
            raise SpecError(
                f"could not infer the type of stream {name!r} (got {result});"
                " add a type annotation"
            )
        _reject_nested_complex(name, result)
        resolved[name] = result
    flat.types = resolved
    return resolved
