"""Stream value types.

TeSSLa streams carry values from a data domain; the analysis cares about
one distinction above all (paper §IV-A): whether a stream's data type is
*complex* — an aggregate structure whose copy is costly (sets, maps,
queues, vectors) — because only edges out of complex-typed streams are
classified and only complex-typed variables enter the mutability
analysis.

Types are immutable and hashable.  ``TypeVar`` supports the forward type
inference used by the frontend (:mod:`repro.frontend.infer`) and by the
polymorphic builtin signatures.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple


class Type:
    """Base class of all stream value types."""

    #: True if values of this type are aggregate data structures whose
    #: persistent update is costly (paper's "complex data types").
    is_complex: bool = False

    def children(self) -> Tuple["Type", ...]:
        return ()

    def __repr__(self) -> str:
        return str(self)


class _Primitive(Type):
    """A named scalar type; instances are singletons."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Primitive) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("prim", self.name))


INT = _Primitive("Int")
FLOAT = _Primitive("Float")
BOOL = _Primitive("Bool")
STR = _Primitive("Str")
UNIT = _Primitive("Unit")
#: Timestamps; TeSSLa's ``time`` operator produces this.  The reference
#: implementation uses integer timestamps, so TIME behaves like INT but
#: is kept distinct for documentation purposes in signatures.
TIME = _Primitive("Time")

_PRIMITIVES: Dict[str, _Primitive] = {
    t.name: t for t in (INT, FLOAT, BOOL, STR, UNIT, TIME)
}


class TypeVar(Type):
    """A type variable for polymorphic signatures and inference."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TypeVar) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("var", self.name))


class _Parametric(Type):
    """Base of the aggregate (complex) types."""

    constructor: str = "?"
    is_complex = True

    __slots__ = ("params",)

    def __init__(self, *params: Type) -> None:
        self.params = params

    def children(self) -> Tuple[Type, ...]:
        return self.params

    def __str__(self) -> str:
        inner = ", ".join(str(p) for p in self.params)
        return f"{self.constructor}<{inner}>"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _Parametric)
            and other.constructor == self.constructor
            and other.params == self.params
        )

    def __hash__(self) -> int:
        return hash((self.constructor, self.params))


class SetType(_Parametric):
    """A finite set of elements."""

    constructor = "Set"

    def __init__(self, element: Type) -> None:
        super().__init__(element)

    @property
    def element(self) -> Type:
        return self.params[0]


class MapType(_Parametric):
    """A finite map from keys to values."""

    constructor = "Map"

    def __init__(self, key: Type, value: Type) -> None:
        super().__init__(key, value)

    @property
    def key(self) -> Type:
        return self.params[0]

    @property
    def value(self) -> Type:
        return self.params[1]


class QueueType(_Parametric):
    """A FIFO queue of elements."""

    constructor = "Queue"

    def __init__(self, element: Type) -> None:
        super().__init__(element)

    @property
    def element(self) -> Type:
        return self.params[0]


class VectorType(_Parametric):
    """An indexed sequence of elements."""

    constructor = "Vector"

    def __init__(self, element: Type) -> None:
        super().__init__(element)

    @property
    def element(self) -> Type:
        return self.params[0]


_CONSTRUCTORS = {
    "Set": (SetType, 1),
    "Map": (MapType, 2),
    "Queue": (QueueType, 1),
    "Vector": (VectorType, 1),
}


class TypeError_(Exception):
    """Raised on type mismatches (named to avoid shadowing the builtin)."""


def primitive(name: str) -> Optional[_Primitive]:
    """Look up a primitive type by name, or None."""
    return _PRIMITIVES.get(name)


def parametric(constructor: str, *params: Type) -> Type:
    """Build a parametric type by constructor name."""
    try:
        cls, arity = _CONSTRUCTORS[constructor]
    except KeyError:
        raise TypeError_(f"unknown type constructor {constructor!r}") from None
    if len(params) != arity:
        raise TypeError_(
            f"{constructor} expects {arity} parameter(s), got {len(params)}"
        )
    return cls(*params)


def type_vars(ty: Type) -> Iterator[TypeVar]:
    """Yield every type variable occurring in *ty*."""
    if isinstance(ty, TypeVar):
        yield ty
    for child in ty.children():
        yield from type_vars(child)


def substitute(ty: Type, binding: Dict[TypeVar, Type]) -> Type:
    """Replace type variables in *ty* according to *binding*."""
    if isinstance(ty, TypeVar):
        replacement = binding.get(ty)
        if replacement is None:
            return ty
        # Chase chains so unify can bind var -> var.
        return substitute(replacement, binding)
    if isinstance(ty, _Parametric):
        params = tuple(substitute(p, binding) for p in ty.params)
        if params == ty.params:
            return ty
        cls, _ = _CONSTRUCTORS[ty.constructor]
        return cls(*params)
    return ty


def unify(a: Type, b: Type, binding: Dict[TypeVar, Type]) -> None:
    """Unify *a* and *b*, extending *binding* in place.

    Raises :class:`TypeError_` if the types cannot be made equal.
    """
    a = substitute(a, binding)
    b = substitute(b, binding)
    if a == b:
        return
    if isinstance(a, TypeVar):
        if a in set(type_vars(b)):
            raise TypeError_(f"occurs check failed: {a} in {b}")
        binding[a] = b
        return
    if isinstance(b, TypeVar):
        unify(b, a, binding)
        return
    if (
        isinstance(a, _Parametric)
        and isinstance(b, _Parametric)
        and a.constructor == b.constructor
    ):
        for pa, pb in zip(a.params, b.params):
            unify(pa, pb, binding)
        return
    raise TypeError_(f"cannot unify {a} with {b}")


def type_of_value(value: object) -> Type:
    """Infer the type of a Python constant used in a specification."""
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return STR
    if value == ():
        return UNIT
    raise TypeError_(f"unsupported constant {value!r}")
