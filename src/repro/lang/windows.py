"""Window parameters and the invertible-aggregate registry.

Event-time windows (tumbling, sliding, session) are macros over the six
basic operators: the window content lives in two FIFO queues (arrival
timestamps and values) kept in the paper's Fig. 1 shape, so the
mutability analysis certifies the per-event evict-and-push updates as
in-place.  Whether the *aggregate* over the window can also be
maintained in O(1) depends on the aggregate function: COUNT/SUM/AVG are
invertible (the contribution of an expired event can be subtracted),
MIN/MAX/DISTINCT are not and fall back to an O(window) fold.

This module holds the value-level vocabulary of that decision: the
:data:`AGGREGATES` registry consulted by the macros in
:mod:`repro.speclib.windows`, and :class:`WindowParams`, whose
validation records ignored/contradictory parameter combinations so the
diagnostics pass can surface them as ``WIN003`` instead of silently
dropping them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "AGGREGATES",
    "AggregateInfo",
    "WindowParams",
    "eligibility_table",
]

#: Window kinds understood by the macros.
KINDS = ("tumbling", "sliding", "session")


@dataclass(frozen=True)
class AggregateInfo:
    """Eligibility record for one window aggregate.

    ``invertible`` aggregates are maintained by delta updates (add the
    new event's contribution, subtract the expired ones); the rest are
    recomputed by folding over the live window contents.  ``state`` is a
    human-readable description of the per-window state the lowering
    keeps, shown in the CLI eligibility table.
    """

    name: str
    invertible: bool
    state: str
    #: Diagnostic emitted for this aggregate: WIN001 (delta path) or
    #: WIN002 (fold fallback).
    diagnostic: str = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "diagnostic", "WIN001" if self.invertible else "WIN002"
        )


AGGREGATES: Dict[str, AggregateInfo] = {
    info.name: info
    for info in (
        AggregateInfo("count", True, "event count (int)"),
        AggregateInfo("sum", True, "running sum (int)"),
        AggregateInfo("avg", True, "running sum + count (int pair)"),
        AggregateInfo("min", False, "value queue fold"),
        AggregateInfo("max", False, "value queue fold"),
        AggregateInfo("distinct", False, "value queue fold (set)"),
    )
}


def eligibility_table() -> List[Tuple[str, str, str, str]]:
    """Rows of (aggregate, path, state, diagnostic) for the CLI table."""
    return [
        (
            info.name,
            "delta (O(1))" if info.invertible else "fold (O(window))",
            info.state,
            info.diagnostic,
        )
        for info in AGGREGATES.values()
    ]


@dataclass(frozen=True)
class WindowParams:
    """Validated parameters of one window macro instantiation.

    Parameters that do not apply to the chosen kind are *ignored*, but
    never silently: each such combination is recorded in ``conflicts``
    and reported as a ``WIN003`` warning by the diagnostics pass.

    ``watermark`` (tumbling) delays bucket flushes so late events that
    the bounded-skew reorder buffer re-sorts still land in their bucket;
    events later than the ingestion skew bound are dropped there and
    surface as the ``window.late_drops`` metric.
    """

    kind: str
    period: Optional[int] = None
    gap: Optional[int] = None
    watermark: int = 0
    min_separation: int = 0
    conflicts: Tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown window kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.kind == "session":
            if self.gap is None or self.gap <= 0:
                raise ValueError("session windows need a positive gap")
        else:
            if self.period is None or self.period <= 0:
                raise ValueError(f"{self.kind} windows need a positive period")
        if self.watermark < 0:
            raise ValueError("watermark must be non-negative")
        if self.min_separation < 0:
            raise ValueError("min_separation must be non-negative")

        conflicts: List[str] = []
        if self.kind != "tumbling" and self.watermark:
            conflicts.append(
                f"watermark={self.watermark} is ignored for {self.kind} windows"
                " (late data is handled by the ingestion reorder buffer)"
            )
        if self.kind != "sliding" and self.min_separation:
            conflicts.append(
                f"min_separation={self.min_separation} is ignored for"
                f" {self.kind} windows (they emit once per close)"
            )
        if self.kind == "session" and self.period is not None:
            conflicts.append(
                f"period={self.period} is ignored for session windows"
                " (use gap)"
            )
        if self.kind != "session" and self.gap is not None:
            conflicts.append(
                f"gap={self.gap} is ignored for {self.kind} windows"
                " (use period)"
            )
        if self.kind == "sliding" and self.min_separation >= (self.period or 0) > 0:
            conflicts.append(
                f"min_separation={self.min_separation} >= period={self.period}"
                " suppresses all but one emission per window span"
            )
        object.__setattr__(self, "conflicts", tuple(conflicts))

    def describe(self) -> str:
        if self.kind == "session":
            parts = [f"gap={self.gap}"]
        else:
            parts = [f"period={self.period}"]
        if self.watermark:
            parts.append(f"watermark={self.watermark}")
        if self.min_separation:
            parts.append(f"min_separation={self.min_separation}")
        return f"{self.kind}({', '.join(parts)})"
