"""Observability layer: metrics, phase tracing, and exposition.

The paper's central claim (§I, §VI) is that the mutability analysis
eliminates aggregate copies a naive immutable implementation would
perform.  This package makes that claim *observable at runtime*:

- :mod:`repro.obs.metrics` — a process-local registry of counters,
  gauges and histograms, plus per-stream ``copies_performed`` /
  ``inplace_updates`` counters wired into the lift binding layer.
- :mod:`repro.obs.trace` — span timing for compile-pipeline phases and
  runtime batches, with a no-op fast path when disabled.
- :mod:`repro.obs.export` — JSON and Prometheus text exposition.

Everything here is off by default and costs (almost) nothing when off:
metric wrappers are only installed on instrumented compiles, and the
tracer's disabled path is a single attribute check.
"""

from .metrics import (
    DEFAULT_REGISTRY,
    MetricsRegistry,
    StreamStats,
    diff_snapshots,
    instrument_lift,
    merge_snapshots,
)
from .trace import TRACER, Tracer
from .export import to_json, to_prometheus

__all__ = [
    "DEFAULT_REGISTRY",
    "MetricsRegistry",
    "StreamStats",
    "TRACER",
    "Tracer",
    "diff_snapshots",
    "instrument_lift",
    "merge_snapshots",
    "to_json",
    "to_prometheus",
]
