"""Exposition formats for metric snapshots: JSON and Prometheus text.

Both functions take the nested-dict snapshot shape produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` (and attached to
``RunReport.metrics``).  The Prometheus output follows the text
exposition format version 0.0.4: one ``# TYPE`` line per family,
counters suffixed ``_total``, histograms flattened to
``_count``/``_sum``/``_min``/``_max`` gauges, per-stream counters
labelled ``{stream="..."}``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

__all__ = ["to_json", "to_prometheus"]


def to_json(snapshot: Dict[str, Any], indent: int = 2) -> str:
    """Stable-keyed JSON rendering of a metric snapshot."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def _metric_name(name: str) -> str:
    """Dotted metric names become Prometheus-legal underscore names."""
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def to_prometheus(snapshot: Dict[str, Any]) -> str:
    """Prometheus text exposition of a metric snapshot."""
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {snapshot['gauges'][name]}")
    for name in sorted(snapshot.get("histograms", {})):
        h = snapshot["histograms"][name]
        base = _metric_name(name)
        lines.append(f"# TYPE {base} summary")
        lines.append(f"{base}_count {h['count']}")
        lines.append(f"{base}_sum {h['sum']}")
        lines.append(f"{base}_min {h['min']}")
        lines.append(f"{base}_max {h['max']}")
    streams = snapshot.get("streams", {})
    if streams:
        for kind in ("copies_performed", "inplace_updates"):
            metric = f"repro_{kind}_total"
            lines.append(f"# TYPE {metric} counter")
            for stream in sorted(streams):
                label = _escape_label(stream)
                lines.append(f'{metric}{{stream="{label}"}} {streams[stream][kind]}')
    return "\n".join(lines) + ("\n" if lines else "")
