"""Process-local metrics registry and copy/in-place lift instrumentation.

Three primitive kinds, all held in plain dicts so a snapshot is just a
nested-dict copy:

- **counters** — monotonically increasing ints (``inc``);
- **gauges** — last-written floats (``gauge``);
- **histograms** — running ``count/sum/min/max`` summaries (``observe``).

On top of those, :class:`StreamStats` tracks the two numbers the paper
cares about per stream variable: ``copies_performed`` (an update
returned a structurally new collection) and ``inplace_updates`` (an
update landed on a mutable or guarded backend).

Classification rule
-------------------
A lift that writes a structure argument (first ``Access.WRITE`` slot in
its access tuple) is wrapped by :func:`instrument_lift`.  After the
call:

- if the written argument's class advertises ``IN_PLACE = True``
  (mutable and guarded backends), the update counts as in-place —
  *regardless of result identity*, because guarded backends return a
  fresh generation handle over shared storage;
- otherwise, if the result is a different object than the argument, a
  structural copy was performed (persistent backends copy O(log n)
  spine nodes, copying backends copy everything — both count once);
- a persistent no-op that returns the argument unchanged (for example
  ``queue_deq`` on an empty queue) counts as neither.

The disabled fast path is "no wrapper exists at all": instrumentation
is applied per compiled monitor only when a registry is passed down the
bind chain, so uninstrumented runs execute the exact same bound
callables as before this module existed.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional

__all__ = [
    "DEFAULT_REGISTRY",
    "MetricsRegistry",
    "POOL_ARENA_ATTACH",
    "POOL_BYTES_PICKLED",
    "POOL_BYTES_SHARED",
    "POOL_HEARTBEATS",
    "POOL_MISSED_HEARTBEATS",
    "POOL_QUARANTINED",
    "POOL_RESTARTS",
    "POOL_RETRIES",
    "POOL_TASKS",
    "StreamStats",
    "diff_snapshots",
    "instrument_lift",
    "merge_snapshots",
]

#: Counter names bumped on :data:`DEFAULT_REGISTRY` by the supervised
#: worker pool (:mod:`repro.parallel.supervisor`).  Like the plan-cache
#: counters these are always-present call sites: writes are single-branch
#: no-ops until the registry is enabled (``repro profile``, the
#: Prometheus exporter, tests).
POOL_TASKS = "pool_tasks_dispatched"
POOL_RETRIES = "pool_retries"
POOL_RESTARTS = "pool_worker_restarts"
POOL_HEARTBEATS = "pool_heartbeats"
POOL_MISSED_HEARTBEATS = "pool_missed_heartbeats"
POOL_QUARANTINED = "pool_traces_quarantined"
#: Shared-memory trace transport (:mod:`repro.parallel.shm`):
#: payload bytes packed columnar into segments, payload bytes packed as
#: pickled blobs (the fallback encoding), and worker arena attaches
#: (one per dispatched attempt over the shm transport).
POOL_BYTES_SHARED = "pool_bytes_shared"
POOL_BYTES_PICKLED = "pool_bytes_pickled"
POOL_ARENA_ATTACH = "pool_arena_attach"
#: Windowing library (:mod:`repro.speclib.windows`): aggregate updates
#: served by the O(1) delta path vs. O(window) fold recomputations, and
#: events the bounded-skew reorder buffer dropped as too late for their
#: window.  The first two are bumped through ``metric_name``-tagged
#: lifts (see :func:`instrument_lift`); the drop counter is wired by
#: ``repro.api.run`` from the ingestion stats.
WINDOW_DELTA_UPDATES = "window.delta_updates"
WINDOW_RECOMPUTES = "window.recomputes"
WINDOW_LATE_DROPS = "window.late_drops"


class StreamStats:
    """Copy/in-place counters for one stream variable."""

    __slots__ = ("copies_performed", "inplace_updates")

    def __init__(self) -> None:
        self.copies_performed = 0
        self.inplace_updates = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "copies_performed": self.copies_performed,
            "inplace_updates": self.inplace_updates,
        }


class MetricsRegistry:
    """A process-local bag of counters, gauges, histograms and stream stats.

    ``enabled=False`` turns every write into a single-branch no-op; the
    default process registry starts disabled so plan-cache and other
    always-present call sites cost one attribute check when metrics are
    off.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Dict[str, float]] = {}
        self._streams: Dict[str, StreamStats] = {}

    # -- writes ---------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                self._histograms[name] = {
                    "count": 1,
                    "sum": value,
                    "min": value,
                    "max": value,
                }
            else:
                h["count"] += 1
                h["sum"] += value
                if value < h["min"]:
                    h["min"] = value
                if value > h["max"]:
                    h["max"] = value

    def stream(self, name: str) -> StreamStats:
        """Stats cell for *name*, created on first use.

        The cell is handed out once at bind time and then bumped without
        further dict lookups, so per-event overhead is two attribute
        increments.  Stream cells ignore ``enabled`` — a registry that
        was explicitly threaded into a compile is meant to count.
        """
        with self._lock:
            stats = self._streams.get(name)
            if stats is None:
                stats = self._streams[name] = StreamStats()
            return stats

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            for stats in self._streams.values():
                stats.copies_performed = 0
                stats.inplace_updates = 0

    # -- reads ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A point-in-time, JSON-ready copy of every metric."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: dict(v) for k, v in self._histograms.items()},
                "streams": {k: v.as_dict() for k, v in self._streams.items()},
            }


#: Process-wide registry for always-present call sites (plan cache).
#: Disabled by default; ``repro profile`` and tests flip it on.
DEFAULT_REGISTRY = MetricsRegistry(enabled=False)


def _empty_snapshot() -> Dict[str, Any]:
    return {"counters": {}, "gauges": {}, "histograms": {}, "streams": {}}


def diff_snapshots(before: Optional[Dict[str, Any]], after: Dict[str, Any]) -> Dict[str, Any]:
    """``after - before`` for monotone metrics; gauges keep the latest value.

    Used to attribute a shared registry's growth to one run.
    """
    if before is None:
        before = _empty_snapshot()
    out = _empty_snapshot()
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0)
        if delta:
            out["counters"][name] = delta
    out["gauges"] = dict(after.get("gauges", {}))
    for name, h in after.get("histograms", {}).items():
        prev = before.get("histograms", {}).get(name)
        if prev is None:
            out["histograms"][name] = dict(h)
        elif h["count"] > prev["count"]:
            # min/max of just the delta window are not recoverable from
            # summaries; keep the cumulative extremes, which still bound
            # the window.
            out["histograms"][name] = {
                "count": h["count"] - prev["count"],
                "sum": h["sum"] - prev["sum"],
                "min": h["min"],
                "max": h["max"],
            }
    for name, s in after.get("streams", {}).items():
        prev = before.get("streams", {}).get(name, {})
        copies = s["copies_performed"] - prev.get("copies_performed", 0)
        inplace = s["inplace_updates"] - prev.get("inplace_updates", 0)
        if copies or inplace or name not in before.get("streams", {}):
            out["streams"][name] = {
                "copies_performed": copies,
                "inplace_updates": inplace,
            }
    return out


def merge_snapshots(a: Optional[Dict[str, Any]], b: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Commutative, associative merge of two snapshots (either may be None).

    Counters and stream stats sum; histogram count/sum add with min/max
    combined; gauges take the max (the only associative choice without
    timestamps).  Returns a new dict — inputs are not mutated, so merged
    reports never alias a worker's snapshot.
    """
    if a is None and b is None:
        return None
    if a is None:
        a = _empty_snapshot()
    if b is None:
        b = _empty_snapshot()
    out = _empty_snapshot()
    for src in (a, b):
        for name, value in src.get("counters", {}).items():
            out["counters"][name] = out["counters"].get(name, 0) + value
        for name, value in src.get("gauges", {}).items():
            prev = out["gauges"].get(name)
            out["gauges"][name] = value if prev is None else max(prev, value)
        for name, h in src.get("histograms", {}).items():
            prev = out["histograms"].get(name)
            if prev is None:
                out["histograms"][name] = dict(h)
            else:
                prev["count"] += h["count"]
                prev["sum"] += h["sum"]
                prev["min"] = min(prev["min"], h["min"])
                prev["max"] = max(prev["max"], h["max"])
        for name, s in src.get("streams", {}).items():
            prev = out["streams"].get(name)
            if prev is None:
                out["streams"][name] = dict(s)
            else:
                prev["copies_performed"] += s["copies_performed"]
                prev["inplace_updates"] += s["inplace_updates"]
    return out


def instrument_lift(
    impl: Callable[..., Any],
    func: Any,
    stream: str,
    registry: MetricsRegistry,
) -> Callable[..., Any]:
    """Wrap a bound lift with copy/in-place counting for *stream*.

    *func* is the :class:`~repro.lang.builtins.LiftedFunction` the impl
    was bound from; lifts without a WRITE access slot (scalar lifts,
    constructors) are returned unwrapped — unless the lift carries a
    ``metric_name``, in which case a per-invocation counter of that name
    is bumped instead (how the windowing library separates delta updates
    from fold recomputations).  The stats cell is registered eagerly so
    ``repro profile`` tables list every write stream even when its count
    stayed zero.
    """
    from ..lang.builtins import Access

    metric = getattr(func, "metric_name", None)
    write_index = -1
    for i, access in enumerate(func.access):
        if access is Access.WRITE:
            write_index = i
            break
    if write_index < 0 and metric is None:
        return impl

    stats = registry.stream(stream) if write_index >= 0 else None

    def counted(*args: Any) -> Any:
        result = impl(*args)
        if metric is not None and result is not None:
            registry.inc(metric)
        if stats is not None:
            target = args[write_index]
            if target is not None and result is not None:
                if getattr(target, "IN_PLACE", False):
                    stats.inplace_updates += 1
                elif result is not target:
                    stats.copies_performed += 1
        return result

    counted.__name__ = getattr(impl, "__name__", "lift") + "_counted"
    return counted
