"""Span timing for compile-pipeline phases and runtime batches.

A :class:`Tracer` records ``(name, seconds)`` pairs.  The compile
pipeline opens one span per phase (``compile.flatten``,
``compile.usage_graph``, ``compile.triggering``, ``compile.aliasing``,
``compile.mutability``, ``compile.translation_order``,
``compile.codegen``, ``compile.cache_store``); the runner opens a
``run.batch`` span per batch.  Edge classification happens while the
usage graph is built, so its cost is reported under
``compile.usage_graph``.

When disabled (the default), ``span()`` returns a shared reusable
null context — one attribute check and no allocation per call site, so
the spans can stay in the hot compile path unconditionally.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Tuple

__all__ = ["TRACER", "Tracer"]


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("tracer", "name", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self.tracer = tracer
        self.name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.tracer._record(self.name, time.perf_counter() - self._start)


class Tracer:
    """Process-local span recorder with a no-op disabled path."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._spans: List[Tuple[str, float]] = []

    def span(self, name: str):
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def _record(self, name: str, seconds: float) -> None:
        with self._lock:
            self._spans.append((name, seconds))

    def spans(self) -> List[Tuple[str, float]]:
        with self._lock:
            return list(self._spans)

    def totals(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name ``{count, seconds}`` aggregate, insertion-ordered."""
        out: Dict[str, Dict[str, float]] = {}
        for name, seconds in self.spans():
            agg = out.get(name)
            if agg is None:
                out[name] = {"count": 1, "seconds": seconds}
            else:
                agg["count"] += 1
                agg["seconds"] += seconds
        return out

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


#: Process-wide tracer used by the compile pipeline and the runner.
TRACER = Tracer(enabled=False)
