"""Spec-level rewrite optimizer.

A static-analysis + rewrite subsystem over flattened specifications,
run *before* the aliasing/mutability analysis: hash-consed duplicate-
stream elimination, identity-lift elimination, lift fusion, constant-
clock folding, never-firing (``last``/``delay``) normalization and
dead-stream elimination — each rewrite certified to never demote a
mutable variable, ranked by the mutable share it unlocks, and recorded
as ``OPT00x`` provenance diagnostics.

Entry points: :func:`optimize_flat` (engine),
:data:`ALL_RULES` (the rule catalogue), :func:`project_live` (the
shared dead-stream projection that absorbed :mod:`repro.lang.prune`).

``RULESET_VERSION`` participates in the plan-cache fingerprint: bump it
whenever a rule's behaviour changes so cached plans built under the old
rule set can never be served for the new one.
"""

from .engine import OptimizationResult, optimize_flat
from .rewrite import (
    ALL_RULES,
    Candidate,
    FusedFunction,
    RewriteRecord,
    RewriteRule,
    project_live,
    unfold_fused,
)

#: Version of the rewrite-rule catalogue, included in plan-cache
#: fingerprints (see ``repro.compiler.plancache``).
RULESET_VERSION = 1

__all__ = [
    "ALL_RULES",
    "Candidate",
    "FusedFunction",
    "OptimizationResult",
    "RULESET_VERSION",
    "RewriteRecord",
    "RewriteRule",
    "optimize_flat",
    "project_live",
    "unfold_fused",
]
