"""Fixpoint rewrite engine with mutable-share certification.

:func:`optimize_flat` drives the rule catalogue of
:mod:`repro.opt.rewrite` to a fixpoint over a flattened specification.
Per iteration every rule proposes candidates; when the spec contains
aggregate streams the engine *certifies* each candidate by re-running
:func:`repro.analysis.mutability.analyze_mutability` on the rewritten
spec and rejecting any rewrite that would demote a currently-mutable
stream to a persistent backend.  Surviving candidates are ranked by the
certified mutable-share gain (then by catalogue order), so the rewrite
that most grows the mutable share is applied first.

Everything that happened — applied and rejected alike — is kept as
:class:`repro.opt.rewrite.RewriteRecord` provenance and surfaced as
``OPT00x`` diagnostics; per-rule fired counters land on the obs
registry (``opt.rules.<CODE>.fired``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.mutability import MutabilityResult, analyze_mutability
from ..lang.spec import FlatSpec
from ..obs.metrics import DEFAULT_REGISTRY, MetricsRegistry
from .rewrite import ALL_RULES, Candidate, RewriteRecord, RewriteRule

__all__ = ["OptimizationResult", "optimize_flat"]


def _has_aggregates(flat: FlatSpec) -> bool:
    if not flat.types:
        return False
    return any(t.is_complex for t in flat.types.values())


def _demotions(
    before: Set[str], after: Set[str], candidate: Candidate
) -> List[str]:
    """Streams mutable before the rewrite whose image is not mutable
    after it."""
    demoted = []
    for stream in before:
        target = candidate.renamed.get(stream, stream)
        if stream in candidate.removed and target == stream:
            continue  # removed outright (e.g. a dead family)
        if target not in after:
            demoted.append(stream)
    return sorted(demoted)


@dataclass
class OptimizationResult:
    """Outcome of one :func:`optimize_flat` run."""

    flat: FlatSpec
    records: List[RewriteRecord]
    fired: Dict[str, int]
    streams_before: int
    streams_after: int
    #: certified mutable-variable counts (``None`` when the spec has no
    #: aggregate streams, so no certification ran).
    mutable_before: Optional[int]
    mutable_after: Optional[int]
    #: the final :class:`MutabilityResult` (certify mode only) — the
    #: compiler pipeline reuses it instead of re-analyzing.
    analysis: Optional[MutabilityResult]
    #: original stream name → final stream name for every stream whose
    #: uses were redirected by an applied rewrite.
    renames: Dict[str, str] = field(default_factory=dict)
    #: every stream removed by an applied rewrite.
    removed: Tuple[str, ...] = ()

    @property
    def applied(self) -> List[RewriteRecord]:
        return [r for r in self.records if r.applied]

    @property
    def rejected(self) -> List[RewriteRecord]:
        return [r for r in self.records if not r.applied]

    def diagnostics(self) -> List["Diagnostic"]:
        """The provenance records as ``OPT00x`` diagnostics.

        Applied rewrites keep their rule code; certification rejections
        are surfaced as ``OPT007`` so a spec author can see which
        rewrites the mutable-share guard vetoed (and why).
        """
        from ..analysis.diagnostics import CATALOG, Diagnostic, Severity

        diags = []
        for record in self.records:
            code = record.code if record.applied else "OPT007"
            witness = {
                "rule": record.rule,
                "applied": record.applied,
                "detail": record.detail,
                "removed": list(record.removed),
                "renamed": dict(record.renamed),
            }
            if record.mutable_before is not None:
                witness["mutable_before"] = record.mutable_before
                witness["mutable_after"] = record.mutable_after
            message = record.description
            if not record.applied and record.reason:
                message = f"{record.description} — rejected: {record.reason}"
            diags.append(
                Diagnostic(
                    code=code,
                    severity=CATALOG.get(code, (code, Severity.NOTE))[1],
                    stream=record.stream,
                    message=message,
                    source="optimizer",
                    witness=witness,
                )
            )
        return sorted(diags, key=lambda d: (d.code, d.stream, d.message))

    def summary(self) -> Dict[str, object]:
        """JSON-safe summary (CLI ``--json`` and benchmarks)."""
        return {
            "streams_before": self.streams_before,
            "streams_after": self.streams_after,
            "mutable_before": self.mutable_before,
            "mutable_after": self.mutable_after,
            "applied": len(self.applied),
            "rejected": len(self.rejected),
            "fired": dict(self.fired),
            "renames": dict(self.renames),
            "removed": list(self.removed),
            "records": [r.to_dict() for r in self.records],
        }


def _gather(
    rules: Tuple[RewriteRule, ...],
    flat: FlatSpec,
    rejected_keys: Set[Tuple],
) -> List[Tuple[int, Candidate]]:
    out: List[Tuple[int, Candidate]] = []
    for index, rule in enumerate(rules):
        for candidate in rule.candidates(flat):
            if candidate.key in rejected_keys:
                continue
            out.append((index, candidate))
    return out


def optimize_flat(
    flat: FlatSpec,
    certify: bool = True,
    max_steps: Optional[int] = None,
    rules: Tuple[RewriteRule, ...] = ALL_RULES,
    metrics: Optional[MetricsRegistry] = None,
) -> OptimizationResult:
    """Rewrite *flat* to a fixpoint; never demote a mutable stream.

    ``certify=False`` skips the mutability re-analysis around every
    candidate (used when the caller compiles without the mutability
    optimization anyway — the rewrites are semantics-preserving either
    way, only the ranking signal is lost).
    """
    registry = DEFAULT_REGISTRY if metrics is None else metrics
    certify = certify and _has_aggregates(flat)
    analysis = analyze_mutability(flat) if certify else None
    mutable_before = len(analysis.mutable) if analysis else None
    streams_before = len(flat.definitions)

    records: List[RewriteRecord] = []
    fired: Counter = Counter()
    renames: Dict[str, str] = {}
    removed: List[str] = []
    rejected_keys: Set[Tuple] = set()

    if max_steps is None:
        max_steps = 32 + 4 * len(flat.definitions)

    for _ in range(max_steps):
        candidates = _gather(rules, flat, rejected_keys)
        if not candidates:
            break

        chosen: Optional[Tuple[int, Candidate, FlatSpec]] = None
        chosen_analysis: Optional[MutabilityResult] = None
        if certify:
            assert analysis is not None
            ranked = []
            for rule_index, candidate in candidates:
                try:
                    rewritten = candidate.apply(flat)
                    after = analyze_mutability(rewritten)
                except Exception as exc:  # defensive: a rule misfired
                    rejected_keys.add(candidate.key)
                    records.append(
                        RewriteRecord(
                            code=candidate.rule.code,
                            rule=candidate.rule.name,
                            stream=candidate.stream,
                            description=candidate.description,
                            applied=False,
                            detail=candidate.detail,
                            removed=candidate.removed,
                            renamed=candidate.renamed,
                            reason=f"rewrite failed to re-analyze: {exc!r}",
                        )
                    )
                    registry.inc("opt.rewrites.rejected")
                    continue
                demoted = _demotions(
                    analysis.mutable, after.mutable, candidate
                )
                if demoted:
                    rejected_keys.add(candidate.key)
                    records.append(
                        RewriteRecord(
                            code=candidate.rule.code,
                            rule=candidate.rule.name,
                            stream=candidate.stream,
                            description=candidate.description,
                            applied=False,
                            detail=candidate.detail,
                            removed=candidate.removed,
                            renamed=candidate.renamed,
                            mutable_before=len(analysis.mutable),
                            mutable_after=len(after.mutable),
                            reason=(
                                "would demote mutable stream(s)"
                                f" {demoted} to a persistent backend"
                            ),
                        )
                    )
                    registry.inc("opt.rewrites.rejected")
                    continue
                gain = len(after.mutable) - len(analysis.mutable)
                ranked.append(
                    (-gain, rule_index, candidate.key, candidate, rewritten, after)
                )
            if not ranked:
                break
            ranked.sort(key=lambda item: item[:3])
            _, rule_index, _, candidate, rewritten, after = ranked[0]
            chosen = (rule_index, candidate, rewritten)
            chosen_analysis = after
        else:
            rule_index, candidate = min(
                candidates, key=lambda item: (item[0], item[1].key)
            )
            try:
                rewritten = candidate.apply(flat)
            except Exception as exc:  # defensive: a rule misfired
                rejected_keys.add(candidate.key)
                records.append(
                    RewriteRecord(
                        code=candidate.rule.code,
                        rule=candidate.rule.name,
                        stream=candidate.stream,
                        description=candidate.description,
                        applied=False,
                        detail=candidate.detail,
                        removed=candidate.removed,
                        renamed=candidate.renamed,
                        reason=f"rewrite failed to apply: {exc!r}",
                    )
                )
                registry.inc("opt.rewrites.rejected")
                continue
            chosen = (rule_index, candidate, rewritten)

        _, candidate, flat = chosen
        records.append(
            RewriteRecord(
                code=candidate.rule.code,
                rule=candidate.rule.name,
                stream=candidate.stream,
                description=candidate.description,
                applied=True,
                detail=candidate.detail,
                removed=candidate.removed,
                renamed=candidate.renamed,
                mutable_before=(
                    len(analysis.mutable) if analysis is not None else None
                ),
                mutable_after=(
                    len(chosen_analysis.mutable)
                    if chosen_analysis is not None
                    else None
                ),
            )
        )
        fired[candidate.rule.code] += 1
        registry.inc("opt.rewrites.applied")
        registry.inc(f"opt.rules.{candidate.rule.code}.fired")
        if chosen_analysis is not None:
            analysis = chosen_analysis
        # compose the rename/removal maps through this application
        for source, target in candidate.renamed.items():
            final = renames.get(target, target)
            renames[source] = final
            for already, landed in list(renames.items()):
                if landed == source:
                    renames[already] = final
        removed.extend(candidate.removed)

    return OptimizationResult(
        flat=flat,
        records=records,
        fired=dict(fired),
        streams_before=streams_before,
        streams_after=len(flat.definitions),
        mutable_before=mutable_before,
        mutable_after=len(analysis.mutable) if analysis else None,
        analysis=analysis,
        renames=renames,
        removed=tuple(dict.fromkeys(removed)),
    )
