"""Local semantics-preserving rewrite rules over flat specifications.

Each rule is a small class with an applicability check
(:meth:`RewriteRule.candidates`) and a provenance record: every
proposed rewrite is a :class:`Candidate` naming the streams involved,
the substitution it performs and a JSON-safe detail payload; applied
(or rejected) candidates become :class:`RewriteRecord` entries and
``OPT00x`` diagnostics (see :mod:`repro.analysis.diagnostics`).

The rules (fixpoint-applied by :mod:`repro.opt.engine`):

``OPT001`` **duplicate-stream elimination** — hash-consed CSE.  Two
    defined streams with structurally identical defining equations
    carry identical event streams; all uses of the duplicates are
    redirected to one representative.  Signatures are interned through
    :class:`repro.analysis.formula.Atom`, so equality is object
    identity and repeated fixpoint iterations share the table.
    Aggregate *constructors* are never merged (sharing one construction
    site would alias object lineages, exactly what
    :func:`repro.lang.flatten._constructs_aggregate` protects against),
    and output streams are never removed.

``OPT002`` **identity-lift elimination** — ``merge(x, x)`` and
    ``merge`` with a provably empty (``nil``-defined) operand are
    identities; uses are redirected to the surviving operand.

``OPT003`` **lift-of-lift fusion** — a strict scalar lift feeding a
    single use inside another strict scalar lift is fused into one
    :class:`FusedFunction` equation (ALL∘ALL composition preserves the
    event clock), removing the intermediate stream.

``OPT004`` **constant-clock folding** — a lift whose arguments are all
    constants on the *same* unit clock fires exactly when that clock
    does, with a constant value: fold it to a single constant stream,
    evaluated at rewrite time.

``OPT005`` **dead-stream elimination** — streams no output
    (transitively) depends on are dropped.  This absorbs
    :mod:`repro.lang.prune`; :func:`project_live` is the shared
    non-deprecated implementation.

``OPT006`` **never-firing normalization** — the ``last``/``delay``
    normalization family: a stream the sound may-fire analysis proves
    to never produce an event (a ``last`` whose trigger is empty, a
    ``delay`` over an empty delay operand, a strict lift over an empty
    argument, ...) is replaced by ``nil``, which unlocks OPT002/OPT005
    upstream.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..analysis.formula import Atom
from ..lang.ast import Delay, Expr, Last, Lift, Nil, TimeExpr, UnitExpr, Var, free_vars
from ..lang.builtins import Access, EventPattern, LiftedFunction, const_fn
from ..lang.flatten import _constructs_aggregate
from ..lang.lint import may_fire_streams
from ..lang.prune import live_streams
from ..lang.spec import FlatSpec
from ..structures import Backend

__all__ = [
    "ALL_RULES",
    "Candidate",
    "FusedFunction",
    "RewriteRecord",
    "RewriteRule",
    "project_live",
]


# ---------------------------------------------------------------------------
# Provenance records
# ---------------------------------------------------------------------------


@dataclass
class RewriteRecord:
    """Provenance of one rewrite: what was proposed, and what happened.

    Every applied rewrite carries one of these; rejected candidates
    (the mutable-share certification vetoed them) are recorded too,
    with ``applied=False`` and a human-readable ``reason``.
    """

    code: str  # OPT00x
    rule: str  # slug, e.g. "duplicate-stream"
    stream: str  # primary affected stream
    description: str
    applied: bool
    detail: Dict[str, Any] = field(default_factory=dict)
    removed: Tuple[str, ...] = ()
    renamed: Dict[str, str] = field(default_factory=dict)
    #: certified mutable-variable counts around this rewrite (``None``
    #: when certification was off — no aggregate streams in the spec).
    mutable_before: Optional[int] = None
    mutable_after: Optional[int] = None
    reason: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "rule": self.rule,
            "stream": self.stream,
            "description": self.description,
            "applied": self.applied,
            "detail": self.detail,
            "removed": list(self.removed),
            "renamed": dict(self.renamed),
            "mutable_before": self.mutable_before,
            "mutable_after": self.mutable_after,
            "reason": self.reason,
        }


@dataclass
class Candidate:
    """One applicable rewrite, not yet applied."""

    rule: "RewriteRule"
    key: Tuple
    stream: str
    description: str
    renamed: Dict[str, str]
    removed: Tuple[str, ...]
    detail: Dict[str, Any]
    _apply: Callable[[FlatSpec], FlatSpec]

    def apply(self, flat: FlatSpec) -> FlatSpec:
        return self._apply(flat)


# ---------------------------------------------------------------------------
# Flat-spec surgery helpers
# ---------------------------------------------------------------------------


def _substitute(expr: Expr, rename: Dict[str, str]) -> Expr:
    """Rename stream references in one flat equation."""

    def sub(var: Expr) -> Var:
        assert isinstance(var, Var)
        return Var(rename.get(var.name, var.name))

    if isinstance(expr, TimeExpr):
        return TimeExpr(sub(expr.operand))
    if isinstance(expr, Lift):
        return Lift(expr.func, tuple(sub(a) for a in expr.args))
    if isinstance(expr, Last):
        return Last(sub(expr.value), sub(expr.trigger))
    if isinstance(expr, Delay):
        return Delay(sub(expr.delay), sub(expr.reset))
    return expr  # Nil / UnitExpr have no stream references


def _rebuild(
    flat: FlatSpec,
    definitions: Dict[str, Expr],
    rename: Optional[Dict[str, str]] = None,
    extra_types: Optional[Dict[str, Any]] = None,
) -> FlatSpec:
    """A new :class:`FlatSpec` from *definitions*, carrying types over.

    *rename* is applied to every remaining equation's references;
    streams absent from *definitions* are dropped from the synthetic
    set, the annotations and the carried types.
    """
    rename = rename or {}
    defs = {
        name: _substitute(expr, rename) for name, expr in definitions.items()
    }
    keep = set(defs)
    rebuilt = FlatSpec(
        flat.inputs,
        defs,
        flat.outputs,
        synthetic=[n for n in flat.synthetic if n in keep],
        type_annotations={
            n: a for n, a in flat.type_annotations.items() if n in keep
        },
    )
    if flat.types:
        rebuilt.types = {
            n: t
            for n, t in flat.types.items()
            if n in keep or n in flat.inputs
        }
        if extra_types:
            rebuilt.types.update(extra_types)
    rebuilt.window_info = getattr(flat, "window_info", None)
    return rebuilt


def project_live(flat: FlatSpec) -> FlatSpec:
    """Restrict *flat* to output-reachable streams (same object when
    nothing is dead).

    The shared dead-stream projection: the optimizer's OPT005 rule and
    the deprecated :func:`repro.lang.prune.prune` both delegate here.
    Input streams stay in the interface even when dead.
    """
    live = live_streams(flat)
    definitions = {
        name: expr
        for name, expr in flat.definitions.items()
        if name in live
    }
    if len(definitions) == len(flat.definitions):
        return flat
    return _rebuild(flat, definitions)


def _use_counts(flat: FlatSpec) -> Counter:
    counts: Counter = Counter()
    for expr in flat.definitions.values():
        counts.update(free_vars(expr))
    counts.update(flat.outputs)
    return counts


def _is_const_lift(expr: Expr) -> bool:
    return (
        isinstance(expr, Lift)
        and expr.func.name.startswith("const(")
        and len(expr.args) == 1
    )


def _const_value(expr: Lift) -> Any:
    """Evaluate a ``const(...)`` lift's value (the impl ignores its
    argument and the backend)."""
    return expr.func.bind(Backend.PERSISTENT)(())


# ---------------------------------------------------------------------------
# Fused lifted functions (OPT003)
# ---------------------------------------------------------------------------


def _fused_impl(outer_impl, inner_impl, index: int, inner_arity: int):
    def fused(*args):
        inner_value = inner_impl(*args[index : index + inner_arity])
        return outer_impl(
            *args[:index], inner_value, *args[index + inner_arity :]
        )

    return fused


class FusedFunction(LiftedFunction):
    """The composition of two strict scalar lifts in one equation.

    ``outer`` applied with its *index*-th argument produced by
    ``inner``; the fused lift's arguments are the outer arguments with
    the fused slot spliced out and the inner arguments spliced in.
    Monomorphic (types are taken from the concrete streams at fusion
    time) so type checking needs no fresh variables.  Not a registry
    builtin — the printer unfolds it back into nested applications, and
    the text-keyed plan-cache recipe path skips specs containing one.
    """

    __slots__ = ("outer", "inner", "index")

    def __init__(
        self,
        outer: LiftedFunction,
        inner: LiftedFunction,
        index: int,
        arg_types,
        result_type,
    ) -> None:
        def make_impl(backend, _o=outer, _i=inner, _x=index):
            return _fused_impl(
                _o.bind(backend), _i.bind(backend), _x, _i.arity
            )

        super().__init__(
            f"fused[{outer.name}@{index}<-{inner.name}]",
            EventPattern.ALL,
            tuple(Access.NONE for _ in arg_types),
            tuple(arg_types),
            result_type,
            make_impl,
        )
        self.outer = outer
        self.inner = inner
        self.index = index


def unfold_fused(expr: Expr) -> Expr:
    """Rewrite fused lifts back into nested plain applications.

    Used by the printer to re-emit rewritten specifications in the
    concrete syntax (fused functions have no surface form).
    """
    if not isinstance(expr, Lift):
        return expr
    args = tuple(unfold_fused(a) for a in expr.args)
    func = expr.func
    if isinstance(func, FusedFunction):
        inner_args = args[func.index : func.index + func.inner.arity]
        nested = (
            args[: func.index]
            + (Lift(func.inner, inner_args),)
            + args[func.index + func.inner.arity :]
        )
        return unfold_fused(Lift(func.outer, nested))
    return Lift(func, args)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


class RewriteRule:
    """Base class: an applicability check producing candidates."""

    code: str = "OPT000"
    name: str = "abstract"

    def candidates(self, flat: FlatSpec) -> List[Candidate]:
        raise NotImplementedError


def _signature(expr: Expr) -> Atom:
    """The hash-consed signature of one flat equation.

    Flat equations only reference streams by name, so their ``str``
    form is a complete structural description; interning it as a
    formula :class:`Atom` makes signature comparison object identity
    and shares the table across fixpoint iterations and analyses.
    """
    return Atom(f"optsig:{expr}")


class DuplicateStreamRule(RewriteRule):
    """OPT001: merge streams with structurally identical equations."""

    code = "OPT001"
    name = "duplicate-stream"

    def candidates(self, flat: FlatSpec) -> List[Candidate]:
        groups: Dict[Atom, List[str]] = {}
        for name, expr in flat.definitions.items():
            if _constructs_aggregate(expr):
                continue
            groups.setdefault(_signature(expr), []).append(name)
        outputs = set(flat.outputs)
        out: List[Candidate] = []
        for members in groups.values():
            if len(members) < 2:
                continue
            keep = min(
                members,
                key=lambda n: (n not in outputs, n in flat.synthetic, n),
            )
            removable = sorted(
                m for m in members if m != keep and m not in outputs
            )
            if not removable:
                continue
            renamed = {m: keep for m in removable}

            def apply(
                current: FlatSpec,
                _drop=tuple(removable),
                _renamed=dict(renamed),
            ) -> FlatSpec:
                definitions = {
                    n: e
                    for n, e in current.definitions.items()
                    if n not in _drop
                }
                return _rebuild(current, definitions, rename=_renamed)

            out.append(
                Candidate(
                    rule=self,
                    key=(self.code, keep, tuple(removable)),
                    stream=keep,
                    description=(
                        f"streams {removable} duplicate {keep!r}"
                        f" ({flat.definitions[keep]}); uses redirected"
                    ),
                    renamed=renamed,
                    removed=tuple(removable),
                    detail={
                        "representative": keep,
                        "equation": str(flat.definitions[keep]),
                    },
                    _apply=apply,
                )
            )
        out.sort(key=lambda c: c.key)
        return out


class IdentityLiftRule(RewriteRule):
    """OPT002: ``merge(x, x)`` / ``merge`` with an empty operand."""

    code = "OPT002"
    name = "identity-lift"

    def candidates(self, flat: FlatSpec) -> List[Candidate]:
        outputs = set(flat.outputs)
        out: List[Candidate] = []
        for name, expr in sorted(flat.definitions.items()):
            if name in outputs:
                continue
            if not (
                isinstance(expr, Lift)
                and expr.func.name == "merge"
                and len(expr.args) == 2
            ):
                continue
            left, right = expr.args[0].name, expr.args[1].name
            target = None
            why = ""
            if left == right:
                target, why = left, "both operands are the same stream"
            elif isinstance(flat.definitions.get(right), Nil):
                target, why = left, f"right operand {right!r} is nil"
            elif isinstance(flat.definitions.get(left), Nil):
                target, why = right, f"left operand {left!r} is nil"
            if target is None or target == name:
                continue

            def apply(
                current: FlatSpec, _name=name, _target=target
            ) -> FlatSpec:
                definitions = {
                    n: e
                    for n, e in current.definitions.items()
                    if n != _name
                }
                return _rebuild(
                    current, definitions, rename={_name: _target}
                )

            out.append(
                Candidate(
                    rule=self,
                    key=(self.code, name),
                    stream=name,
                    description=(
                        f"merge {name!r} is an identity ({why}); uses"
                        f" redirected to {target!r}"
                    ),
                    renamed={name: target},
                    removed=(name,),
                    detail={"target": target, "why": why},
                    _apply=apply,
                )
            )
        return out


class NeverFiresRule(RewriteRule):
    """OPT006: normalize provably event-free streams to ``nil``."""

    code = "OPT006"
    name = "never-fires-nil"

    def candidates(self, flat: FlatSpec) -> List[Candidate]:
        if not flat.types:
            return []
        may_fire = may_fire_streams(flat)
        out: List[Candidate] = []
        for name, expr in sorted(flat.definitions.items()):
            if name in may_fire or isinstance(expr, Nil):
                continue
            stream_type = flat.types.get(name)
            if stream_type is None:
                continue

            def apply(
                current: FlatSpec, _name=name, _type=stream_type
            ) -> FlatSpec:
                definitions = dict(current.definitions)
                definitions[_name] = Nil(_type)
                return _rebuild(current, definitions)

            out.append(
                Candidate(
                    rule=self,
                    key=(self.code, name),
                    stream=name,
                    description=(
                        f"{name!r} provably never fires; normalized"
                        f" from {expr} to nil[{stream_type}]"
                    ),
                    renamed={},
                    removed=(),
                    detail={"was": str(expr), "type": str(stream_type)},
                    _apply=apply,
                )
            )
        return out


class ConstFoldRule(RewriteRule):
    """OPT004: fold lifts over same-clock constants into one constant."""

    code = "OPT004"
    name = "constant-clock-fold"

    def candidates(self, flat: FlatSpec) -> List[Candidate]:
        if not flat.types:
            return []
        out: List[Candidate] = []
        for name, expr in sorted(flat.definitions.items()):
            if not isinstance(expr, Lift) or not expr.args:
                continue
            func = expr.func
            if func.name.startswith("const("):
                continue
            if func.pattern not in (EventPattern.ALL, EventPattern.ANY):
                continue
            result_type = flat.types.get(name)
            if result_type is None or result_type.is_complex:
                continue
            arg_stream_types = [flat.types.get(a.name) for a in expr.args]
            if any(t is None or t.is_complex for t in arg_stream_types):
                continue
            arg_defs = [flat.definitions.get(a.name) for a in expr.args]
            if not all(d is not None and _is_const_lift(d) for d in arg_defs):
                continue
            clocks = {d.args[0].name for d in arg_defs}  # type: ignore[union-attr]
            if len(clocks) != 1:
                continue
            clock = clocks.pop()
            try:
                values = [_const_value(d) for d in arg_defs]  # type: ignore[arg-type]
                folded = func.bind(Backend.PERSISTENT)(*values)
            except Exception:
                continue
            if folded is None:
                continue

            def apply(
                current: FlatSpec,
                _name=name,
                _value=folded,
                _type=result_type,
                _clock=clock,
            ) -> FlatSpec:
                definitions = dict(current.definitions)
                definitions[_name] = Lift(
                    const_fn(_value, _type), (Var(_clock),)
                )
                return _rebuild(current, definitions)

            out.append(
                Candidate(
                    rule=self,
                    key=(self.code, name),
                    stream=name,
                    description=(
                        f"{func.name}({', '.join(repr(v) for v in values)})"
                        f" over the shared clock {clock!r} folds to"
                        f" constant {folded!r}"
                    ),
                    renamed={},
                    removed=(),
                    detail={
                        "function": func.name,
                        "value": repr(folded),
                        "clock": clock,
                    },
                    _apply=apply,
                )
            )
        return out


class LiftFusionRule(RewriteRule):
    """OPT003: fuse a single-use strict scalar lift into its consumer."""

    code = "OPT003"
    name = "lift-fusion"

    @staticmethod
    def _fusible(func: LiftedFunction) -> bool:
        return (
            func.pattern is EventPattern.ALL
            and not func.name.startswith("const(")
            and all(a is Access.NONE for a in func.access)
            and not func.result_type.is_complex
            and not any(t.is_complex for t in func.arg_types)
        )

    def candidates(self, flat: FlatSpec) -> List[Candidate]:
        if not flat.types:
            return []
        uses = _use_counts(flat)
        outputs = set(flat.outputs)
        out: List[Candidate] = []
        for name, expr in sorted(flat.definitions.items()):
            if not isinstance(expr, Lift) or not self._fusible(expr.func):
                continue
            if flat.types.get(name) is None or flat.types[name].is_complex:
                continue
            for index, arg in enumerate(expr.args):
                inner_name = arg.name
                if inner_name in outputs or uses[inner_name] != 1:
                    continue
                inner = flat.definitions.get(inner_name)
                if (
                    not isinstance(inner, Lift)
                    or not inner.args
                    or not self._fusible(inner.func)
                ):
                    continue
                arg_types = [
                    flat.types.get(a.name)
                    for a in (*expr.args, *inner.args)
                ]
                if any(t is None or t.is_complex for t in arg_types):
                    continue

                def apply(
                    current: FlatSpec,
                    _name=name,
                    _inner_name=inner_name,
                    _index=index,
                ) -> FlatSpec:
                    outer_expr = current.definitions[_name]
                    inner_expr = current.definitions[_inner_name]
                    assert isinstance(outer_expr, Lift)
                    assert isinstance(inner_expr, Lift)
                    new_args = (
                        outer_expr.args[:_index]
                        + inner_expr.args
                        + outer_expr.args[_index + 1 :]
                    )
                    arg_types = tuple(
                        current.types[a.name] for a in new_args
                    )
                    fused = FusedFunction(
                        outer_expr.func,
                        inner_expr.func,
                        _index,
                        arg_types,
                        current.types[_name],
                    )
                    definitions = {
                        n: e
                        for n, e in current.definitions.items()
                        if n != _inner_name
                    }
                    definitions[_name] = Lift(fused, new_args)
                    return _rebuild(current, definitions)

                out.append(
                    Candidate(
                        rule=self,
                        key=(self.code, name, inner_name),
                        stream=name,
                        description=(
                            f"single-use lift {inner_name!r}"
                            f" ({inner.func.name}) fused into argument"
                            f" {index} of {name!r} ({expr.func.name})"
                        ),
                        renamed={},
                        removed=(inner_name,),
                        detail={
                            "outer": expr.func.name,
                            "inner": inner.func.name,
                            "index": index,
                        },
                        _apply=apply,
                    )
                )
                break  # one fusion per consumer per round
        return out


class DeadStreamRule(RewriteRule):
    """OPT005: drop streams no output transitively depends on."""

    code = "OPT005"
    name = "dead-stream"

    def candidates(self, flat: FlatSpec) -> List[Candidate]:
        live = live_streams(flat)
        dead = sorted(n for n in flat.definitions if n not in live)
        if not dead:
            return []

        def apply(current: FlatSpec) -> FlatSpec:
            return project_live(current)

        return [
            Candidate(
                rule=self,
                key=(self.code, tuple(dead)),
                stream=dead[0],
                description=(
                    f"no output depends on {dead}; removed"
                ),
                renamed={},
                removed=tuple(dead),
                detail={"streams": dead},
                _apply=apply,
            )
        ]


#: Fixed rule order: structural dedup and identity collapse first (they
#: unlock each other), then normalizations, then fusion, with the dead
#: sweep last to collect what the earlier rules orphaned.
ALL_RULES: Tuple[RewriteRule, ...] = (
    DuplicateStreamRule(),
    IdentityLiftRule(),
    NeverFiresRule(),
    ConstFoldRule(),
    LiftFusionRule(),
    DeadStreamRule(),
)
