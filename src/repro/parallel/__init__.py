"""Parallel execution subsystem.

Two orthogonal axes of parallelism, both justified by the paper's
static analysis:

* **Intra-spec partition parallelism**
  (:mod:`repro.parallel.partition`, :mod:`repro.parallel.partitioned`)
  — the mutability/aliasing analysis (§IV-B, Defs. 4-6) tells us
  exactly which streams may carry the same data structure at the same
  timestamp.  Unioning the usage graph's dependency components with
  the potential-alias classes yields *alias-closed, shared-nothing
  partitions*: sub-specifications that never exchange an aggregate
  reference and can therefore execute concurrently without violating
  the in-place-update guarantee.  :class:`PartitionedRunner` compiles
  each partition to its own monitor and drives them per timestamp
  batch with a barrier at batch boundaries, merging outputs back into
  the exact emission order of the single-process monitor.

* **Multi-trace data parallelism** (:mod:`repro.parallel.pool`,
  :mod:`repro.parallel.supervisor`) — one compiled specification over
  many independent traces/sessions across a *supervised* worker pool.
  The process backend forks workers warm-started from the on-disk plan
  cache (only the spec text and fingerprint-keyed cache files cross
  the process boundary) and oversees them with per-trace leases:
  heartbeats, deadlines, death/hang detection, automatic restarts,
  capped-exponential-backoff re-dispatch (:class:`RetryPolicy`) and
  poison-trace quarantine (:class:`FaultPlan` injects the whole
  failure matrix deterministically for tests).  In-flight batches are
  bounded (backpressure), results are collected exactly once in
  submission order, and exhausted traces degrade per the compiled
  spec's :class:`~repro.errors.ErrorPolicy`.

Both axes are reachable from :mod:`repro.api`
(``RunOptions(partition="auto", jobs=N)`` and :func:`repro.api.run_many`)
and from the CLI (``--partition auto --jobs N``).  See
``docs/parallel.md`` for the partitioning model and the safety
argument.
"""

from .partition import (
    Partition,
    PartitionError,
    PartitionPlan,
    partition_flatspec,
    partition_spec,
)
from .partitioned import PartitionedRunner
from .pool import MonitorPool, PoolError, PoolResult, TraceResult
from .shm import ArenaDescriptor, TraceArena
from .supervisor import (
    AttemptRecord,
    FaultPlan,
    PoisonTraceError,
    RetryPolicy,
    Supervisor,
    SupervisorStats,
)

__all__ = [
    "ArenaDescriptor",
    "AttemptRecord",
    "FaultPlan",
    "Partition",
    "PartitionError",
    "PartitionPlan",
    "PartitionedRunner",
    "MonitorPool",
    "PoisonTraceError",
    "PoolError",
    "PoolResult",
    "RetryPolicy",
    "Supervisor",
    "SupervisorStats",
    "TraceArena",
    "TraceResult",
    "partition_flatspec",
    "partition_spec",
]
