"""Alias-closed specification partitioning.

A partition is a set of defined streams that can be compiled and
executed as an independent sub-specification.  Two constraints shape
the partitions:

* **Dependency closure** — every stream a definition references must
  be available: either an input stream (input events are broadcast to
  every partition that declares them) or another member of the same
  partition.  Unioning the endpoints of every usage-graph edge between
  defined streams makes each partition a union of weakly-connected
  components of the derived-stream subgraph.

* **Alias closure** — two streams that *potentially alias* (paper
  §IV-B, Def. 6: they may carry the same data structure at the same
  timestamp) must land in the same partition, otherwise two partitions
  could hold live references into one aggregate and an in-place update
  in one would be observable in the other.  The potential-alias
  classes from :class:`~repro.analysis.aliasing.AliasAnalysis` are
  unioned in; additionally, all consumers of a *complex-typed input
  stream* are unioned (the input value object itself would be shared).

Dependency edges already connect any two streams with a common P/L
ancestor, so alias closure is implied by dependency closure for
derived streams — the explicit union is a belt-and-braces guarantee
(and the property the determinism tests assert directly).

One refinement keeps unrelated families separate: a **replicable**
stream — scalar-typed, not an output, depending (transitively) only on
scalar inputs and other replicable streams — is *copied* into every
partition that needs it instead of gluing its consumers together.
Scalar values are copied on every read anyway (there is no aggregate
to alias, which is the only sharing hazard the paper's analysis
guards), and the scalar subgraph is deterministic, so each replica
computes the identical event sequence the single monitor would.
Without this, the synthetic ``unit`` clock every family touches would
collapse any composed specification into one partition.

Everything here is deterministic: partitions and their members are
ordered by first appearance in the specification's definition order,
never by hash-dependent set iteration, so the same spec yields the
same plan under any ``PYTHONHASHSEED``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.aliasing import AliasAnalysis
from ..analysis.unionfind import UnionFind
from ..graph.usage_graph import UsageGraph, build_usage_graph
from ..lang.ast import free_vars
from ..lang.spec import FlatSpec
from ..lang.typecheck import check_types


class PartitionError(Exception):
    """Raised when a specification cannot be partitioned."""


@dataclass(frozen=True)
class Partition:
    """One alias-closed, shared-nothing slice of a specification."""

    #: Position in the plan (0-based, ordered by first member).
    index: int
    #: Defined streams of this partition, in definition order.
    streams: Tuple[str, ...]
    #: Input streams referenced, in declaration order.
    inputs: Tuple[str, ...]
    #: Output streams owned, in the original output order.
    outputs: Tuple[str, ...]

    def as_dict(self) -> Dict[str, list]:
        return {
            "streams": list(self.streams),
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
        }


@dataclass(frozen=True)
class PartitionPlan:
    """The full partitioning of one specification."""

    partitions: Tuple[Partition, ...]
    #: input stream → indices of the partitions consuming it.
    input_routes: Dict[str, Tuple[int, ...]]
    #: Potential-alias classes (size ≥ 2) among complex streams, for
    #: introspection and the never-split-a-class property tests.
    alias_classes: Tuple[Tuple[str, ...], ...]
    #: Scalar streams copied into more than one partition (each copy
    #: recomputes the identical values; none of them is an output).
    replicated: Tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.partitions)

    @property
    def parallelizable(self) -> bool:
        """More than one partition — concurrency can help."""
        return len(self.partitions) > 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "partitions": [p.as_dict() for p in self.partitions],
            "input_routes": {
                name: list(ids) for name, ids in self.input_routes.items()
            },
            "alias_classes": [list(c) for c in self.alias_classes],
            "replicated": list(self.replicated),
        }


def _alias_classes(
    graph: UsageGraph, alias: AliasAnalysis
) -> List[List[str]]:
    """Potential-alias classes among complex derived streams.

    Pairs are enumerated in definition order (never set order) and the
    transitive closure is taken through a union-find, so class
    membership and ordering are hash-seed independent.
    """
    complex_nodes = [
        name
        for name in graph.flat.definitions
        if graph.flat.types[name].is_complex
    ]
    uf = UnionFind(complex_nodes)
    for i, u in enumerate(complex_nodes):
        for v in complex_nodes[i + 1 :]:
            if alias.potential_alias(u, v):
                uf.union(u, v)
    by_root: Dict[str, List[str]] = {}
    for name in complex_nodes:
        by_root.setdefault(uf.find(name), []).append(name)
    return [members for members in by_root.values() if len(members) > 1]


def _replicable_streams(flat: FlatSpec) -> "frozenset":
    """Scalar streams safe to copy into every consuming partition.

    A stream is replicable when it is not an output, its type is
    scalar, and every stream it references is a scalar input or itself
    replicable — i.e. no aggregate anywhere in its dependency cone.
    Computed as a demotion fixpoint so recursive definitions (``last``
    cycles) are handled without a topological order.
    """
    outputs = set(flat.outputs)
    defined = flat.definitions
    complex_inputs = {
        name
        for name, input_type in flat.inputs.items()
        if input_type.is_complex
    }
    replicable = {
        name
        for name in defined
        if name not in outputs and not flat.types[name].is_complex
    }
    changed = True
    while changed:
        changed = False
        for name in list(replicable):
            for dep in free_vars(defined[name]):
                if dep in complex_inputs or (
                    dep in defined and dep not in replicable
                ):
                    replicable.discard(name)
                    changed = True
                    break
    return frozenset(replicable)


def partition_spec(
    flat: FlatSpec,
    *,
    graph: Optional[UsageGraph] = None,
    alias: Optional[AliasAnalysis] = None,
) -> PartitionPlan:
    """Partition *flat* into alias-closed, shared-nothing slices.

    The returned plan is deterministic (see module docstring).  A plan
    of length 1 means the specification is one dependency/alias
    component — callers should fall back to the sequential engine.
    """
    if not flat.types:
        check_types(flat)
    if graph is None:
        graph = build_usage_graph(flat)
    if alias is None:
        alias = AliasAnalysis(graph)

    defined = flat.definitions
    replicable = _replicable_streams(flat)
    uf = UnionFind(defined)

    # Dependency closure: every edge whose source is an *anchored*
    # derived stream.  Edges out of replicable streams do not glue
    # their consumers together — the replica travels with the
    # consumer.  (A replicable stream never depends on an anchored
    # one, so no anchored→replicable edge exists.)
    for edge in graph.edges:
        if edge.src in defined and edge.src not in replicable:
            uf.union(edge.src, edge.dst)

    # Complex inputs: the input value object is shared by reference
    # among all consumers — they must co-locate.
    for name, input_type in flat.inputs.items():
        if not input_type.is_complex:
            continue
        consumers = [e.dst for e in graph.out_edges(name)]
        for other in consumers[1:]:
            uf.union(consumers[0], other)

    # Alias closure (implied by the above, asserted explicitly).
    alias_classes = _alias_classes(graph, alias)
    for members in alias_classes:
        for other in members[1:]:
            uf.union(members[0], other)

    # An output that is itself an input stream has no defining
    # partition; emitting it from one arbitrary partition would be
    # possible but fragile — declare the spec unpartitionable instead.
    passthrough = [name for name in flat.outputs if name in flat.inputs]
    if passthrough:
        members = tuple(defined)
        single = Partition(
            index=0,
            streams=members,
            inputs=tuple(flat.inputs),
            outputs=tuple(flat.outputs),
        )
        return PartitionPlan(
            partitions=(single,),
            input_routes={name: (0,) for name in flat.inputs},
            alias_classes=tuple(tuple(c) for c in alias_classes),
        )

    # Group anchored streams by root, ordered by first appearance.
    groups: Dict[str, List[str]] = {}
    for name in defined:  # definition order: deterministic
        if name not in replicable:
            groups.setdefault(uf.find(name), []).append(name)

    # A replicable stream nobody anchored needs is dead weight the
    # dead-code pruner may or may not have removed; it joins no group.
    replica_use: Dict[str, List[int]] = {}

    partitions: List[Partition] = []
    routes: Dict[str, List[int]] = {}
    for index, anchored in enumerate(groups.values()):
        # Pull in the replicable closure: every scalar-prefix stream
        # any member (anchored or already-replicated) references.
        member_set = set(anchored)
        frontier = list(anchored)
        while frontier:
            name = frontier.pop()
            for dep in free_vars(defined[name]):
                if dep in replicable and dep not in member_set:
                    member_set.add(dep)
                    frontier.append(dep)
        members = [name for name in defined if name in member_set]
        for name in members:
            if name in replicable:
                replica_use.setdefault(name, []).append(index)
        used_inputs = []
        for input_name in flat.inputs:  # declaration order
            for member in members:
                if input_name in free_vars(defined[member]):
                    used_inputs.append(input_name)
                    break
        outputs = tuple(o for o in flat.outputs if o in member_set)
        partitions.append(
            Partition(
                index=index,
                streams=tuple(members),
                inputs=tuple(used_inputs),
                outputs=outputs,
            )
        )
        for input_name in used_inputs:
            routes.setdefault(input_name, []).append(index)

    replicated = tuple(
        name
        for name in defined
        if len(replica_use.get(name, ())) > 1
    )
    return PartitionPlan(
        partitions=tuple(partitions),
        input_routes={name: tuple(ids) for name, ids in routes.items()},
        alias_classes=tuple(tuple(c) for c in alias_classes),
        replicated=replicated,
    )


def partition_flatspec(flat: FlatSpec, partition: Partition) -> FlatSpec:
    """The sub-specification for one partition of *flat*.

    Types are copied from the parent (the subset of a valid typing is
    valid), so compiling the sub-spec never re-runs type inference.
    """
    member_set = frozenset(partition.streams)
    sub = FlatSpec(
        inputs={name: flat.inputs[name] for name in partition.inputs},
        definitions={
            name: flat.definitions[name] for name in partition.streams
        },
        outputs=list(partition.outputs),
        synthetic=[s for s in partition.streams if s in flat.synthetic],
        type_annotations={
            name: annotation
            for name, annotation in flat.type_annotations.items()
            if name in member_set
        },
    )
    if flat.types:
        sub.types = {
            name: flat.types[name]
            for name in list(partition.inputs) + list(partition.streams)
        }
    else:  # pragma: no cover - partition_spec always type-checks first
        check_types(sub)
    return sub
