"""Partition-parallel execution of one specification.

:class:`PartitionedRunner` compiles each partition of a
:class:`~repro.parallel.partition.PartitionPlan` to its own monitor
(reusing the compile options — and therefore the plan cache — of the
full-spec compilation) and drives all of them over one event stream:

* events are consumed in timestamp-aligned batches (one timestamp
  never spans two batches, see
  :func:`~repro.semantics.traceio.batch_events`);
* each batch is split per partition by input routing and fed to the
  partition monitors — concurrently when ``jobs > 1`` — followed by an
  ``advance`` to the batch's last timestamp, so every partition has
  processed exactly the timestamps strictly before it (including its
  own ``delay`` wake-ups), multi-clocked ordering intact;
* a **barrier** at the batch boundary collects each partition's
  buffered outputs — all of which are strictly before the last
  timestamp — and merges them into the single-process emission order:
  ascending timestamp, then the position of the stream in the full
  specification's output declaration order (generated monitors emit
  all outputs at the end of a timestamp in exactly that order).

The merged output sequence is byte-identical to the single-process
per-event path; the differential tests in ``tests/parallel`` assert
exactly that on every paper-figure spec and on generated multi-family
specifications.

Partition concurrency uses threads.  Partitions are shared-nothing by
construction (no aggregate crosses a partition boundary: that is what
alias closure guarantees), so this is safe; on CPython today the GIL
serializes the pure-Python portions, so the win is bounded — the
design is ready for free-threaded builds, and the *multi-trace*
process pool (:mod:`repro.parallel.pool`) is the axis that scales on
stock CPython.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..compiler.monitor import MonitorError, freeze
from ..compiler.runtime import RunReport, validate_value
from ..errors import ErrorPolicy, ErrorValue
from ..semantics.traceio import batch_events
from .partition import PartitionPlan, partition_flatspec, partition_spec

#: Default batch size when the caller did not pick one.
DEFAULT_BATCH_SIZE = 4096


class _PartitionSlot:
    """One partition's monitor plus its private output buffer.

    Each slot owns a private :class:`RunReport` for the generated
    code's error counters — partition monitors may run on different
    threads, and ``+=`` on a shared report is not atomic.  The private
    reports are folded into the runner's aggregate at :meth:`finish`.
    """

    __slots__ = ("index", "compiled", "monitor", "buffer", "inputs", "report")

    def __init__(self, index, compiled, order_index, inputs) -> None:
        self.index = index
        self.compiled = compiled
        self.buffer: List[Tuple[int, int, str, Any]] = []
        self.inputs = frozenset(inputs)
        self.report = RunReport()

        buffer = self.buffer

        def emit(name: str, ts: int, value: Any, _oi=order_index) -> None:
            buffer.append((ts, _oi[name], name, value))

        self.monitor = compiled.new_monitor(emit)
        self.monitor._report = self.report


class PartitionedRunner:
    """Drives the partitions of one compiled specification.

    Parameters
    ----------
    compiled:
        The full-spec :class:`~repro.compiler.pipeline.CompiledSpec`
        (its output declaration order defines the merged emission
        order within a timestamp).
    compile_kwargs:
        Keyword arguments for compiling each partition — normally the
        same options the full spec was compiled with (same engine,
        error policy, plan cache, …).
    plan:
        A pre-computed :class:`PartitionPlan`; computed here otherwise.
    jobs:
        Thread count for per-batch partition execution (1 = inline).
    """

    def __init__(
        self,
        compiled: Any,
        on_output: Optional[Callable[[str, int, Any], None]] = None,
        *,
        compile_kwargs: Optional[Dict[str, Any]] = None,
        plan: Optional[PartitionPlan] = None,
        jobs: int = 1,
        validate_inputs: bool = False,
        report: Optional[RunReport] = None,
    ) -> None:
        from ..compiler.pipeline import build_compiled_spec

        flat = compiled.flat
        if plan is None:
            plan = partition_spec(flat)
        self.plan = plan
        self.compiled = compiled
        self.report = report if report is not None else RunReport()
        self.report.plan_cache_hit = getattr(
            compiled, "plan_cache_hit", None
        )
        self.validate_inputs = validate_inputs
        self.policy: Optional[ErrorPolicy] = getattr(
            compiled, "error_policy", None
        )
        self._types: Dict[str, Any] = dict(
            getattr(flat, "types", None) or {}
        )
        self._on_output = on_output or (lambda name, ts, value: None)
        self._declared_inputs = frozenset(flat.inputs)
        self._last_ts: int = -1
        self._finished = False

        # Emission order within one timestamp: the full specification's
        # output declaration order — generated ``_calc`` bodies emit
        # all outputs at the end of the timestamp in that order.
        order_index = {
            name: position
            for position, name in enumerate(flat.outputs)
        }

        kwargs = dict(compile_kwargs or {})
        self._slots: List[_PartitionSlot] = []
        for part in plan.partitions:
            sub = partition_flatspec(flat, part)
            sub_compiled = build_compiled_spec(sub, **kwargs)
            slot = _PartitionSlot(
                part.index, sub_compiled, order_index, part.inputs
            )
            self._slots.append(slot)

        self._routes: Dict[str, Tuple[int, ...]] = dict(plan.input_routes)
        self._executor = None
        self.jobs = max(1, int(jobs))
        if self.jobs > 1 and len(self._slots) > 1:
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(
                max_workers=min(self.jobs, len(self._slots)),
                thread_name_prefix="repro-partition",
            )

    # -- input path ------------------------------------------------------

    def _validated(
        self, events: List[Tuple[int, str, Any]]
    ) -> List[Tuple[int, str, Any]]:
        """The batch validation pre-pass, mirroring MonitorRunner."""
        kept: List[Tuple[int, str, Any]] = []
        for ts, name, value in events:
            expected = self._types.get(name)
            if not validate_value(value, expected):
                self.report.invalid_inputs += 1
                policy = self.policy or ErrorPolicy.FAIL_FAST
                if policy is ErrorPolicy.FAIL_FAST:
                    raise MonitorError(
                        f"invalid value {value!r} for input {name!r} at"
                        f" t={ts}: expected {expected}"
                    )
                if policy is ErrorPolicy.SUBSTITUTE_DEFAULT:
                    continue
                value = ErrorValue(
                    f"invalid input value {value!r}: expected {expected}",
                    origin=name,
                    ts=ts,
                )
            kept.append((ts, name, value))
        return kept

    def feed_batch(self, events: Iterable[Tuple[int, str, Any]]) -> int:
        """Feed one timestamp-sorted batch through every partition.

        Returns the number of events consumed.  Outputs for timestamps
        strictly before the batch's last timestamp are merged and
        emitted at the barrier.
        """
        if self._finished:
            raise MonitorError("feed_batch() after finish()")
        if not isinstance(events, list):
            events = list(events)
        if not events:
            return 0
        presented = len(events)
        if self.validate_inputs:
            events = self._validated(events)
            if not events:
                self.report.events_in += presented
                self.report.batches += 1
                return presented

        # Route events to partitions; enforce the single-monitor input
        # protocol globally (a per-partition subsequence could be
        # in-order while the global sequence is not).
        slices: Dict[int, List[Tuple[int, str, Any]]] = {}
        last_ts = self._last_ts
        for event in events:
            ts, name, value = event
            if ts < 0:
                raise MonitorError(f"negative timestamp {ts}")
            if ts < last_ts:
                raise MonitorError(
                    f"out-of-order event: t={ts} after t={last_ts}"
                )
            if value is None:
                raise MonitorError(
                    "None is the no-event value; not a valid payload"
                )
            routes = self._routes.get(name)
            if routes is None:
                if name not in self._declared_inputs:
                    raise MonitorError(f"unknown input stream {name!r}")
                # Declared but unconsumed (e.g. only dead partitions
                # read it): accepted and dropped, like the full monitor.
            else:
                for index in routes:
                    slices.setdefault(index, []).append(event)
            last_ts = ts
        self._last_ts = last_ts

        def drive(slot: _PartitionSlot) -> None:
            part_events = slices.get(slot.index)
            if part_events:
                slot.monitor.feed_batch(part_events)
            # Partitions without events at last_ts flush their pending
            # timestamp and fire due delays — exactly what the single
            # monitor did when its clock passed them.
            slot.monitor.advance(last_ts)

        if self._executor is not None:
            futures = [
                self._executor.submit(drive, slot) for slot in self._slots
            ]
            for future in futures:  # the barrier
                future.result()
        else:
            for slot in self._slots:
                drive(slot)

        self.report.events_in += presented
        self.report.batches += 1
        self._emit_before(last_ts)
        return presented

    def feed(
        self,
        events: Iterable[Tuple[int, str, Any]],
        batch_size: Optional[int] = None,
    ) -> None:
        """Feed a whole event sequence in timestamp-aligned batches."""
        for batch in batch_events(events, batch_size or DEFAULT_BATCH_SIZE):
            self.feed_batch(batch)

    # -- output merge ----------------------------------------------------

    def _emit_before(self, ts_limit: Optional[int]) -> None:
        """Merge and emit buffered outputs (all strictly before the
        last timestamp: its calculation has not run in any partition,
        so nothing can be buffered at or after it)."""
        pending: List[Tuple[int, int, str, Any]] = []
        for slot in self._slots:
            if slot.buffer:
                pending.extend(slot.buffer)
                slot.buffer.clear()
        if not pending:
            return
        pending.sort(key=lambda entry: (entry[0], entry[1]))
        emit = self._on_output
        for ts, _order, name, value in pending:
            self.report.events_out += 1
            emit(name, ts, value)

    # -- shutdown --------------------------------------------------------

    def finish(self, end_time: Optional[int] = None) -> RunReport:
        """End of input for every partition; merge the tail outputs."""
        if self._finished:
            return self.report
        for slot in self._slots:
            slot.monitor.finish(end_time=end_time)
        self._emit_before(None)
        for slot in self._slots:
            # Fold the per-partition error counters (the only fields
            # the generated code touches) into the aggregate report.
            self.report.merge(slot.report)
        self._finished = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        return self.report

    def run(
        self,
        events: Iterable[Tuple[int, str, Any]],
        end_time: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> RunReport:
        self.feed(events, batch_size=batch_size)
        return self.finish(end_time=end_time)

    # -- introspection ---------------------------------------------------

    @property
    def partitions(self) -> int:
        return len(self._slots)


__all__ = ["PartitionedRunner", "DEFAULT_BATCH_SIZE", "freeze"]
