"""Multi-trace data parallelism: one spec, many traces, many processes.

:class:`MonitorPool` runs one compiled specification over many
independent traces (sessions, log shards, tenants) across a
``multiprocessing`` worker pool:

* **Warm-start compilation** — when the pool is built from
  specification text plus :class:`~repro.api.CompileOptions` carrying
  a plan cache directory, each worker compiles through
  ``repro.api.compile`` and hits the text-keyed on-disk cache: only
  the spec text and the fingerprint-keyed cache files cross the
  process boundary, no pickled monitors.  Pools built from an
  already-compiled :class:`~repro.compiler.pipeline.CompiledSpec`
  rely on ``fork`` inheriting the parent's memory (initializer
  arguments are not pickled under the fork start method).
* **Backpressure** — at most ``max_in_flight`` traces are outstanding
  at any moment; submission of trace *k + max_in_flight* waits for
  trace *k*'s slot, so a million-session driver never materializes a
  million task payloads in the pool's queue.
* **Ordered collection** — results come back in submission order
  regardless of worker scheduling.
* **Degradation** — a worker that raises is governed by the compiled
  spec's :class:`~repro.errors.ErrorPolicy`: ``FAIL_FAST`` (and the
  default ``None``) aborts the whole pool with :class:`PoolError`;
  ``PROPAGATE``/``SUBSTITUTE_DEFAULT`` record the failure on that
  trace's :class:`TraceResult` and keep the other workers running —
  the pool-level analogue of the hardened runtime's per-event
  policies.

``jobs <= 1``, a single trace, or a platform without ``fork`` all fall
back to an in-process sequential loop — no pool spin-up, identical
results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..compiler.monitor import freeze
from ..compiler.runtime import MonitorRunner, RunReport
from ..errors import ErrorPolicy

Event = Tuple[int, str, Any]
OutputEvent = Tuple[str, int, Any]


class PoolError(RuntimeError):
    """A worker failed under a fail-fast error policy."""


@dataclass
class TraceResult:
    """The outcome of one trace's run (in submission order)."""

    index: int
    outputs: Optional[List[OutputEvent]]
    report: Optional[RunReport]
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class PoolResult:
    """Everything a :meth:`MonitorPool.run_many` call produced."""

    results: List[TraceResult]
    #: All per-trace reports merged (counters summed).
    report: RunReport
    #: Worker processes actually used (1 — sequential fallback).
    workers: int
    failures: int = 0

    def outputs(self) -> List[List[OutputEvent]]:
        """Per-trace output lists, in submission order."""
        return [r.outputs or [] for r in self.results]


@dataclass(frozen=True)
class _WorkerRunOptions:
    """The picklable subset of run options a worker applies per trace."""

    end_time: Optional[int] = None
    batch_size: Optional[int] = None
    validate_inputs: bool = False
    collect_outputs: bool = True
    #: Instrument each trace run with per-stream copy/in-place counters;
    #: the per-trace snapshot rides home on ``RunReport.metrics`` (a
    #: plain dict, so it pickles across the process boundary) and the
    #: pool's merged report sums them.
    metrics: bool = False


#: Per-process compiled monitor, set by the pool initializer.
_WORKER_COMPILED: Any = None
_WORKER_OPTIONS: Optional[_WorkerRunOptions] = None
#: Per-process instrumented twins, keyed by id() of the uninstrumented
#: compiled spec — built lazily on the first metrics trace in each
#: process and reused for the rest of that process's traces.
_INSTRUMENTED_TWINS: Dict[int, Any] = {}


def _instrumented(compiled: Any) -> Any:
    twin = _INSTRUMENTED_TWINS.get(id(compiled))
    if twin is None:
        from ..compiler.pipeline import instrumented_twin
        from ..obs.metrics import MetricsRegistry

        twin = instrumented_twin(compiled, MetricsRegistry())
        _INSTRUMENTED_TWINS[id(compiled)] = twin
    return twin


def _pool_init(payload: Any, options: Any, run_options: _WorkerRunOptions):
    """Worker initializer: obtain a compiled monitor in this process."""
    global _WORKER_COMPILED, _WORKER_OPTIONS
    if isinstance(payload, str):
        from .. import api

        _WORKER_COMPILED = api.compile(payload, options).compiled
    else:
        # A CompiledSpec inherited through fork (not pickled).
        _WORKER_COMPILED = payload
    _WORKER_OPTIONS = run_options


def _run_one(
    compiled: Any, events: Sequence[Event], options: _WorkerRunOptions
) -> Tuple[List[OutputEvent], RunReport]:
    outputs: Optional[List[OutputEvent]] = None
    on_output = None
    if options.collect_outputs:
        collected: List[OutputEvent] = []

        def on_output(name: str, ts: int, value: Any) -> None:
            collected.append((name, ts, freeze(value)))

        outputs = collected

    registry = None
    before = None
    if options.metrics:
        compiled = _instrumented(compiled)
        registry = compiled.metrics
        before = registry.snapshot()
    runner = MonitorRunner(
        compiled, on_output, validate_inputs=options.validate_inputs
    )
    report = runner.run(
        events,
        end_time=options.end_time,
        batch_size=options.batch_size,
    )
    if registry is not None:
        from ..obs.metrics import diff_snapshots

        report.metrics = diff_snapshots(before, registry.snapshot())
    return outputs, report


def _pool_task(args: Tuple[int, Sequence[Event]]):
    """One trace in a worker; never raises (errors are data)."""
    index, events = args
    try:
        outputs, report = _run_one(
            _WORKER_COMPILED, events, _WORKER_OPTIONS
        )
        return index, outputs, report, None
    except Exception as exc:  # noqa: BLE001 - crossing a process boundary
        return index, None, None, f"{type(exc).__name__}: {exc}"


class MonitorPool:
    """A reusable worker pool for one compiled specification.

    Parameters
    ----------
    spec:
        Specification text (preferred: spawn-safe, plan-cache
        warm-start) or an already-compiled
        :class:`~repro.compiler.pipeline.CompiledSpec` /
        ``repro.api.Monitor`` (requires the ``fork`` start method).
    compile_options:
        The :class:`~repro.api.CompileOptions` workers compile with
        (only meaningful for text *spec*); give it a ``plan_cache``
        directory so workers skip the analysis.
    jobs:
        Worker process count.  ``<= 1`` runs sequentially in-process.
    max_in_flight:
        Bound on outstanding traces (default ``2 * jobs``).
    """

    def __init__(
        self,
        spec: Any,
        *,
        compile_options: Any = None,
        jobs: int = 2,
        max_in_flight: Optional[int] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.max_in_flight = (
            max(1, int(max_in_flight))
            if max_in_flight is not None
            else 2 * self.jobs
        )
        self._options = compile_options
        self._payload, self._compiled = self._normalize(spec, compile_options)

    @staticmethod
    def _normalize(spec: Any, compile_options: Any) -> Tuple[Any, Any]:
        """(worker payload, locally-compiled spec for the fallback)."""
        from .. import api

        if isinstance(spec, str):
            return spec, None  # compiled lazily, per process
        if isinstance(spec, api.Monitor):
            text = getattr(spec, "source_text", None)
            return (text if text is not None else spec.compiled), spec.compiled
        return spec, spec  # a CompiledSpec

    def _local_compiled(self) -> Any:
        if self._compiled is None:
            from .. import api

            self._compiled = api.compile(self._payload, self._options).compiled
        return self._compiled

    @property
    def error_policy(self) -> Optional[ErrorPolicy]:
        compiled = self._compiled
        if compiled is None and not isinstance(self._payload, str):
            compiled = self._payload
        if compiled is None:
            # Text payload not yet compiled locally: derive the policy
            # from the compile options without forcing a compilation.
            return getattr(self._options, "error_policy", None)
        return getattr(compiled, "error_policy", None)

    # -- execution -------------------------------------------------------

    def run_many(
        self,
        traces: Iterable[Sequence[Event]],
        *,
        end_time: Optional[int] = None,
        batch_size: Optional[int] = None,
        validate_inputs: bool = False,
        collect_outputs: bool = True,
        metrics: bool = False,
        on_result: Optional[Callable[[TraceResult], None]] = None,
    ) -> PoolResult:
        """Run every trace; return ordered results and a merged report.

        ``on_result`` (if given) observes each :class:`TraceResult` in
        *submission order* as soon as it becomes deliverable — the
        streaming hook for drivers that aggregate instead of retaining
        all outputs.
        """
        run_options = _WorkerRunOptions(
            end_time=end_time,
            batch_size=batch_size,
            validate_inputs=validate_inputs,
            collect_outputs=collect_outputs,
            metrics=metrics,
        )
        if self.jobs <= 1 or not self._fork_available():
            return self._run_sequential(traces, run_options, on_result)
        return self._run_pooled(traces, run_options, on_result)

    @staticmethod
    def _fork_available() -> bool:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()

    @staticmethod
    def _finalize(results: List[TraceResult], workers: int) -> PoolResult:
        merged = RunReport()
        failures = 0
        for result in results:
            if result.report is not None:
                merged.merge(result.report)
            if result.error is not None:
                failures += 1
        return PoolResult(
            results=results,
            report=merged,
            workers=workers,
            failures=failures,
        )

    def _fail_fast(self) -> bool:
        policy = self.error_policy
        return policy is None or policy is ErrorPolicy.FAIL_FAST

    def _run_sequential(
        self,
        traces: Iterable[Sequence[Event]],
        run_options: _WorkerRunOptions,
        on_result: Optional[Callable[[TraceResult], None]],
    ) -> PoolResult:
        """In-process fallback: same results, no pool spin-up."""
        compiled = self._local_compiled()
        results: List[TraceResult] = []
        for index, events in enumerate(traces):
            try:
                outputs, report = _run_one(compiled, events, run_options)
                result = TraceResult(index, outputs, report)
            except Exception as exc:  # noqa: BLE001 - mirrors the pool
                if self._fail_fast():
                    raise PoolError(
                        f"trace {index} failed:"
                        f" {type(exc).__name__}: {exc}"
                    ) from exc
                result = TraceResult(
                    index, None, None, f"{type(exc).__name__}: {exc}"
                )
            if on_result is not None:
                on_result(result)
            results.append(result)
        return self._finalize(results, 1)

    def _run_pooled(
        self,
        traces: Iterable[Sequence[Event]],
        run_options: _WorkerRunOptions,
        on_result: Optional[Callable[[TraceResult], None]],
    ) -> PoolResult:
        import multiprocessing
        from collections import deque

        context = multiprocessing.get_context("fork")
        fail_fast = self._fail_fast()
        results: Dict[int, TraceResult] = {}
        delivered = 0
        ordered: List[TraceResult] = []

        with context.Pool(
            processes=self.jobs,
            initializer=_pool_init,
            initargs=(self._payload, self._options, run_options),
        ) as pool:
            in_flight: deque = deque()

            def drain_one() -> None:
                nonlocal delivered
                async_result = in_flight.popleft()
                index, outputs, report, error = async_result.get()
                if error is not None and fail_fast:
                    raise PoolError(f"trace {index} failed: {error}")
                results[index] = TraceResult(index, outputs, report, error)
                # Deliver in submission order as soon as contiguous.
                while delivered in results:
                    result = results[delivered]
                    ordered.append(result)
                    if on_result is not None:
                        on_result(result)
                    delivered += 1

            try:
                for index, events in enumerate(traces):
                    while len(in_flight) >= self.max_in_flight:
                        drain_one()  # backpressure
                    in_flight.append(
                        pool.apply_async(_pool_task, ((index, events),))
                    )
                while in_flight:
                    drain_one()
            except PoolError:
                pool.terminate()
                raise
        return self._finalize(ordered, self.jobs)


def run_many(
    spec: Any,
    traces: Iterable[Sequence[Event]],
    *,
    compile_options: Any = None,
    jobs: int = 2,
    max_in_flight: Optional[int] = None,
    **run_kwargs: Any,
) -> PoolResult:
    """One-shot convenience around :class:`MonitorPool`."""
    pool = MonitorPool(
        spec,
        compile_options=compile_options,
        jobs=jobs,
        max_in_flight=max_in_flight,
    )
    return pool.run_many(traces, **run_kwargs)


__all__ = [
    "MonitorPool",
    "PoolError",
    "PoolResult",
    "TraceResult",
    "run_many",
]
