"""Multi-trace data parallelism: one spec, many traces, many workers.

:class:`MonitorPool` runs one compiled specification over many
independent traces (sessions, log shards, tenants) across a worker
pool with a selectable backend:

* ``backend="process"`` (default) — forked worker processes overseen
  by the :class:`~repro.parallel.supervisor.Supervisor`: per-trace
  leases with heartbeats and deadlines, worker death/hang detection,
  automatic restarts, capped-exponential-backoff re-dispatch
  (:class:`~repro.parallel.supervisor.RetryPolicy`) and poison-trace
  quarantine.  The only backend that scales pure-Python engines past
  the GIL.
* ``backend="thread"`` — an in-process thread pool.  No processes to
  babysit, so supervision degrades gracefully: retries and quarantine
  still apply (a task exception is a failed attempt), but kill/hang
  detection is moot — a thread cannot be SIGKILLed and a hung thread
  would hang the process anyway.  Useful where ``fork`` is unavailable
  or engines release the GIL.

Shared semantics, regardless of backend:

* **Warm-start compilation** — when the pool is built from
  specification text plus :class:`~repro.api.CompileOptions` carrying
  a plan cache directory, each worker process compiles through
  ``repro.api.compile`` and hits the text-keyed on-disk cache: only
  the spec text and the fingerprint-keyed cache files cross the
  process boundary, no pickled monitors.  Pools built from an
  already-compiled :class:`~repro.compiler.pipeline.CompiledSpec`
  rely on ``fork`` inheriting the parent's memory.
* **Backpressure** — at most ``max_in_flight`` traces are outstanding
  at any moment; submission of trace *k + max_in_flight* waits for
  trace *k*'s slot, so a million-session driver never materializes a
  million task payloads at once.
* **Ordered, exactly-once collection** — results come back in
  submission order regardless of worker scheduling, retries or
  restarts, and are byte-identical to a fault-free sequential run.
* **Degradation** — trace failure is governed by the compiled spec's
  :class:`~repro.errors.ErrorPolicy`: after a trace exhausts its
  retry budget, ``FAIL_FAST`` (and the default ``None``) aborts the
  whole pool with :class:`~repro.errors.PoolError` naming the trace
  index, worker id and attempt history; ``PROPAGATE``/
  ``SUBSTITUTE_DEFAULT`` quarantine the trace on its
  :class:`TraceResult` and keep the pool draining — the pool-level
  analogue of the hardened runtime's per-event policies.

``jobs <= 1``, or ``backend="process"`` on a platform without
``fork``, falls back to an in-process sequential loop — no pool
spin-up, identical results, same retry/quarantine semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..compiler.monitor import freeze
from ..compiler.runtime import MonitorRunner, RunReport
from ..errors import ErrorPolicy, PoolError
from ..obs.metrics import (
    DEFAULT_REGISTRY,
    POOL_QUARANTINED,
    POOL_RETRIES,
    POOL_TASKS,
)
from .supervisor import (
    AttemptRecord,
    FaultPlan,
    RetryPolicy,
    Supervisor,
    SupervisorStats,
)

Event = Tuple[int, str, Any]
OutputEvent = Tuple[str, int, Any]

BACKENDS = ("process", "thread")
#: How trace payloads reach process workers: ``"shm"`` — packed once
#: into parent-owned shared-memory segments, descriptor-only dispatch
#: (see :mod:`repro.parallel.shm`); ``"pipe"`` — pickled event lists
#: per attempt (the pre-arena behavior); ``"auto"`` — shm whenever the
#: platform supports it.  Thread/sequential execution has no process
#: boundary and always runs inline.
TRANSPORTS = ("auto", "shm", "pipe")


@dataclass
class TraceResult:
    """The outcome of one trace's run (in submission order).

    ``attempts`` is the supervision history — one
    :class:`~repro.parallel.supervisor.AttemptRecord` per try, so a
    trace that survived a worker crash shows it.  ``worker`` names the
    worker that produced the final outcome.
    """

    index: int
    outputs: Optional[List[OutputEvent]]
    report: Optional[RunReport]
    error: Optional[str] = None
    attempts: List[AttemptRecord] = field(default_factory=list)
    worker: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def quarantined(self) -> bool:
        """True iff this trace exhausted its retry budget."""
        return self.error is not None and self.error.startswith("quarantined")


@dataclass
class PoolResult:
    """Everything a :meth:`MonitorPool.run_many` call produced."""

    results: List[TraceResult]
    #: All per-trace reports merged (counters summed), including the
    #: pool-level ``retries`` / ``worker_restarts`` /
    #: ``traces_quarantined`` counters.
    report: RunReport
    #: Worker processes/threads actually used (1 — sequential fallback).
    workers: int
    failures: int = 0
    #: Which backend actually ran ("process", "thread", "sequential").
    backend: str = "sequential"
    #: Submission indexes of quarantined (poison) traces.
    quarantined: List[int] = field(default_factory=list)
    #: How trace payloads reached the workers: ``"shm"``/``"pipe"`` on
    #: the process backend, ``"inline"`` when no process boundary was
    #: crossed (thread backend, sequential fallback).
    transport: str = "inline"

    def outputs(self) -> List[List[OutputEvent]]:
        """Per-trace output lists, in submission order."""
        return [r.outputs or [] for r in self.results]


@dataclass(frozen=True)
class _WorkerRunOptions:
    """The picklable subset of run options a worker applies per trace."""

    end_time: Optional[int] = None
    batch_size: Optional[int] = None
    validate_inputs: bool = False
    collect_outputs: bool = True
    #: Instrument each trace run with per-stream copy/in-place counters;
    #: the per-trace snapshot rides home on ``RunReport.metrics`` (a
    #: plain dict, so it pickles across the process boundary) and the
    #: pool's merged report sums them.
    metrics: bool = False


#: Per-process instrumented twins, keyed by id() of the uninstrumented
#: compiled spec — built lazily on the first metrics trace in each
#: process and reused for the rest of that process's traces.
_INSTRUMENTED_TWINS: Dict[int, Any] = {}


def _instrumented(compiled: Any) -> Any:
    twin = _INSTRUMENTED_TWINS.get(id(compiled))
    if twin is None:
        from ..compiler.pipeline import instrumented_twin
        from ..obs.metrics import MetricsRegistry

        twin = instrumented_twin(compiled, MetricsRegistry())
        _INSTRUMENTED_TWINS[id(compiled)] = twin
    return twin


def _run_one(
    compiled: Any, events: Sequence[Event], options: _WorkerRunOptions
) -> Tuple[List[OutputEvent], RunReport]:
    outputs: Optional[List[OutputEvent]] = None
    on_output = None
    if options.collect_outputs:
        collected: List[OutputEvent] = []

        def on_output(name: str, ts: int, value: Any) -> None:
            collected.append((name, ts, freeze(value)))

        outputs = collected

    registry = None
    before = None
    if options.metrics:
        compiled = _instrumented(compiled)
        registry = compiled.metrics
        before = registry.snapshot()
    runner = MonitorRunner(
        compiled, on_output, validate_inputs=options.validate_inputs
    )
    report = runner.run(
        events,
        end_time=options.end_time,
        batch_size=options.batch_size,
    )
    if registry is not None:
        from ..obs.metrics import diff_snapshots

        report.metrics = diff_snapshots(before, registry.snapshot())
    return outputs, report


def _run_one_columns(
    compiled: Any,
    timestamps: Any,
    columns: Dict[str, Any],
    options: _WorkerRunOptions,
) -> Tuple[List[OutputEvent], RunReport]:
    """Run one dense columnar block through ``feed_columns``.

    The shm-transport twin of :func:`_run_one`: same output collection,
    same metrics instrumentation, but the input is the arena's shared
    timestamp/value arrays handed zero-copy to the runner (the vector
    engine consumes them as views; scalar engines row-shim internally).
    Outputs are byte-identical to the row path by the engine's
    ``feed_columns`` contract, and for dense blocks the consumed-event
    count equals the row count, so ``RunReport.events_in`` parity with
    the pipe transport holds.
    """
    outputs: Optional[List[OutputEvent]] = None
    on_output = None
    if options.collect_outputs:
        collected: List[OutputEvent] = []

        def on_output(name: str, ts: int, value: Any) -> None:
            collected.append((name, ts, freeze(value)))

        outputs = collected

    registry = None
    before = None
    if options.metrics:
        compiled = _instrumented(compiled)
        registry = compiled.metrics
        before = registry.snapshot()
    runner = MonitorRunner(
        compiled, on_output, validate_inputs=options.validate_inputs
    )
    runner.feed_columns(timestamps, columns)
    report = runner.finish(end_time=options.end_time)
    if registry is not None:
        from ..obs.metrics import diff_snapshots

        report.metrics = diff_snapshots(before, registry.snapshot())
    return outputs, report


def _run_attached(
    compiled: Any,
    attached: Any,
    options: _WorkerRunOptions,
    prefix: bool = False,
) -> Tuple[List[OutputEvent], RunReport]:
    """Run one shm-attached trace (worker side of the shm transport).

    Dense columnar payloads go through the ``feed_columns`` zero-copy
    path; sparse/blob payloads reconstruct the exact original rows and
    run through :func:`_run_one` unchanged.  ``prefix=True`` runs only
    the first half (the chaos kill injector's mid-trace progress).
    Input validation always takes the row path so error ordering
    matches the pipe transport event for event.
    """
    block = None if options.validate_inputs else attached.dense_block()
    if block is not None:
        timestamps, columns = block
        if prefix:
            half = max(1, len(timestamps) // 2)
            timestamps = timestamps[:half]
            columns = {
                name: column[:half] for name, column in columns.items()
            }
        return _run_one_columns(compiled, timestamps, columns, options)
    events = attached.rows()
    if prefix:
        events = events[: max(1, len(events) // 2)]
    return _run_one(compiled, events, options)


def _attempt_trace(
    compiled: Any,
    index: int,
    events: Sequence[Event],
    run_options: _WorkerRunOptions,
    retry: RetryPolicy,
    worker: str,
) -> TraceResult:
    """Run one trace with the in-process retry loop (thread/sequential).

    Never raises: exhaustion produces a quarantined
    :class:`TraceResult`; the caller decides (per error policy) whether
    that aborts the pool.
    """
    attempts: List[AttemptRecord] = []
    for attempt in range(1, retry.max_attempts + 1):
        DEFAULT_REGISTRY.inc(POOL_TASKS)
        try:
            outputs, report = _run_one(compiled, events, run_options)
        except Exception as exc:  # noqa: BLE001 - failure is data here
            attempts.append(
                AttemptRecord(
                    attempt, worker, "error", f"{type(exc).__name__}: {exc}"
                )
            )
            if attempt < retry.max_attempts:
                time.sleep(retry.delay(index, attempt))
            continue
        attempts.append(AttemptRecord(attempt, worker, "ok"))
        return TraceResult(
            index, outputs, report, None, attempts=attempts, worker=worker
        )
    error = (
        f"quarantined after {len(attempts)} attempts; last: {attempts[-1]}"
    )
    return TraceResult(
        index, None, None, error, attempts=attempts, worker=worker
    )


class MonitorPool:
    """A reusable worker pool for one compiled specification.

    Parameters
    ----------
    spec:
        Specification text (preferred: spawn-safe, plan-cache
        warm-start) or an already-compiled
        :class:`~repro.compiler.pipeline.CompiledSpec` /
        ``repro.api.Monitor`` (requires the ``fork`` start method).
    compile_options:
        The :class:`~repro.api.CompileOptions` workers compile with
        (only meaningful for text *spec*); give it a ``plan_cache``
        directory so workers skip the analysis.
    jobs:
        Worker count.  ``<= 1`` runs sequentially in-process.
    max_in_flight:
        Bound on outstanding traces (default ``2 * jobs``).
    backend:
        ``"process"`` (supervised fork workers, the default) or
        ``"thread"``.
    retry:
        The :class:`~repro.parallel.supervisor.RetryPolicy` applied to
        every trace on every backend (default: 3 attempts, 50 ms base
        backoff).
    trace_timeout:
        Per-trace wall-clock deadline in seconds (process backend
        only); a lease outliving it is killed and re-dispatched.
    heartbeat_interval / heartbeat_timeout:
        Worker heartbeat cadence and the silence threshold after which
        a worker is declared hung (process backend only;
        ``heartbeat_timeout`` defaults to ``max(1.0, 10 * interval)``).
    fault_plan:
        A :class:`~repro.parallel.supervisor.FaultPlan` for
        deterministic chaos injection (process backend only).
    transport:
        How trace payloads reach process workers: ``"auto"`` (the
        default — shared memory whenever the platform supports it),
        ``"shm"`` or ``"pipe"``.  See :data:`TRANSPORTS` and
        :mod:`repro.parallel.shm`.
    """

    def __init__(
        self,
        spec: Any,
        *,
        compile_options: Any = None,
        jobs: int = 2,
        max_in_flight: Optional[int] = None,
        backend: str = "process",
        retry: Optional[RetryPolicy] = None,
        trace_timeout: Optional[float] = None,
        heartbeat_interval: float = 0.1,
        heartbeat_timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        transport: str = "auto",
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}"
            )
        self.jobs = max(1, int(jobs))
        self.max_in_flight = (
            max(1, int(max_in_flight))
            if max_in_flight is not None
            else 2 * self.jobs
        )
        self.backend = backend
        self.transport = transport
        self.retry = retry if retry is not None else RetryPolicy()
        self.trace_timeout = trace_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.fault_plan = fault_plan
        self._options = compile_options
        self._payload, self._compiled = self._normalize(spec, compile_options)

    @staticmethod
    def _normalize(spec: Any, compile_options: Any) -> Tuple[Any, Any]:
        """(worker payload, locally-compiled spec for the fallback)."""
        from .. import api

        if isinstance(spec, str):
            return spec, None  # compiled lazily, per process
        if isinstance(spec, api.Monitor):
            text = getattr(spec, "source_text", None)
            return (text if text is not None else spec.compiled), spec.compiled
        return spec, spec  # a CompiledSpec

    def _local_compiled(self) -> Any:
        if self._compiled is None:
            from .. import api

            self._compiled = api.compile(self._payload, self._options).compiled
        return self._compiled

    @property
    def error_policy(self) -> Optional[ErrorPolicy]:
        compiled = self._compiled
        if compiled is None and not isinstance(self._payload, str):
            compiled = self._payload
        if compiled is None:
            # Text payload not yet compiled locally: derive the policy
            # from the compile options without forcing a compilation.
            return getattr(self._options, "error_policy", None)
        return getattr(compiled, "error_policy", None)

    # -- execution -------------------------------------------------------

    def run_many(
        self,
        traces: Iterable[Sequence[Event]],
        *,
        end_time: Optional[int] = None,
        batch_size: Optional[int] = None,
        validate_inputs: bool = False,
        collect_outputs: bool = True,
        metrics: bool = False,
        on_result: Optional[Callable[[TraceResult], None]] = None,
    ) -> PoolResult:
        """Run every trace; return ordered results and a merged report.

        ``on_result`` (if given) observes each :class:`TraceResult` in
        *submission order* as soon as it becomes deliverable — the
        streaming hook for drivers that aggregate instead of retaining
        all outputs.
        """
        run_options = _WorkerRunOptions(
            end_time=end_time,
            batch_size=batch_size,
            validate_inputs=validate_inputs,
            collect_outputs=collect_outputs,
            metrics=metrics,
        )
        if self.backend == "thread" and self.jobs > 1:
            return self._run_threaded(traces, run_options, on_result)
        if self.jobs <= 1 or not self._fork_available():
            return self._run_sequential(traces, run_options, on_result)
        return self._run_supervised(traces, run_options, on_result)

    @staticmethod
    def _fork_available() -> bool:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()

    def _resolve_transport(self) -> str:
        """The transport a supervised run will actually use."""
        if self.transport == "pipe":
            return "pipe"
        from .shm import shm_available

        # "auto" and "shm" both degrade cleanly when the platform has
        # no shared_memory support; "shm" is a preference, not a
        # hard requirement, so numpy-less and exotic hosts still run.
        return "shm" if shm_available() else "pipe"

    @staticmethod
    def _finalize(
        results: List[TraceResult],
        workers: int,
        backend: str,
        stats: SupervisorStats,
        transport: str = "inline",
    ) -> PoolResult:
        merged = RunReport()
        failures = 0
        for result in results:
            if result.report is not None:
                merged.merge(result.report)
            if result.error is not None:
                failures += 1
        merged.retries += stats.retries
        merged.worker_restarts += stats.worker_restarts
        merged.traces_quarantined += len(stats.quarantined)
        return PoolResult(
            results=results,
            report=merged,
            workers=workers,
            failures=failures,
            backend=backend,
            quarantined=sorted(stats.quarantined),
            transport=transport,
        )

    def _fail_fast(self) -> bool:
        policy = self.error_policy
        return policy is None or policy is ErrorPolicy.FAIL_FAST

    def _keep_or_abort(
        self,
        result: TraceResult,
        fail_fast: bool,
        stats: SupervisorStats,
    ) -> None:
        """Account one finished in-process trace; abort on exhaustion."""
        stats.retries += max(0, len(result.attempts) - 1)
        if len(result.attempts) > 1:
            DEFAULT_REGISTRY.inc(POOL_RETRIES, len(result.attempts) - 1)
        if result.error is None:
            return
        if fail_fast:
            raise PoolError(
                f"trace {result.index} failed after"
                f" {len(result.attempts)} attempts",
                trace_index=result.index,
                worker_id=result.worker,
                attempts=result.attempts,
            )
        stats.quarantined.append(result.index)
        DEFAULT_REGISTRY.inc(POOL_QUARANTINED)

    def _run_sequential(
        self,
        traces: Iterable[Sequence[Event]],
        run_options: _WorkerRunOptions,
        on_result: Optional[Callable[[TraceResult], None]],
    ) -> PoolResult:
        """In-process fallback: same results, no pool spin-up."""
        compiled = self._local_compiled()
        fail_fast = self._fail_fast()
        stats = SupervisorStats()
        results: List[TraceResult] = []
        for index, events in enumerate(traces):
            result = _attempt_trace(
                compiled, index, events, run_options, self.retry, "seq"
            )
            self._keep_or_abort(result, fail_fast, stats)
            if on_result is not None:
                on_result(result)
            results.append(result)
        return self._finalize(results, 1, "sequential", stats)

    def _run_threaded(
        self,
        traces: Iterable[Sequence[Event]],
        run_options: _WorkerRunOptions,
        on_result: Optional[Callable[[TraceResult], None]],
    ) -> PoolResult:
        """Thread backend: shared-memory workers, graceful supervision.

        Threads cannot be killed, so crash/hang detection does not
        apply; retries and quarantine work exactly as on the process
        backend (a task exception is a failed attempt).  Ordered
        delivery falls out of draining futures in submission order.
        """
        from collections import deque
        from concurrent.futures import ThreadPoolExecutor

        compiled = self._local_compiled()
        fail_fast = self._fail_fast()
        stats = SupervisorStats()
        results: List[TraceResult] = []

        def task(index: int, events: Sequence[Event]) -> TraceResult:
            import threading

            return _attempt_trace(
                compiled,
                index,
                events,
                run_options,
                self.retry,
                threading.current_thread().name,
            )

        with ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="pool"
        ) as executor:
            stats.workers_started = self.jobs
            in_flight: deque = deque()

            def drain_one() -> None:
                result = in_flight.popleft().result()
                self._keep_or_abort(result, fail_fast, stats)
                if on_result is not None:
                    on_result(result)
                results.append(result)

            for index, events in enumerate(traces):
                while len(in_flight) >= self.max_in_flight:
                    drain_one()  # backpressure
                in_flight.append(executor.submit(task, index, list(events)))
            while in_flight:
                drain_one()
        return self._finalize(results, self.jobs, "thread", stats)

    def _run_supervised(
        self,
        traces: Iterable[Sequence[Event]],
        run_options: _WorkerRunOptions,
        on_result: Optional[Callable[[TraceResult], None]],
    ) -> PoolResult:
        """Process backend: forked workers under the Supervisor."""
        transport = self._resolve_transport()
        supervisor = Supervisor(
            self._payload,
            self._options,
            run_options,
            jobs=self.jobs,
            retry=self.retry,
            trace_timeout=self.trace_timeout,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
            fault_plan=self.fault_plan,
            fail_fast=self._fail_fast(),
            max_in_flight=self.max_in_flight,
            transport=transport,
        )
        ordered = supervisor.run(traces, on_result=on_result)
        return self._finalize(
            ordered, self.jobs, "process", supervisor.stats, transport
        )


def run_many(
    spec: Any,
    traces: Iterable[Sequence[Event]],
    *,
    compile_options: Any = None,
    jobs: int = 2,
    max_in_flight: Optional[int] = None,
    backend: str = "process",
    retry: Optional[RetryPolicy] = None,
    trace_timeout: Optional[float] = None,
    heartbeat_interval: float = 0.1,
    heartbeat_timeout: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
    transport: str = "auto",
    **run_kwargs: Any,
) -> PoolResult:
    """One-shot convenience around :class:`MonitorPool`."""
    pool = MonitorPool(
        spec,
        compile_options=compile_options,
        jobs=jobs,
        max_in_flight=max_in_flight,
        backend=backend,
        retry=retry,
        trace_timeout=trace_timeout,
        heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=heartbeat_timeout,
        fault_plan=fault_plan,
        transport=transport,
    )
    return pool.run_many(traces, **run_kwargs)


__all__ = [
    "BACKENDS",
    "TRANSPORTS",
    "FaultPlan",
    "MonitorPool",
    "PoolError",
    "PoolResult",
    "RetryPolicy",
    "TraceResult",
    "run_many",
]
