"""Zero-copy shared-memory trace transport for the supervised pool.

The process-backend :class:`~repro.parallel.pool.MonitorPool` used to
pickle every trace's full event list over a worker pipe — once per
dispatch *and once per retry*.  That is exactly the copy discipline the
paper's mutability analysis eliminates inside a monitor, violated at
the process boundary.  This module lifts the same idea to the
inter-process data path:

* :class:`TraceArena` (parent side) packs each trace **once** into a
  ``multiprocessing.shared_memory`` segment.  Traces whose payloads are
  shm-encodable — int/float/bool/unit values on timestamp-sorted
  events, no duplicate ``(ts, stream)`` pairs — are stored *columnar*
  (a shared int64 timestamp array plus one presence mask and one typed
  value column per stream: the vector engine's SoA layout).  Anything
  else is pickled once into the segment instead (the blob fallback),
  so arbitrary payloads still ride shared memory.
* Only a tiny :class:`ArenaDescriptor` (segment name, offsets,
  dtypes, lengths) crosses the pipe; a re-dispatch after a crash
  re-sends the descriptor and the new worker re-reads the same bytes.
* Workers :func:`attach` read-only and — when the columnar encoding is
  dense (every stream fires at every timestamp) and the resolved
  engine is vector — feed the mapped arrays straight through the
  existing ``feed_columns`` zero-copy path.  Sparse or blob payloads
  reconstruct the exact original row events.

Crash-safety contract (the hard part):

* Segments are **owned by the parent**: created in
  :meth:`TraceArena.pack`, unlinked exactly once in
  :meth:`TraceArena.release` when the trace resolves (success,
  quarantine, or pool abort via :meth:`TraceArena.close_all`).  A
  worker never unlinks; it only closes its mapping.
* Worker attachment is *untracked*: on Python < 3.13
  ``SharedMemory(name=...)`` registers the segment with the
  ``resource_tracker``, and a SIGKILLed worker never unregisters —
  the tracker would then report phantom leaks (or double-unlink) at
  interpreter exit.  :func:`attach` suppresses that registration
  (``track=False`` where available, a scoped no-op otherwise), so the
  kill/hang chaos matrix runs with zero tracked leaks.
* Unlinking while a worker still maps the segment is safe on POSIX:
  the mapping survives until the worker's ``close`` (or death), only
  the name disappears.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..compiler import kernels
from ..compiler.monitor import UNIT_VALUE
from ..obs.metrics import (
    DEFAULT_REGISTRY,
    POOL_ARENA_ATTACH,
    POOL_BYTES_PICKLED,
    POOL_BYTES_SHARED,
)

__all__ = [
    "ArenaDescriptor",
    "AttachedTrace",
    "TraceArena",
    "attach",
    "shm_available",
]

#: Buffer alignment inside a segment; generous enough for any dtype.
_ALIGN = 64


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` works on this host."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - exotic platforms only
        return False
    return True


@dataclass(frozen=True)
class ArenaDescriptor:
    """Everything a worker needs to re-read one packed trace.

    This is what crosses the pipe instead of the event list: a segment
    name plus offsets/lengths — a few hundred bytes regardless of trace
    size, identical on every retry.

    ``kind`` is ``"columnar"`` (SoA layout: an int64 timestamp array at
    ``ts_offset``, then per stream a bool presence mask and — except
    for ``"unit"`` dtypes — a typed value column, both of ``length``
    entries) or ``"pickle"`` (one pickled event-list blob at
    ``payload_offset``).  ``count`` is the original row count;
    ``dense`` is True when every stream fires at every timestamp — the
    precondition for the ``feed_columns`` zero-copy path.
    """

    name: str
    kind: str
    size: int
    count: int
    length: int = 0
    dense: bool = False
    ts_offset: int = 0
    #: ``(stream, dtype_name, mask_offset, values_offset)`` per stream,
    #: in the deterministic (sorted) stream order used for row rebuild.
    streams: Tuple[Tuple[str, str, int, int], ...] = ()
    payload_offset: int = 0
    payload_length: int = 0


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _column_dtype(values: Sequence[Any]) -> Optional[str]:
    """The homogeneous column dtype for a stream's values, or None.

    Exact-type matching, not ``isinstance``: a bool is not an int64
    here, because decode must reproduce the original Python objects
    bit-for-bit (``np.float64(1).item()`` of an int would come back as
    ``1.0`` and change downstream equality).
    """
    kind: Optional[str] = None
    for value in values:
        t = type(value)
        if t is int:
            k = "int64"
        elif t is bool:
            k = "bool"
        elif t is float:
            k = "float64"
        elif value == UNIT_VALUE and t is type(UNIT_VALUE):
            k = "unit"
        else:
            return None
        if kind is None:
            kind = k
        elif kind != k:
            return None
    return kind


def _plan_columnar(events: List[Tuple[int, str, Any]]) -> Optional[Tuple]:
    """Try the columnar encoding; None when the trace isn't eligible.

    Eligible means: well-formed 3-tuples, int timestamps sorted
    non-decreasing and non-negative, string stream names, homogeneous
    int/float/bool/unit values per stream, and no duplicate
    ``(ts, stream)`` pair (a duplicate's last-write-wins overwrite
    cannot be represented in one column slot without losing the row
    count).  Ineligible traces take the pickled-blob fallback, which
    preserves the original rows — and therefore the original error
    behavior — exactly.
    """
    if not kernels.numpy_available():
        return None
    n = len(events)
    if n < 2:
        return None  # a blob is smaller than the columnar scaffolding
    np = kernels.numpy_module()
    per_values: Dict[str, List[Any]] = {}
    timestamps: List[int] = []
    previous = None
    for event in events:
        if type(event) is not tuple or len(event) != 3:
            return None
        ts, name, value = event
        if type(ts) is not int or type(name) is not str:
            return None
        if previous is not None and ts < previous:
            return None
        previous = ts
        timestamps.append(ts)
        per_values.setdefault(name, []).append(value)
    if timestamps[0] < 0:
        return None
    try:
        ts_arr = np.asarray(timestamps, dtype=np.int64)
    except (OverflowError, TypeError, ValueError):
        return None
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    np.not_equal(ts_arr[1:], ts_arr[:-1], out=keep[1:])
    positions = np.cumsum(keep) - 1
    ts_unique = ts_arr[keep]
    length = int(ts_unique.shape[0])
    names_arr = np.empty(n, dtype=object)
    names_arr[:] = [event[1] for event in events]
    streams = []
    dense = True
    for name in sorted(per_values):
        values = per_values[name]
        dtype_name = _column_dtype(values)
        if dtype_name is None:
            return None
        pos = positions[names_arr == name]
        if pos.shape[0] > 1 and bool((pos[1:] == pos[:-1]).any()):
            return None  # duplicate (ts, stream): last-write-wins rows
        mask = np.zeros(length, dtype=bool)
        mask[pos] = True
        if pos.shape[0] != length:
            dense = False
        column = None
        if dtype_name != "unit":
            dtype = kernels.resolve_dtype(np, dtype_name)
            column = np.zeros(length, dtype=dtype)
            try:
                column[pos] = np.asarray(values, dtype=dtype)
            except (OverflowError, TypeError, ValueError):
                return None
        streams.append((name, dtype_name, mask, column))
    return ts_unique, streams, length, dense


class TraceArena:
    """Parent-side owner of the per-trace shared-memory segments.

    One arena serves one supervised pool run.  Every segment it creates
    is unlinked exactly once: either in :meth:`release` when the trace
    resolves, or in :meth:`close_all` when the run ends (normally or by
    abort) — whichever comes first.  Both are idempotent, so a
    duplicate release (salvaged result racing a reap) is a no-op.
    """

    def __init__(self) -> None:
        self._segments: Dict[int, Any] = {}

    def __len__(self) -> int:
        return len(self._segments)

    def pack(
        self,
        index: int,
        events: List[Tuple[int, str, Any]],
        *,
        allow_columnar: bool = True,
    ) -> ArenaDescriptor:
        """Pack one trace into a fresh segment; returns its descriptor.

        Raises on shm exhaustion (``/dev/shm`` full, name collisions) —
        the caller falls back to the pipe for that trace.
        ``allow_columnar=False`` forces the blob encoding (used when
        input validation needs the exact original row order).
        """
        from multiprocessing import shared_memory

        np = kernels.numpy_module() if kernels.numpy_available() else None
        plan = _plan_columnar(events) if allow_columnar else None
        if plan is not None:
            ts_unique, streams, length, dense = plan
            ts_offset = 0
            offset = _align(ts_unique.nbytes)
            layout = []
            for name, dtype_name, mask, column in streams:
                mask_offset = offset
                offset = _align(offset + mask.nbytes)
                values_offset = 0
                if column is not None:
                    values_offset = offset
                    offset = _align(offset + column.nbytes)
                layout.append((name, dtype_name, mask_offset, values_offset))
            segment = shared_memory.SharedMemory(create=True, size=offset)
            try:
                np.frombuffer(
                    segment.buf, dtype=np.int64, count=length, offset=ts_offset
                )[:] = ts_unique
                for (name, dtype_name, mask, column), entry in zip(
                    streams, layout
                ):
                    np.frombuffer(
                        segment.buf,
                        dtype=np.bool_,
                        count=length,
                        offset=entry[2],
                    )[:] = mask
                    if column is not None:
                        np.frombuffer(
                            segment.buf,
                            dtype=column.dtype,
                            count=length,
                            offset=entry[3],
                        )[:] = column
            except BaseException:
                segment.close()
                segment.unlink()
                raise
            descriptor = ArenaDescriptor(
                name=segment.name,
                kind="columnar",
                size=offset,
                count=len(events),
                length=length,
                dense=dense,
                ts_offset=ts_offset,
                streams=tuple(layout),
            )
            DEFAULT_REGISTRY.inc(POOL_BYTES_SHARED, offset)
        else:
            blob = pickle.dumps(events, protocol=pickle.HIGHEST_PROTOCOL)
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, len(blob))
            )
            try:
                segment.buf[: len(blob)] = blob
            except BaseException:
                segment.close()
                segment.unlink()
                raise
            descriptor = ArenaDescriptor(
                name=segment.name,
                kind="pickle",
                size=len(blob),
                count=len(events),
                payload_offset=0,
                payload_length=len(blob),
            )
            DEFAULT_REGISTRY.inc(POOL_BYTES_PICKLED, len(blob))
        self._segments[index] = segment
        return descriptor

    def release(self, index: int) -> None:
        """Unlink trace *index*'s segment (idempotent)."""
        segment = self._segments.pop(index, None)
        if segment is None:
            return
        try:
            segment.close()
        except OSError:  # pragma: no cover - buffer already gone
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - defensive
            pass

    def close_all(self) -> None:
        """Unlink every segment still owned (abort/shutdown path)."""
        for index in list(self._segments):
            self.release(index)


# -- the worker side ----------------------------------------------------------


def _attach_untracked(name: str) -> Any:
    """Attach to an existing segment without resource-tracker tracking.

    The parent owns the segment's lifetime; a worker registering it
    with the (shared, fork-inherited) resource tracker would leave a
    phantom registration behind every SIGKILL.  Python 3.13 grew
    ``track=False`` for exactly this; earlier versions get a scoped
    no-op over ``resource_tracker.register`` — safe here because the
    worker's task loop is single-threaded.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class AttachedTrace:
    """A worker's read-only view of one packed trace.

    ``dense_block()`` exposes the zero-copy columnar form (shared
    timestamps + per-stream value arrays, all marked non-writeable so a
    kernel bug can never corrupt the segment other attempts re-read);
    ``rows()`` reconstructs the exact original event tuples.  Call
    :meth:`close` when the attempt ends — it drops this mapping only,
    never the segment.
    """

    def __init__(self, descriptor: ArenaDescriptor, segment: Any) -> None:
        self.descriptor = descriptor
        self._segment = segment
        self._rows: Optional[List[Tuple[int, str, Any]]] = None

    def close(self) -> None:
        try:
            self._segment.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass

    # -- views -----------------------------------------------------------

    def _view(self, dtype_name: str, offset: int) -> Any:
        np = kernels.numpy_module()
        dtype = (
            np.bool_
            if dtype_name == "bool"
            else kernels.resolve_dtype(np, dtype_name)
        )
        view = np.frombuffer(
            self._segment.buf,
            dtype=dtype,
            count=self.descriptor.length,
            offset=offset,
        )
        view.setflags(write=False)
        return view

    def dense_block(self) -> Optional[Tuple[Any, Dict[str, Any]]]:
        """``(timestamps, columns)`` for ``feed_columns``, or None.

        Available only for dense columnar payloads (every stream at
        every timestamp — the ``feed_columns`` contract).  Unit-valued
        streams come back as plain ``UNIT_VALUE`` lists; typed streams
        are read-only views straight over the segment.
        """
        d = self.descriptor
        if d.kind != "columnar" or not d.dense or not d.length:
            return None
        timestamps = self._view("int64", d.ts_offset)
        columns: Dict[str, Any] = {}
        for name, dtype_name, _mask_offset, values_offset in d.streams:
            if dtype_name == "unit":
                columns[name] = [UNIT_VALUE] * d.length
            else:
                columns[name] = self._view(dtype_name, values_offset)
        return timestamps, columns

    def rows(self) -> List[Tuple[int, str, Any]]:
        """The trace as ``(ts, stream, value)`` rows (exact types)."""
        if self._rows is not None:
            return self._rows
        d = self.descriptor
        if d.kind == "pickle":
            self._rows = pickle.loads(
                self._segment.buf[
                    d.payload_offset : d.payload_offset + d.payload_length
                ]
            )
            return self._rows
        np = kernels.numpy_module()
        ts_list = self._view("int64", d.ts_offset).tolist()
        tagged: List[Tuple[int, int, Tuple[int, str, Any]]] = []
        for order, (name, dtype_name, mask_offset, values_offset) in enumerate(
            d.streams
        ):
            mask = self._view("bool", mask_offset)
            indices = np.flatnonzero(mask).tolist()
            if dtype_name == "unit":
                values: Sequence[Any] = [UNIT_VALUE] * len(indices)
            else:
                values = self._view(dtype_name, values_offset)[
                    np.flatnonzero(mask)
                ].tolist()
            for position, value in zip(indices, values):
                tagged.append(
                    (position, order, (ts_list[position], name, value))
                )
        tagged.sort(key=lambda item: (item[0], item[1]))
        self._rows = [event for _pos, _order, event in tagged]
        return self._rows


def attach(descriptor: ArenaDescriptor) -> AttachedTrace:
    """Worker-side attach: map the descriptor's segment read-only."""
    DEFAULT_REGISTRY.inc(POOL_ARENA_ATTACH)
    return AttachedTrace(descriptor, _attach_untracked(descriptor.name))
