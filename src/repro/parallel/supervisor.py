"""Supervised fault-tolerant process workers for the multi-trace pool.

The thread pool cannot beat the GIL (every engine is pure-Python
bytecode), so scaling the multi-trace :class:`~repro.parallel.pool.MonitorPool`
means moving workers into separate *processes* — and separate processes
introduce real distributed-systems failure modes: a worker can be
killed (-9, OOM), hang (a pathological trace, a deadlocked lift), or
fail the same trace deterministically forever.  Progress is only
trustworthy if none of those silently drops or duplicates a trace, so
this module makes the pool *supervised*:

* **Per-trace leases** — each dispatched trace is a lease held by
  exactly one worker: ``(trace index, attempt, deadline, last
  heartbeat)``.  Workers are fed one task at a time over per-worker
  duplex pipes (a bounded queue of depth one), so the supervisor always
  knows which worker owns which trace.
* **Heartbeats** — a daemon thread in every worker beats every
  ``heartbeat_interval`` seconds while a task is active.  A lease whose
  heartbeat goes silent for ``heartbeat_timeout`` seconds is declared
  hung; a lease that outlives ``trace_timeout`` is declared timed out.
  Either way the worker is killed (SIGKILL — it is not trusted to
  cooperate) and the trace is re-dispatched.
* **Death detection** — worker exit is observed through the process
  sentinel *and* pipe EOF; the pipe is drained first, so a result that
  raced the death is salvaged instead of re-computed.
* **Retries with backoff** — an interrupted or failed trace goes back
  to the pending queue governed by :class:`RetryPolicy`: capped
  exponential backoff with deterministic jitter (seeded per
  ``(jitter_seed, trace, attempt)``, so runs replay exactly).
* **Quarantine** — a trace that fails ``max_attempts`` times is a
  *poison trace*: under fail-fast the pool aborts with a
  :class:`~repro.errors.PoolError` naming the trace index, worker id
  and full attempt history; under ``propagate``/``substitute-default``
  the trace is quarantined on its ``TraceResult`` and the pool keeps
  draining.
* **Exactness** — results are delivered in submission order, at most
  once (late results from killed workers are dropped as duplicates),
  and every successful attempt computes the identical outputs, so the
  merged result is byte-identical to a fault-free serial run.

Deterministic fault injection lives in :class:`FaultPlan` (surfaced as
``repro.testing.kill_worker_after`` / ``hang_worker`` /
``poison_trace``), which workers consult per ``(trace, attempt)`` — the
whole kill/hang/poison matrix is testable without real flakiness.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import PoolError
from ..obs.metrics import (
    DEFAULT_REGISTRY,
    POOL_ARENA_ATTACH,
    POOL_HEARTBEATS,
    POOL_MISSED_HEARTBEATS,
    POOL_QUARANTINED,
    POOL_RESTARTS,
    POOL_RETRIES,
    POOL_TASKS,
)

__all__ = [
    "AttemptRecord",
    "FaultPlan",
    "PoisonTraceError",
    "RetryPolicy",
    "Supervisor",
    "SupervisorStats",
]


class PoisonTraceError(RuntimeError):
    """The exception a :class:`FaultPlan` poison entry injects per attempt."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``max_attempts`` bounds how often one trace may be tried in total
    (first attempt included).  The delay before attempt *n + 1* is
    ``min(max_delay, base_delay * 2**(n-1))``, jittered into
    ``[base/2, base)`` by a PRNG seeded from ``(jitter_seed, trace,
    attempt)`` — the same pool run always waits the same amounts, so
    chaos failures replay exactly.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0:
            raise ValueError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay {self.max_delay} < base_delay {self.base_delay}"
            )

    def delay(self, trace_index: int, attempt: int) -> float:
        """Seconds to wait before re-dispatching *trace_index* after
        its *attempt*-th try failed."""
        import random

        base = min(
            self.max_delay, self.base_delay * (2 ** max(0, attempt - 1))
        )
        rng = random.Random(f"{self.jitter_seed}:{trace_index}:{attempt}")
        return base * (0.5 + rng.random() / 2.0)


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injection for the supervised process pool.

    Workers consult the plan per ``(trace index, attempt)``:

    * ``kill[i] = n`` — the worker running trace *i* SIGKILLs itself
      mid-trace (after genuinely processing a prefix of the batch) on
      attempts ``1..n``; attempt ``n + 1`` runs clean.
    * ``hang[i] = n`` — the worker freezes on trace *i* (heartbeats
      suppressed, task never completes) on attempts ``1..n``.
    * ``poison`` — trace indexes whose *every* attempt raises
      :class:`PoisonTraceError`; the quarantine path.

    Plans compose with :meth:`merged`.  ``seed`` is provenance only: it
    rides along in every failure message (see :meth:`replay`) so a
    chaos failure names exactly the plan needed to reproduce it.
    """

    kill: Mapping[int, int] = field(default_factory=dict)
    hang: Mapping[int, int] = field(default_factory=dict)
    poison: Tuple[int, ...] = ()
    hang_seconds: float = 3600.0
    seed: int = 0

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """The union of two plans (per-trace attempt counts take max)."""
        kill = dict(self.kill)
        for index, attempts in other.kill.items():
            kill[index] = max(kill.get(index, 0), attempts)
        hang = dict(self.hang)
        for index, attempts in other.hang.items():
            hang[index] = max(hang.get(index, 0), attempts)
        return FaultPlan(
            kill=kill,
            hang=hang,
            poison=tuple(sorted(set(self.poison) | set(other.poison))),
            hang_seconds=max(self.hang_seconds, other.hang_seconds),
            seed=self.seed if self.seed else other.seed,
        )

    def replay(self) -> str:
        """The one-line ``(seed, plan)`` replay key for failure messages."""
        return f"seed={self.seed} plan={self!r}"


@dataclass
class AttemptRecord:
    """One try of one trace: who ran it and how it ended.

    ``outcome`` is one of ``"ok"`` (completed), ``"error"`` (the task
    raised inside the worker), ``"crash"`` (the worker process died),
    ``"hang"`` (missed heartbeats) or ``"timeout"`` (per-trace
    deadline exceeded).
    """

    attempt: int
    worker: str
    outcome: str
    detail: str = ""

    def __str__(self) -> str:
        text = f"attempt {self.attempt} [{self.worker}] {self.outcome}"
        if self.detail:
            text += f": {self.detail}"
        return text

    def as_dict(self) -> Dict[str, Any]:
        return {
            "attempt": self.attempt,
            "worker": self.worker,
            "outcome": self.outcome,
            "detail": self.detail,
        }


@dataclass
class SupervisorStats:
    """Everything abnormal one pool run absorbed (all backends)."""

    retries: int = 0
    worker_restarts: int = 0
    quarantined: List[int] = field(default_factory=list)
    workers_started: int = 0
    heartbeats: int = 0
    missed_heartbeats: int = 0
    duplicate_results_dropped: int = 0


# -- the worker side ----------------------------------------------------------


class _Heartbeat:
    """Worker-side daemon thread beating while a task is active.

    Sends share the task thread's pipe, serialized by *lock* (Connection
    objects are not thread-safe).  ``suppress()`` models a full process
    freeze for the hang injector — a hung worker would not beat.
    """

    def __init__(self, conn: Any, lock: threading.Lock, wid: str, interval: float) -> None:
        self._conn = conn
        self._lock = lock
        self._wid = wid
        self._interval = max(0.001, interval)
        self._task: Optional[Tuple[int, int]] = None
        self._suppressed = False
        self._thread = threading.Thread(
            target=self._loop, name=f"{wid}-heartbeat", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def begin(self, index: int, attempt: int) -> None:
        self._task = (index, attempt)

    def end(self) -> None:
        self._task = None

    def suppress(self) -> None:
        self._suppressed = True

    def resume(self) -> None:
        self._suppressed = False

    def _loop(self) -> None:
        while True:
            time.sleep(self._interval)
            task = self._task
            if task is None or self._suppressed:
                continue
            try:
                with self._lock:
                    self._conn.send(("hb", self._wid, task[0], task[1]))
            except (OSError, ValueError, BrokenPipeError):
                return


def _apply_fault(
    plan: Optional[FaultPlan],
    index: int,
    attempt: int,
    heartbeat: _Heartbeat,
    run_prefix: Callable[[], Any],
) -> None:
    """Worker-side fault hook, consulted once per dispatched task."""
    if plan is None:
        return
    if attempt <= plan.kill.get(index, 0):
        # Die genuinely mid-trace: half the batch has been processed,
        # state is live, nothing has been reported back.
        run_prefix()
        os.kill(os.getpid(), signal.SIGKILL)
    if attempt <= plan.hang.get(index, 0):
        # A hung process does not beat: suppress first, then freeze.
        heartbeat.suppress()
        time.sleep(plan.hang_seconds)
        heartbeat.resume()
    if index in plan.poison:
        raise PoisonTraceError(
            f"injected poison on trace {index} attempt {attempt}"
            f" (replay: {plan.replay()})"
        )


def _worker_main(
    wid: str,
    conn: Any,
    payload: Any,
    compile_options: Any,
    run_options: Any,
    fault_plan: Optional[FaultPlan],
    heartbeat_interval: float,
) -> None:
    """One worker process: compile once, then serve tasks until 'stop'.

    Every task produces exactly one ``done`` message; task exceptions
    are data, never worker deaths.  The monitor is obtained exactly as
    in the unsupervised pool: text payloads compile through
    ``repro.api`` (hitting the text-keyed on-disk plan cache), compiled
    payloads are inherited through ``fork``.

    A task's payload is either the event list itself (pipe transport)
    or an :class:`~repro.parallel.shm.ArenaDescriptor` (shm transport)
    — then the worker attaches the parent-owned segment read-only,
    feeds it (zero-copy columns when dense and the engine allows,
    exact reconstructed rows otherwise) and closes its mapping
    afterwards; it never unlinks.
    """
    from .pool import _run_attached, _run_one
    from .shm import ArenaDescriptor, attach

    send_lock = threading.Lock()

    def send(message: Tuple[Any, ...]) -> None:
        try:
            with send_lock:
                conn.send(message)
        except (OSError, ValueError, BrokenPipeError):
            # The supervisor is gone; nothing sensible left to do.
            os._exit(1)

    try:
        if isinstance(payload, str):
            from .. import api

            compiled = api.compile(payload, compile_options).compiled
        else:
            compiled = payload
    except Exception as exc:  # noqa: BLE001 - crossing a process boundary
        send(("fatal", wid, f"{type(exc).__name__}: {exc}"))
        return

    heartbeat = _Heartbeat(conn, send_lock, wid, heartbeat_interval)
    heartbeat.start()
    send(("ready", wid))

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "stop":
            break
        _, index, attempt, payload = message
        send(("start", wid, index, attempt))
        heartbeat.begin(index, attempt)
        outputs = report = error = None
        attached = None
        try:
            if isinstance(payload, ArenaDescriptor):
                attached = attach(payload)

                def run_prefix() -> Any:
                    return _run_attached(
                        compiled, attached, run_options, prefix=True
                    )

                def run_full() -> Any:
                    return _run_attached(compiled, attached, run_options)

            else:
                events = payload

                def run_prefix() -> Any:
                    return _run_one(
                        compiled,
                        events[: max(1, len(events) // 2)],
                        run_options,
                    )

                def run_full() -> Any:
                    return _run_one(compiled, events, run_options)

            _apply_fault(fault_plan, index, attempt, heartbeat, run_prefix)
            outputs, report = run_full()
        except Exception as exc:  # noqa: BLE001 - crossing a process boundary
            error = f"{type(exc).__name__}: {exc}"
        finally:
            if attached is not None:
                attached.close()
        heartbeat.end()
        send(("done", wid, index, attempt, outputs, report, error))


# -- the supervisor side ------------------------------------------------------


class _Task:
    """One trace's supervision state: payload, attempts, backoff clock.

    Under the shm transport ``descriptor`` replaces ``events`` once the
    trace is packed into the arena: every (re-)dispatch sends the same
    tiny descriptor and the parent drops its row copy.  ``events``
    survives only on the pipe transport or when packing failed for this
    trace (per-trace degrade).
    """

    __slots__ = (
        "index",
        "events",
        "descriptor",
        "attempts",
        "eligible_at",
        "resolved",
    )

    def __init__(self, index: int, events: Sequence[Any]) -> None:
        self.index = index
        self.events: Optional[List[Any]] = list(events)
        self.descriptor: Optional[Any] = None
        self.attempts: List[AttemptRecord] = []
        self.eligible_at = 0.0
        self.resolved = False

    @property
    def next_attempt(self) -> int:
        return len(self.attempts) + 1


class _WorkerHandle:
    """Supervisor-side view of one worker process and its lease."""

    __slots__ = (
        "wid",
        "process",
        "conn",
        "ready",
        "task_index",
        "attempt",
        "lease_started",
        "last_heartbeat",
        "alive",
    )

    def __init__(self, wid: str, process: Any, conn: Any) -> None:
        self.wid = wid
        self.process = process
        self.conn = conn
        self.ready = False
        self.task_index: Optional[int] = None
        self.attempt = 0
        self.lease_started: Optional[float] = None
        self.last_heartbeat: Optional[float] = None
        self.alive = True


class Supervisor:
    """Drives forked workers over traces with leases, retries, restarts.

    One :meth:`run` call is one supervised batch: traces are pulled
    lazily (at most ``max_in_flight`` materialized), dispatched
    one-per-worker, watched for death/hang/timeout, re-dispatched per
    *retry*, and delivered in submission order.  ``stats`` accumulates
    the run's supervision counters; the always-present observability
    counters (``pool_*`` on :data:`~repro.obs.metrics.DEFAULT_REGISTRY`)
    are bumped as events happen.
    """

    def __init__(
        self,
        payload: Any,
        compile_options: Any,
        run_options: Any,
        *,
        jobs: int,
        retry: Optional[RetryPolicy] = None,
        trace_timeout: Optional[float] = None,
        heartbeat_interval: float = 0.1,
        heartbeat_timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        fail_fast: bool = True,
        max_in_flight: Optional[int] = None,
        transport: str = "pipe",
    ) -> None:
        self.payload = payload
        self.compile_options = compile_options
        self.run_options = run_options
        self.jobs = max(1, int(jobs))
        self.retry = retry if retry is not None else RetryPolicy()
        self.trace_timeout = trace_timeout
        self.heartbeat_interval = max(0.001, heartbeat_interval)
        if heartbeat_timeout is None:
            heartbeat_timeout = max(1.0, 10 * self.heartbeat_interval)
        # A timeout tighter than ~3 beats would flag healthy workers.
        self.heartbeat_timeout = max(
            heartbeat_timeout, 3 * self.heartbeat_interval
        )
        self.fault_plan = fault_plan
        self.fail_fast = fail_fast
        if transport not in ("pipe", "shm"):
            raise ValueError(
                f"transport must be 'pipe' or 'shm', got {transport!r}"
            )
        self.transport = transport
        self.max_in_flight = (
            max(1, int(max_in_flight))
            if max_in_flight is not None
            else 2 * self.jobs
        )
        self.stats = SupervisorStats()

    # -- the run loop ----------------------------------------------------

    def run(
        self,
        traces: Iterable[Sequence[Any]],
        on_result: Optional[Callable[[Any], None]] = None,
    ) -> List[Any]:
        """Run every trace; return ordered :class:`TraceResult` objects."""
        import multiprocessing
        from multiprocessing import connection as mp_connection

        from .pool import TraceResult

        ctx = multiprocessing.get_context("fork")
        arena = None
        if self.transport == "shm":
            from .shm import TraceArena

            arena = TraceArena()
        # Input validation reports errors in original row order; the
        # columnar encoding canonicalizes within-timestamp order, so
        # validated runs pack the exact rows (blob encoding) instead.
        allow_columnar = not getattr(
            self.run_options, "validate_inputs", False
        )
        trace_iter = iter(enumerate(traces))
        tasks: Dict[int, _Task] = {}
        pending: deque = deque()
        workers: Dict[str, _WorkerHandle] = {}
        results: Dict[int, TraceResult] = {}
        ordered: List[TraceResult] = []
        state = {"delivered": 0, "input_done": False, "startup_failures": 0}

        def spawn() -> _WorkerHandle:
            wid = f"w{self.stats.workers_started}"
            self.stats.workers_started += 1
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_worker_main,
                args=(
                    wid,
                    child_conn,
                    self.payload,
                    self.compile_options,
                    self.run_options,
                    self.fault_plan,
                    self.heartbeat_interval,
                ),
                name=f"repro-pool-{wid}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            handle = _WorkerHandle(wid, process, parent_conn)
            workers[wid] = handle
            return handle

        def deliver() -> None:
            while state["delivered"] in results:
                result = results[state["delivered"]]
                ordered.append(result)
                if on_result is not None:
                    on_result(result)
                state["delivered"] += 1

        def finish_task(task: _Task, result: Any) -> None:
            task.resolved = True
            tasks.pop(task.index, None)
            try:
                pending.remove(task.index)
            except ValueError:
                pass
            if arena is not None:
                # The lease chain for this trace is over (success or
                # quarantine): drop the segment exactly once.  Late
                # duplicate results hit the idempotent no-op path.
                arena.release(task.index)
            results[task.index] = result
            deliver()

        def fail_attempt(task: _Task, record: AttemptRecord) -> None:
            task.attempts.append(record)
            if len(task.attempts) >= self.retry.max_attempts:
                headline = (
                    f"trace {task.index} failed after"
                    f" {len(task.attempts)} attempts"
                )
                if self.fault_plan is not None:
                    headline += f" (chaos replay: {self.fault_plan.replay()})"
                if self.fail_fast:
                    raise PoolError(
                        headline,
                        trace_index=task.index,
                        worker_id=record.worker,
                        attempts=task.attempts,
                    )
                self.stats.quarantined.append(task.index)
                DEFAULT_REGISTRY.inc(POOL_QUARANTINED)
                error = (
                    f"quarantined after {len(task.attempts)} attempts;"
                    f" last: {record}"
                )
                if self.fault_plan is not None:
                    error += f" (chaos replay: {self.fault_plan.replay()})"
                finish_task(
                    task,
                    TraceResult(
                        task.index,
                        None,
                        None,
                        error,
                        attempts=list(task.attempts),
                        worker=record.worker,
                    ),
                )
            else:
                self.stats.retries += 1
                DEFAULT_REGISTRY.inc(POOL_RETRIES)
                task.eligible_at = time.monotonic() + self.retry.delay(
                    task.index, len(task.attempts)
                )
                pending.append(task.index)

        def handle_message(handle: _WorkerHandle, message: Tuple[Any, ...]) -> None:
            kind = message[0]
            if kind == "ready":
                handle.ready = True
                state["startup_failures"] = 0
            elif kind == "start":
                _, _, index, _ = message
                if handle.task_index == index:
                    now = time.monotonic()
                    handle.lease_started = now
                    handle.last_heartbeat = now
            elif kind == "hb":
                _, _, index, _ = message
                self.stats.heartbeats += 1
                DEFAULT_REGISTRY.inc(POOL_HEARTBEATS)
                if handle.task_index == index:
                    handle.last_heartbeat = time.monotonic()
            elif kind == "done":
                _, wid, index, attempt, outputs, report, error = message
                if handle.task_index == index:
                    handle.task_index = None
                    handle.lease_started = None
                task = tasks.get(index)
                if task is None or task.resolved:
                    self.stats.duplicate_results_dropped += 1
                    return
                if error is None:
                    task.attempts.append(AttemptRecord(attempt, wid, "ok"))
                    finish_task(
                        task,
                        TraceResult(
                            index,
                            outputs,
                            report,
                            None,
                            attempts=list(task.attempts),
                            worker=wid,
                        ),
                    )
                else:
                    fail_attempt(
                        task, AttemptRecord(attempt, wid, "error", error)
                    )
            elif kind == "fatal":
                _, wid, detail = message
                # Compilation failed inside the worker: deterministic,
                # restarting cannot help — surface it immediately.
                raise PoolError(
                    f"worker {wid} failed to initialize: {detail}",
                    worker_id=wid,
                )

        def pump(handle: _WorkerHandle) -> bool:
            """Drain every available message; False once the pipe is dead.

            A SIGKILL mid-send leaves a truncated pickle in the pipe —
            any unpickling garbage is treated as pipe death, never
            propagated.
            """
            while True:
                try:
                    if not handle.conn.poll(0):
                        return True
                    message = handle.conn.recv()
                except (EOFError, OSError):
                    return False
                except Exception:  # noqa: BLE001 - truncated/corrupt frame
                    return False
                handle_message(handle, message)

        def reap(handle: _WorkerHandle, outcome: str, detail: str) -> None:
            """A worker is dead or condemned: salvage, kill, refail, restart."""
            if not handle.alive:
                return
            handle.alive = False
            # Salvage first: a 'done' that raced the death/kill is a
            # completed trace, not an interrupted one.
            pump(handle)
            if handle.process.is_alive():
                try:
                    handle.process.kill()
                except Exception:  # noqa: BLE001 - already gone
                    pass
            handle.process.join(timeout=5)
            try:
                handle.conn.close()
            except OSError:
                pass
            exitcode = handle.process.exitcode
            was_ready = handle.ready
            index = handle.task_index
            handle.task_index = None
            workers.pop(handle.wid, None)

            task = tasks.get(index) if index is not None else None
            interrupted = task is not None and not task.resolved
            if interrupted:
                fail_attempt(
                    task,
                    AttemptRecord(
                        handle.attempt,
                        handle.wid,
                        outcome,
                        detail or f"worker exited with code {exitcode}",
                    ),
                )
            elif not was_ready:
                # Died before serving anything: likely a startup failure.
                state["startup_failures"] += 1
                if state["startup_failures"] > self.jobs + 2:
                    raise PoolError(
                        "worker pool cannot start:"
                        f" {state['startup_failures']} consecutive worker"
                        f" startup deaths (last exit code {exitcode})",
                        worker_id=handle.wid,
                    )
            live = sum(1 for h in workers.values() if h.alive)
            if (tasks or not state["input_done"]) and live < self.jobs:
                self.stats.worker_restarts += 1
                DEFAULT_REGISTRY.inc(POOL_RESTARTS)
                spawn()

        def refill() -> None:
            while not state["input_done"] and len(tasks) < self.max_in_flight:
                try:
                    index, events = next(trace_iter)
                except StopIteration:
                    state["input_done"] = True
                    return
                task = _Task(index, events)
                if arena is not None:
                    # Pack once; retries re-send the descriptor and
                    # re-read the same segment.  A pack failure (e.g.
                    # /dev/shm exhaustion) degrades this one trace to
                    # the pipe payload.
                    try:
                        task.descriptor = arena.pack(
                            index,
                            task.events,
                            allow_columnar=allow_columnar,
                        )
                        task.events = None
                    except Exception:  # noqa: BLE001 - per-trace degrade
                        task.descriptor = None
                tasks[index] = task
                pending.append(index)

        def pop_eligible(now: float) -> Optional[int]:
            for position, index in enumerate(pending):
                task = tasks.get(index)
                if task is None or task.resolved:
                    continue
                if task.eligible_at <= now:
                    del pending[position]
                    return index
            return None

        def dispatch() -> None:
            now = time.monotonic()
            for handle in list(workers.values()):
                if not (handle.alive and handle.ready):
                    continue
                if handle.task_index is not None:
                    continue
                index = pop_eligible(now)
                if index is None:
                    return
                task = tasks[index]
                payload = (
                    task.descriptor
                    if task.descriptor is not None
                    else task.events
                )
                try:
                    handle.conn.send(
                        ("task", index, task.next_attempt, payload)
                    )
                except (OSError, ValueError, BrokenPipeError):
                    pending.appendleft(index)
                    reap(handle, "crash", "pipe closed at dispatch")
                    continue
                handle.task_index = index
                handle.attempt = task.next_attempt
                handle.lease_started = now
                handle.last_heartbeat = now
                DEFAULT_REGISTRY.inc(POOL_TASKS)
                if task.descriptor is not None:
                    # One descriptor dispatch == one worker attach;
                    # counted here because worker registries are
                    # process-local and die with the fork.
                    DEFAULT_REGISTRY.inc(POOL_ARENA_ATTACH)

        def check_leases(now: float) -> None:
            for handle in list(workers.values()):
                if not handle.alive or handle.task_index is None:
                    continue
                started = handle.lease_started or now
                beaten = handle.last_heartbeat or started
                if (
                    self.trace_timeout is not None
                    and now - started > self.trace_timeout
                ):
                    reap(
                        handle,
                        "timeout",
                        f"trace exceeded its {self.trace_timeout:g}s"
                        " deadline",
                    )
                elif now - beaten > self.heartbeat_timeout:
                    self.stats.missed_heartbeats += 1
                    DEFAULT_REGISTRY.inc(POOL_MISSED_HEARTBEATS)
                    reap(
                        handle,
                        "hang",
                        f"no heartbeat for {now - beaten:.2f}s"
                        f" (limit {self.heartbeat_timeout:g}s)",
                    )

        def tick(now: float) -> float:
            timeout = self.heartbeat_timeout / 4
            if self.trace_timeout is not None:
                timeout = min(timeout, self.trace_timeout / 4)
            for index in pending:
                task = tasks.get(index)
                if task is None or task.resolved:
                    continue
                delta = task.eligible_at - now
                if delta > 0:
                    timeout = min(timeout, delta)
            return min(max(timeout, 0.005), 1.0)

        try:
            for _ in range(self.jobs):
                spawn()
            while True:
                refill()
                dispatch()
                if state["input_done"] and not tasks:
                    break
                waitables: Dict[Any, _WorkerHandle] = {}
                for handle in workers.values():
                    if not handle.alive:
                        continue
                    waitables[handle.conn] = handle
                    waitables[handle.process.sentinel] = handle
                now = time.monotonic()
                if waitables:
                    ready = mp_connection.wait(
                        list(waitables), timeout=tick(now)
                    )
                else:
                    ready = []
                seen = set()
                for waitable in ready:
                    handle = waitables[waitable]
                    if handle.wid in seen or not handle.alive:
                        continue
                    seen.add(handle.wid)
                    pipe_ok = pump(handle)
                    if not pipe_ok or not handle.process.is_alive():
                        reap(handle, "crash", "")
                check_leases(time.monotonic())
        except BaseException:
            self._shutdown(workers, graceful=False)
            raise
        finally:
            # Exactly-once unlink for whatever the run still owns: on
            # the normal path every segment was already released at
            # resolution (no-op); on abort/kill paths the workers are
            # dead by now and the leftover segments go here.
            if arena is not None:
                arena.close_all()
        self._shutdown(workers, graceful=True)
        return ordered

    @staticmethod
    def _shutdown(workers: Dict[str, _WorkerHandle], graceful: bool) -> None:
        handles = list(workers.values())
        if graceful:
            for handle in handles:
                try:
                    handle.conn.send(("stop",))
                except (OSError, ValueError, BrokenPipeError):
                    pass
            deadline = time.monotonic() + 2.0
            for handle in handles:
                handle.process.join(
                    timeout=max(0.0, deadline - time.monotonic())
                )
        for handle in handles:
            if handle.process.is_alive():
                try:
                    handle.process.kill()
                except Exception:  # noqa: BLE001 - already gone
                    pass
                handle.process.join(timeout=5)
            try:
                handle.conn.close()
            except OSError:
                pass
        workers.clear()
