"""Reference semantics: timed event streams and the ground-truth interpreter."""

from .interpreter import InterpreterError, interpret
from .stream import Stream, merge_timestamps, stream, unit_events
from .traceio import TraceError, read_trace, write_trace

__all__ = [
    "InterpreterError",
    "Stream",
    "TraceError",
    "interpret",
    "merge_timestamps",
    "read_trace",
    "stream",
    "unit_events",
    "write_trace",
]
