"""Reference semantics: timed event streams and the ground-truth interpreter."""

from .interpreter import InterpreterError, interpret
from .stream import Stream, merge_timestamps, stream, unit_events
from .traceio import (
    IngestPolicy,
    IngestStats,
    TolerantReader,
    TraceError,
    iter_trace_events,
    read_trace,
    read_trace_tolerant,
    write_trace,
)

__all__ = [
    "IngestPolicy",
    "IngestStats",
    "InterpreterError",
    "Stream",
    "TolerantReader",
    "TraceError",
    "interpret",
    "iter_trace_events",
    "merge_timestamps",
    "read_trace",
    "read_trace_tolerant",
    "stream",
    "unit_events",
    "write_trace",
]
