"""Timed event streams (paper §II).

A stream is a partial function from a totally ordered time domain to a
data domain; we represent the finite prefixes that monitors consume and
produce as sorted ``(timestamp, value)`` sequences.  Timestamps are
integers (any totally ordered, subtractable domain works; the paper's
examples use integral nanoseconds/seconds).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

Event = Tuple[int, Any]


class Stream:
    """A finite timed event stream: strictly increasing timestamps."""

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[Event] = ()) -> None:
        self._events: List[Event] = list(events)
        for (t1, _), (t2, _) in zip(self._events, self._events[1:]):
            if t1 >= t2:
                raise ValueError(
                    f"timestamps must be strictly increasing, got {t1} then {t2}"
                )

    @property
    def events(self) -> List[Event]:
        return list(self._events)

    def timestamps(self) -> List[int]:
        return [t for t, _ in self._events]

    def values(self) -> List[Any]:
        return [v for _, v in self._events]

    def value_at(self, ts: int) -> Optional[Any]:
        """The event value at *ts*, or None (⊥) if there is none."""
        index = bisect.bisect_left(self._events, ts, key=lambda e: e[0])
        if index < len(self._events) and self._events[index][0] == ts:
            return self._events[index][1]
        return None

    def last_before(self, ts: int) -> Optional[Any]:
        """The value of the strictly last event before *ts*, or None."""
        index = bisect.bisect_left(self._events, ts, key=lambda e: e[0])
        if index == 0:
            return None
        return self._events[index - 1][1]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Stream):
            return self._events == other._events
        if isinstance(other, (list, tuple)):
            return self._events == list(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self._events))

    def __repr__(self) -> str:
        inner = ", ".join(f"{t}: {v!r}" for t, v in self._events)
        return f"Stream({{{inner}}})"


def stream(*events: Event) -> Stream:
    """Shorthand: ``stream((1, 'a'), (5, 'b'))``."""
    return Stream(events)


def unit_events(timestamps: Sequence[int]) -> Stream:
    """A stream of unit events at the given timestamps."""
    return Stream((t, ()) for t in timestamps)


def merge_timestamps(streams: Iterable[Stream]) -> List[int]:
    """Sorted union of all event timestamps of *streams*."""
    seen = set()
    for s in streams:
        seen.update(s.timestamps())
    return sorted(seen)
