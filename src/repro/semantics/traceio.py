"""Trace serialization in the TeSSLa textual trace format.

Real TeSSLa tooling exchanges traces as lines of::

    timestamp: stream = value
    timestamp: stream            -- unit event

with ``--``/``#`` comments and blank lines ignored.  Values are the
literals of the specification language: integers, floats, ``true`` /
``false``, double-quoted strings and ``()`` for unit — plus
``error("...")`` for first-class error events (written by monitors
running under :class:`~repro.errors.ErrorPolicy.PROPAGATE`).  This
module reads and writes that format so monitors can consume and produce
files interchangeable with other TeSSLa implementations.

Two ingestion modes:

* :func:`read_trace` — strict: any malformed line, negative timestamp,
  or duplicate event raises :class:`TraceError` naming the line.
* :class:`TolerantReader` / :func:`read_trace_tolerant` — configurable
  via :class:`IngestPolicy`: malformed lines and unknown streams can be
  skipped and counted, out-of-order events can be dropped or repaired
  through a bounded reorder buffer (``max_skew``), and everything
  abnormal is recorded in an :class:`IngestStats`.
"""

from __future__ import annotations

import heapq
import json
import re
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    TextIO,
    Tuple,
    Union,
)

from ..errors import ErrorValue

Event = Tuple[int, Any]
Traces = Dict[str, List[Event]]
#: A fully-parsed trace event: (timestamp, stream, value).
TraceEvent = Tuple[int, str, Any]


class TraceError(Exception):
    """Raised on malformed trace text."""


_LINE_RE = re.compile(
    r"^\s*(?P<ts>-?\d+)\s*:\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"\s*(?:=\s*(?P<value>.+?))?\s*$"
)

_INT_RE = re.compile(r"[+-]?\d+\Z")
_FLOAT_RE = re.compile(
    r"[+-]?(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?\Z|[+-]?\d+[eE][+-]?\d+\Z"
)
_ERROR_RE = re.compile(r'error\((".*")\)\Z', re.DOTALL)


def parse_value(text: str) -> Any:
    """Parse one value literal of the trace format.

    Only the trace format's own literals are accepted: integers,
    floats, ``true``/``false``, double-quoted (JSON-escaped) strings,
    ``()``, and ``error("...")``.  Arbitrary Python literals — lists,
    dicts, tuples, ``None`` — are rejected: aggregate values have no
    trace representation, and silently materializing them produced
    monitors fed with values no TeSSLa implementation could emit.
    """
    text = text.strip()
    if text == "()":
        return ()
    if text == "true":
        return True
    if text == "false":
        return False
    if _INT_RE.match(text):
        return int(text)
    if _FLOAT_RE.match(text):
        return float(text)
    if text.startswith('"'):
        try:
            value = json.loads(text)
        except ValueError:
            raise TraceError(
                f"cannot parse string literal {text!r}"
            ) from None
        if isinstance(value, str):
            return value
        raise TraceError(f"cannot parse string literal {text!r}")
    match = _ERROR_RE.match(text)
    if match is not None:
        try:
            message = json.loads(match.group(1))
        except ValueError:
            message = None
        if isinstance(message, str):
            return ErrorValue(message)
        raise TraceError(f"cannot parse error literal {text!r}")
    raise TraceError(
        f"cannot parse value {text!r}: expected an integer, float,"
        ' true/false, a double-quoted string, (), or error("...")'
    )


def format_value(value: Any) -> str:
    """Render one value as a trace literal."""
    if isinstance(value, ErrorValue):
        return repr(value)  # error("<json-escaped message>")
    if value == () and isinstance(value, tuple):
        return "()"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        # JSON string escaping is a subset of Python string literals,
        # so the result always round-trips through parse_value.
        return json.dumps(value)
    return repr(value)


def parse_line(raw: str, lineno: int = 0) -> Optional[TraceEvent]:
    """Parse one trace line into ``(ts, stream, value)``.

    Returns ``None`` for blank and comment lines; raises
    :class:`TraceError` naming *lineno* for anything malformed.
    """
    line = raw.split("--")[0].split("#")[0].strip()
    if not line:
        return None
    match = _LINE_RE.match(line)
    if match is None:
        raise TraceError(f"line {lineno}: cannot parse {raw!r}")
    ts = int(match.group("ts"))
    if ts < 0:
        raise TraceError(f"line {lineno}: negative timestamp {ts}")
    value_text = match.group("value")
    if value_text is None:
        return ts, match.group("name"), ()
    try:
        value = parse_value(value_text)
    except TraceError as err:
        raise TraceError(f"line {lineno}: {err}") from None
    return ts, match.group("name"), value


def read_trace(source: Union[str, TextIO]) -> Traces:
    """Parse trace text (or a file object) into per-stream event lists.

    Events may arrive in any order in the text; the result is sorted by
    timestamp per stream.  Two events on one stream at one timestamp
    are rejected.
    """
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = source
    traces: Traces = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        parsed = parse_line(raw, lineno)
        if parsed is None:
            continue
        ts, name, value = parsed
        traces.setdefault(name, []).append((ts, value))
    for name, events in traces.items():
        events.sort(key=lambda e: e[0])
        for (t1, _), (t2, _) in zip(events, events[1:]):
            if t1 == t2:
                raise TraceError(
                    f"stream {name!r} has two events at timestamp {t1}"
                )
    return traces


def write_trace(traces: Mapping[str, Iterable[Event]]) -> str:
    """Render traces chronologically in the TeSSLa trace format."""
    merged: List[TraceEvent] = []
    for name, events in traces.items():
        for ts, value in events:
            merged.append((ts, name, value))
    merged.sort(key=lambda e: (e[0], e[1]))
    lines = []
    for ts, name, value in merged:
        if value == () and isinstance(value, tuple):
            lines.append(f"{ts}: {name}")
        else:
            lines.append(f"{ts}: {name} = {format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- tolerant ingestion -------------------------------------------------------

#: Legal values for the per-fault :class:`IngestPolicy` fields.
RAISE = "raise"
SKIP = "skip"
BUFFER = "buffer"


@dataclass(frozen=True)
class IngestPolicy:
    """What a tolerant reader does with each kind of bad input.

    * ``on_malformed`` — a line (or CSV cell) that does not parse:
      ``"raise"`` or ``"skip"`` (skip records it and moves on).
    * ``on_unknown_stream`` — an event naming a stream the monitor does
      not declare (only checked when the reader knows the declared
      streams): ``"raise"`` or ``"skip"``.
    * ``on_out_of_order`` — an event with a timestamp behind the
      delivery frontier: ``"raise"``, ``"skip"`` (drop and record), or
      ``"buffer"`` (hold events back until they are ``max_skew`` ticks
      old, delivering late arrivals in order; events later than the
      window are dropped and recorded).
    * ``max_skew`` — the reorder window for ``"buffer"``: an event may
      arrive up to this many ticks after a later-stamped one and still
      be delivered in order.
    """

    on_malformed: str = RAISE
    on_unknown_stream: str = RAISE
    on_out_of_order: str = RAISE
    max_skew: int = 0

    def __post_init__(self) -> None:
        for field_name, allowed in (
            ("on_malformed", (RAISE, SKIP)),
            ("on_unknown_stream", (RAISE, SKIP)),
            ("on_out_of_order", (RAISE, SKIP, BUFFER)),
        ):
            value = getattr(self, field_name)
            if value not in allowed:
                raise ValueError(
                    f"{field_name} must be one of {allowed}, got {value!r}"
                )
        if self.max_skew < 0:
            raise ValueError("max_skew must be non-negative")


@dataclass
class IngestStats:
    """Counters for one tolerant ingestion pass.

    Field names match :meth:`repro.compiler.runtime.RunReport.absorb_ingest`.
    """

    lines_read: int = 0
    events_ingested: int = 0
    malformed_lines: int = 0
    unknown_stream_events: int = 0
    out_of_order_dropped: int = 0
    #: Events that arrived behind a later-stamped one but were delivered
    #: in order thanks to the reorder buffer.
    reordered_events: int = 0
    #: Events flushed by the end-of-input drain rather than by the skew
    #: rule.  Drained deliveries are *not* replay-stable: re-reading a
    #: longer version of the same input interleaves them differently,
    #: which is why checkpoint cadences stop once draining begins.
    drained_events: int = 0


class TolerantReader:
    """Policy-driven event ingestion with bounded reordering.

    Format-agnostic: :meth:`events` takes any item iterable plus a
    parser mapping one item to ``(ts, stream, value)`` (or ``None`` to
    skip it, or raising :class:`TraceError` when malformed) — the same
    machinery serves the TeSSLa text format and the CLI's CSV reader.
    Counters accumulate in :attr:`stats` across calls.
    """

    def __init__(
        self,
        policy: Optional[IngestPolicy] = None,
        known_streams: Optional[Iterable[str]] = None,
    ) -> None:
        self.policy = policy if policy is not None else IngestPolicy()
        names = list(known_streams) if known_streams is not None else None
        self.known_streams = (
            frozenset(names) if names is not None else None
        )
        # Tie-break rank for equal-timestamp flushes: stream declaration
        # order when the caller passed an ordered iterable (FlatSpec
        # inputs are), lexicographic for unordered sets so delivery
        # never depends on hash seeds.
        if names is None:
            ordered: List[str] = []
        elif isinstance(known_streams, (set, frozenset)):
            ordered = sorted(names)
        else:
            ordered = names
        self._stream_rank = {name: i for i, name in enumerate(ordered)}
        self.stats = IngestStats()
        #: True once :meth:`events` has exhausted its input and started
        #: flushing whatever the reorder buffer still holds.  Deliveries
        #: from that point on are not replay-stable (see
        #: :attr:`IngestStats.drained_events`); checkpointing callers
        #: use this flag to stop writing checkpoints.
        self.draining = False

    def events(
        self,
        items: Iterable[Any],
        parse: Callable[[Any], Optional[TraceEvent]],
    ) -> Iterator[TraceEvent]:
        """Yield ``(ts, stream, value)`` in delivery order, per policy."""
        policy = self.policy
        stats = self.stats
        buffering = policy.on_out_of_order == BUFFER
        # Heap entries are (ts, rank, name, seq, value): equal-timestamp
        # events flush in stream-declaration order (matching a pre-sorted
        # run of the same trace), not buffer-arrival order; ``seq`` keeps
        # same-stream duplicates in arrival order and shields ``value``
        # from ever being compared.
        heap: List[Tuple[int, int, str, int, Any]] = []
        rank_of = self._stream_rank
        unknown_rank = len(rank_of)
        seq = 0
        frontier: Optional[int] = None  # highest ts already delivered
        max_seen: Optional[int] = None
        self.draining = False
        for item in items:
            stats.lines_read += 1
            try:
                parsed = parse(item)
            except TraceError:
                stats.malformed_lines += 1
                if policy.on_malformed == RAISE:
                    raise
                continue
            if parsed is None:
                continue
            ts, name, value = parsed
            if (
                self.known_streams is not None
                and name not in self.known_streams
            ):
                stats.unknown_stream_events += 1
                if policy.on_unknown_stream == RAISE:
                    raise TraceError(
                        f"unknown input stream {name!r} at t={ts}"
                    )
                continue
            if not buffering:
                if frontier is not None and ts < frontier:
                    if policy.on_out_of_order == RAISE:
                        raise TraceError(
                            f"out-of-order event on {name!r}: t={ts}"
                            f" after t={frontier}"
                        )
                    stats.out_of_order_dropped += 1
                    continue
                frontier = ts
                stats.events_ingested += 1
                yield ts, name, value
                continue
            # bounded reorder buffer
            if frontier is not None and ts < frontier:
                # later than the skew window can repair: already behind
                # an event we were forced to deliver
                stats.out_of_order_dropped += 1
                continue
            if max_seen is not None and ts < max_seen:
                stats.reordered_events += 1
            heapq.heappush(
                heap, (ts, rank_of.get(name, unknown_rank), name, seq, value)
            )
            seq += 1
            if max_seen is None or ts > max_seen:
                max_seen = ts
            # everything at least max_skew ticks behind the newest
            # arrival can no longer be overtaken — deliver it
            while heap and heap[0][0] <= max_seen - policy.max_skew:
                ets, _, ename, _, evalue = heapq.heappop(heap)
                frontier = ets
                stats.events_ingested += 1
                yield ets, ename, evalue
        self.draining = True
        while heap:
            ets, _, ename, _, evalue = heapq.heappop(heap)
            stats.events_ingested += 1
            stats.drained_events += 1
            yield ets, ename, evalue


def iter_trace_events(
    source: Union[str, TextIO],
    policy: Optional[IngestPolicy] = None,
    known_streams: Optional[Iterable[str]] = None,
    stats: Optional[IngestStats] = None,
) -> Iterator[TraceEvent]:
    """Stream ``(ts, stream, value)`` events from TeSSLa trace text.

    With the default (all-``raise``) policy this is a streaming strict
    parse; pass an :class:`IngestPolicy` to survive bad input.  Pass a
    *stats* object to observe the counters after iteration.
    """
    if hasattr(source, "read"):
        lines: Iterable[str] = source  # file objects iterate by line
    else:
        lines = source.splitlines()
    reader = TolerantReader(policy, known_streams)
    if stats is not None:
        reader.stats = stats
    return reader.events(
        enumerate(lines, 1),
        lambda item: parse_line(item[1], item[0]),
    )


def batch_events(
    events: Iterable[TraceEvent], batch_size: int
) -> Iterator[List[TraceEvent]]:
    """Chunk a timestamp-sorted event stream into feedable batches.

    Batches hold roughly *batch_size* events, but one timestamp is
    never split across two batches: a monitor's ``feed_batch`` leaves
    its final timestamp pending, and closing a batch mid-timestamp
    would be correct but waste the amortization on the boundary.  A
    single timestamp with more than *batch_size* events yields one
    oversized batch.

    In-memory sequences are sliced at computed cut points instead of
    re-accumulated event by event, so batching a materialized trace
    costs a handful of slices rather than one append per event.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if isinstance(events, (list, tuple)):
        start, total = 0, len(events)
        while start < total:
            cut = min(start + batch_size, total)
            while cut < total and events[cut][0] == events[cut - 1][0]:
                cut += 1
            yield list(events[start:cut])
            start = cut
        return
    batch: List[TraceEvent] = []
    for event in events:
        if (
            len(batch) >= batch_size
            and batch[-1][0] != event[0]
        ):
            yield batch
            batch = []
        batch.append(event)
    if batch:
        yield batch


def read_trace_tolerant(
    source: Union[str, TextIO],
    policy: Optional[IngestPolicy] = None,
    known_streams: Optional[Iterable[str]] = None,
) -> Tuple[Traces, IngestStats]:
    """Parse trace text under an :class:`IngestPolicy`.

    Returns ``(traces, stats)``; the traces map is shaped exactly like
    :func:`read_trace`'s result.
    """
    stats = IngestStats()
    traces: Traces = {}
    for ts, name, value in iter_trace_events(
        source, policy, known_streams, stats
    ):
        traces.setdefault(name, []).append((ts, value))
    return traces, stats
