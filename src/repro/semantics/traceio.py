"""Trace serialization in the TeSSLa textual trace format.

Real TeSSLa tooling exchanges traces as lines of::

    timestamp: stream = value
    timestamp: stream            -- unit event

with ``--``/``#`` comments and blank lines ignored.  Values are the
literals of the specification language: integers, floats, ``true`` /
``false``, double-quoted strings and ``()`` for unit.  This module
reads and writes that format so monitors can consume and produce files
interchangeable with other TeSSLa implementations.
"""

from __future__ import annotations

import ast as python_ast
import re
from typing import Any, Dict, Iterable, List, Mapping, TextIO, Tuple, Union

Event = Tuple[int, Any]
Traces = Dict[str, List[Event]]


class TraceError(Exception):
    """Raised on malformed trace text."""


_LINE_RE = re.compile(
    r"^\s*(?P<ts>-?\d+)\s*:\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"\s*(?:=\s*(?P<value>.+?))?\s*$"
)


def parse_value(text: str) -> Any:
    """Parse one value literal."""
    text = text.strip()
    if text == "()":
        return ()
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return python_ast.literal_eval(text)
    except (ValueError, SyntaxError):
        raise TraceError(f"cannot parse value {text!r}") from None


def format_value(value: Any) -> str:
    """Render one value as a trace literal."""
    if value == () and isinstance(value, tuple):
        return "()"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        # JSON string escaping is a subset of Python string literals,
        # so the result always round-trips through parse_value.
        import json

        return json.dumps(value)
    return repr(value)


def read_trace(source: Union[str, TextIO]) -> Traces:
    """Parse trace text (or a file object) into per-stream event lists.

    Events may arrive in any order in the text; the result is sorted by
    timestamp per stream.  Two events on one stream at one timestamp
    are rejected.
    """
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = source
    traces: Traces = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split("--")[0].split("#")[0].strip()
        if not line:
            continue
        match = _LINE_RE.match(line)
        if match is None:
            raise TraceError(f"line {lineno}: cannot parse {raw!r}")
        ts = int(match.group("ts"))
        if ts < 0:
            raise TraceError(f"line {lineno}: negative timestamp {ts}")
        name = match.group("name")
        value_text = match.group("value")
        value = () if value_text is None else parse_value(value_text)
        traces.setdefault(name, []).append((ts, value))
    for name, events in traces.items():
        events.sort(key=lambda e: e[0])
        for (t1, _), (t2, _) in zip(events, events[1:]):
            if t1 == t2:
                raise TraceError(
                    f"stream {name!r} has two events at timestamp {t1}"
                )
    return traces


def write_trace(traces: Mapping[str, Iterable[Event]]) -> str:
    """Render traces chronologically in the TeSSLa trace format."""
    merged: List[Tuple[int, str, Any]] = []
    for name, events in traces.items():
        for ts, value in events:
            merged.append((ts, name, value))
    merged.sort(key=lambda e: (e[0], e[1]))
    lines = []
    for ts, name, value in merged:
        if value == () and isinstance(value, tuple):
            lines.append(f"{ts}: {name}")
        else:
            lines.append(f"{ts}: {name} = {format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")
