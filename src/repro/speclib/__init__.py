"""Ready-made specifications: the paper's worked examples and the six
evaluation monitors (§V), shared by tests, examples and benchmarks."""

from .evaluation import (
    db_access_constraint,
    db_time_constraint,
    map_window,
    peak_detection,
    queue_window,
    seen_set,
    spectrum_calculation,
    vector_window,
    watchdog,
)
from .paper_figures import fig1_spec, fig4_lower_spec, fig4_upper_spec

__all__ = [
    "db_access_constraint",
    "db_time_constraint",
    "fig1_spec",
    "fig4_lower_spec",
    "fig4_upper_spec",
    "map_window",
    "peak_detection",
    "queue_window",
    "seen_set",
    "spectrum_calculation",
    "vector_window",
    "watchdog",
]
