"""Ready-made specifications: the paper's worked examples and the six
evaluation monitors (§V), shared by tests, examples and benchmarks."""

from .evaluation import (
    db_access_constraint,
    db_time_constraint,
    map_window,
    peak_detection,
    queue_window,
    seen_set,
    spectrum_calculation,
    vector_window,
    watchdog,
)
from .denormalized import (
    DENORMALIZED,
    denorm_dead_writer,
    denorm_dup_writer,
    denorm_nil_merge,
    denorm_scalar_chain,
)
from .paper_figures import fig1_spec, fig4_lower_spec, fig4_upper_spec
from .windows import (
    running_aggregate,
    session_window,
    sliding_window,
    tumbling_window,
    window,
)

__all__ = [
    "DENORMALIZED",
    "db_access_constraint",
    "db_time_constraint",
    "denorm_dead_writer",
    "denorm_dup_writer",
    "denorm_nil_merge",
    "denorm_scalar_chain",
    "fig1_spec",
    "fig4_lower_spec",
    "fig4_upper_spec",
    "map_window",
    "peak_detection",
    "queue_window",
    "running_aggregate",
    "seen_set",
    "session_window",
    "sliding_window",
    "spectrum_calculation",
    "tumbling_window",
    "vector_window",
    "watchdog",
    "window",
]
