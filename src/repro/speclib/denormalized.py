"""Deliberately de-normalized specifications for the rewrite optimizer.

Each spec here is semantically equivalent to a clean paper-style spec
but written the way a careless author might: duplicated streams, dead
second writers, ``merge``-with-``nil`` identities, chains of scalar
lifts.  As written, the mutability analysis (Def. 7) must demote the
aggregate family to persistent backends — typically via the rule-1
double-write — so they certify **zero** mutable aggregate streams.
After the rewrite optimizer (:mod:`repro.opt`) normalizes them, the
family becomes mutable again.

These back the optimizer's claim tests: on each fixture the certified
mutable-variable count strictly increases (and ``copies_performed``
strictly drops) under ``rewrite=True``, while outputs stay
byte-identical.
"""

from __future__ import annotations

from ..lang import INT, Last, Lift, Merge, Specification, UnitExpr, Var
from ..lang.ast import Nil
from ..lang.builtins import builtin
from ..lang.types import SetType


def denorm_dup_writer() -> Specification:
    """Figure 1 with the ``setAdd`` update written twice.

    ``y`` feeds the recursion and ``y2`` — the *same* equation — feeds
    the output query.  Two write edges from ``yl`` violate rule 1, so
    the whole family is persistent.  Duplicate-stream elimination
    (OPT001) merges ``y2`` into ``y``; the single remaining write is
    certified mutable.
    """
    i = Var("i")
    return Specification(
        inputs={"i": INT},
        definitions={
            "m": Merge(Var("y"), Lift(builtin("set_empty"), (UnitExpr(),))),
            "yl": Last(Var("m"), i),
            "y": Lift(builtin("set_add"), (Var("yl"), i)),
            "y2": Lift(builtin("set_add"), (Var("yl"), i)),
            "s": Lift(builtin("set_contains"), (Var("y2"), i)),
        },
        outputs=["s"],
    )


def denorm_dead_writer() -> Specification:
    """Figure 1 plus a *dead* second writer on another input.

    ``y2`` updates the set on ``j`` events but nothing depends on it —
    yet its write edge still violates rule 1 and demotes the family.
    Dead-stream elimination (OPT005) removes it; the live family is
    certified mutable.
    """
    i = Var("i")
    return Specification(
        inputs={"i": INT, "j": INT},
        definitions={
            "m": Merge(Var("y"), Lift(builtin("set_empty"), (UnitExpr(),))),
            "yl": Last(Var("m"), i),
            "y": Lift(builtin("set_add"), (Var("yl"), i)),
            "y2": Lift(builtin("set_add"), (Var("yl"), Var("j"))),
            "s": Lift(builtin("set_contains"), (Var("yl"), i)),
        },
        outputs=["s"],
    )


def denorm_nil_merge() -> Specification:
    """A duplicated accumulator hidden behind a ``merge``-with-``nil``.

    ``mm = merge(m, z)`` with ``z`` empty is an identity of ``m``, but
    syntactically it splits the recursion into two ``last`` streams and
    two writers — rule 1 again, persistent.  The fix cascades: OPT002
    collapses the identity merge, which makes ``ylx`` a duplicate of
    ``yl`` (OPT001), which makes the second writer a duplicate of the
    first (OPT001), and OPT005 sweeps the orphaned ``nil``.
    """
    i = Var("i")
    return Specification(
        inputs={"i": INT},
        definitions={
            "z": Nil(SetType(INT)),
            "m": Merge(Var("y"), Lift(builtin("set_empty"), (UnitExpr(),))),
            "mm": Merge(Var("m"), Var("z")),
            "yl": Last(Var("m"), i),
            "ylx": Last(Var("mm"), i),
            "y": Lift(builtin("set_add"), (Var("yl"), i)),
            "w2": Lift(builtin("set_add"), (Var("ylx"), i)),
            "s": Lift(builtin("set_contains"), (Var("w2"), i)),
        },
        outputs=["s"],
    )


def denorm_scalar_chain() -> Specification:
    """A scalar pipeline with fusion and constant-folding headroom.

    ``q = (x * x) + x`` through a single-use intermediate (fused by
    OPT003), a constant expression ``5 = 2 + 3`` on the shared unit
    clock (folded by OPT004), and a ``last`` over a provably empty
    trigger (normalized to ``nil`` by OPT006, then merged/swept).  No
    aggregates — exercises the scalar half of the rule catalogue.
    """
    from ..lang import Const

    x = Var("x")
    return Specification(
        inputs={"x": INT},
        definitions={
            "two": Const(2),
            "three": Const(3),
            "five": Lift(builtin("add"), (Var("two"), Var("three"))),
            "never": Last(x, Var("empty")),
            "empty": Nil(INT),
            "t1": Lift(builtin("mul"), (x, x)),
            "q": Lift(builtin("add"), (Var("t1"), x)),
            "out2": Merge(Var("q"), Var("never")),
        },
        outputs=["out2", "five"],
    )


DENORMALIZED = {
    "dup_writer": denorm_dup_writer,
    "dead_writer": denorm_dead_writer,
    "nil_merge": denorm_nil_merge,
    "scalar_chain": denorm_scalar_chain,
}
