"""The six evaluation monitors of the paper (§V).

Synthetic (§V-A): *Seen Set*, *Map Window*, *Queue Window* — standard
use cases of the three data structures without unrelated code, giving an
idea of the maximal reachable speedup.

Real-world (§V-B): *DBTimeConstraint*, *DBAccessConstraint* over a
database operation log, and *PeakDetection*, *SpectrumCalculation* over
power-consumption data.

All specs follow the paper's Fig. 1 shape: the aggregate stream is
merged with its empty constructor (initializing it at timestamp 0), a
``last`` samples that merge at the trigger, reads happen on the sampled
value, and a single write produces the next version.  This is the shape
the mutability analysis proves in-place-safe; the benchmarks then
compare the optimized (mutable) against the non-optimized (persistent)
compilation of the *same* spec.

Constants (window sizes, thresholds) are baked into ``pointwise``
lifted functions rather than routed through constant streams — constant
streams only carry an event at timestamp 0 and would starve strict
lifts afterwards.
"""

from __future__ import annotations

from ..lang import (
    BOOL,
    Delay,
    FLOAT,
    INT,
    Const,
    Last,
    Lift,
    MapType,
    Merge,
    QueueType,
    Specification,
    TimeExpr,
    UnitExpr,
    Var,
    VectorType,
)
from ..lang.builtins import (
    Access,
    EventPattern,
    LiftedFunction,
    builtin,
    pointwise,
)
from ..structures.interface import EmptyCollectionError

_R = Access.READ
_N = Access.NONE


def _empty(constructor: str) -> Lift:
    return Lift(builtin(constructor), (UnitExpr(),))


# ---------------------------------------------------------------------------
# Synthetic specifications (§V-A)
# ---------------------------------------------------------------------------


def seen_set() -> Specification:
    """Seen Set: toggle membership of each input, report prior presence.

    "A set keeps track of values that have occurred in the past.  If the
    new value is already contained in the set, it is removed, if not it
    is added.  Additionally the specification prints out whether the
    element has already been contained."  The set size is bounded by the
    input value domain, which is how the benchmark controls the
    small/medium/large variants.
    """
    i = Var("i")
    return Specification(
        inputs={"i": INT},
        definitions={
            "seen_m": Merge(Var("seen"), _empty("set_empty")),
            "seen_l": Last(Var("seen_m"), i),
            "was": Lift(builtin("set_contains"), (Var("seen_l"), i)),
            "seen": Lift(builtin("set_toggle"), (Var("seen_l"), i)),
        },
        outputs=["was"],
    )


def map_window(size: int) -> Specification:
    """Map Window: ring buffer of the last *size* values in a map.

    "We store the last n data values which occurred on a stream.  In
    our implementation we use a map as a ring buffer, depicting a
    position index to its value.  Further we print out the n-th last
    value at every new input that arrives."
    """
    inc = pointwise("inc", lambda x: x + 1, (INT,), INT)
    mod_n = pointwise(f"mod{size}", lambda x, _n=size: x % _n, (INT,), INT)
    get_or = pointwise(
        "map_get_or(-1)",
        lambda m, k: m.get(k, -1),
        (MapType(INT, INT), INT),
        INT,
        access=(_R, _N),
    )
    i = Var("i")
    return Specification(
        inputs={"i": INT},
        definitions={
            # Modulo-n event counter (event at 0 from the constant).
            "cnt_l": Last(Var("cnt"), i),
            "cnt": Merge(Lift(inc, (Var("cnt_l"),)), Const(0)),
            "pos": Lift(mod_n, (Var("cnt"),)),
            # The ring-buffer map, in the Fig. 1 shape.
            "mw_m": Merge(Var("mw"), _empty("map_empty")),
            "mw_l": Last(Var("mw_m"), i),
            "nth": Lift(get_or, (Var("mw_l"), Var("pos"))),
            "mw": Lift(builtin("map_put"), (Var("mw_l"), Var("pos"), i)),
        },
        outputs=["nth"],
    )


def queue_window(size: int) -> Specification:
    """Queue Window: the Map Window behaviour with a FIFO queue.

    "Every new input event is enqueued at back and the first element of
    the queue is printed and removed" (once the window is full).
    """
    is_full = pointwise(
        f"geq{size}", lambda n, _n=size: n >= _n, (INT,), BOOL
    )
    # The head is only read once the window is full — "the first element
    # of the queue is printed and removed".  Reading it unconditionally
    # would repeatedly reverse the banker's queue's back list while the
    # window is still filling (the front list stays empty until the
    # first dequeue), an O(window²) artifact the paper's monitor avoids.
    front_if = pointwise(
        "queue_front_if(-1)",
        lambda q, full: q.front() if (full and len(q)) else -1,
        (QueueType(INT), BOOL),
        INT,
        access=(_R, _N),
    )
    i = Var("i")
    return Specification(
        inputs={"i": INT},
        definitions={
            "q_m": Merge(Var("q"), _empty("queue_empty")),
            "q_l": Last(Var("q_m"), i),
            "q1": Lift(builtin("queue_enq"), (Var("q_l"), i)),
            "sz": Lift(builtin("queue_size"), (Var("q1"),)),
            "full": Lift(is_full, (Var("sz"),)),
            "head": Lift(front_if, (Var("q1"), Var("full"))),
            "nth": Lift(builtin("filter"), (Var("head"), Var("full"))),
            "q": Lift(builtin("queue_deq_if"), (Var("q1"), Var("full"))),
        },
        outputs=["nth"],
    )


def vector_window(size: int) -> Specification:
    """Vector Window (extension): the Map Window behaviour on an indexed
    vector — arrays being the classic subject of the aggregate update
    problem (Hudak/Bloss).  The ring buffer is a Vector written with
    functional index updates; reads fetch the slot about to be
    overwritten.
    """
    inc = pointwise("inc", lambda x: x + 1, (INT,), INT)
    mod_n = pointwise(f"mod{size}", lambda x, _n=size: x % _n, (INT,), INT)
    get_or = pointwise(
        "vec_get_or(-1)",
        lambda v, i: v.get(i) if 0 <= i < len(v) else -1,
        (VectorType(INT), INT),
        INT,
        access=(_R, _N),
    )

    def put(vector, index, value):
        if index < len(vector):
            return vector.set(index, value)
        return vector.append(value)

    vec_put = LiftedFunction(
        "vec_put",
        EventPattern.ALL,
        (Access.WRITE, _N, _N),
        (VectorType(INT), INT, INT),
        VectorType(INT),
        lambda backend: put,
    )
    i = Var("i")
    return Specification(
        inputs={"i": INT},
        definitions={
            "cnt_l": Last(Var("cnt"), i),
            "cnt": Merge(Lift(inc, (Var("cnt_l"),)), Const(0)),
            "pos": Lift(mod_n, (Var("cnt"),)),
            "vw_m": Merge(Var("vw"), _empty("vec_empty")),
            "vw_l": Last(Var("vw_m"), i),
            "nth": Lift(get_or, (Var("vw_l"), Var("pos"))),
            "vw": Lift(vec_put, (Var("vw_l"), Var("pos"), i)),
        },
        outputs=["nth"],
    )


def watchdog(timeout: int = 10) -> Specification:
    """Watchdog (extension, exercises ``delay``): emit an alarm when no
    heartbeat arrives for *timeout* time units.

    The delay re-arms on every heartbeat; if it ever fires, the gap
    exceeded the timeout.  Multi-clocked output: alarms occur at
    timestamps where NO input has an event — only ``delay`` can do that
    (paper §III-B).
    """
    period = pointwise(
        f"timeout{timeout}", lambda _v, _t=timeout: _t, (INT,), INT
    )
    hb = Var("hb")
    return Specification(
        inputs={"hb": INT},
        definitions={
            "d": Lift(period, (hb,)),
            "alarm": Delay(Var("d"), hb),
            "alarm_at": TimeExpr(Var("alarm")),
        },
        outputs=["alarm_at"],
    )


def _front_or_default(default):
    def front_or(queue, _d=default):
        try:
            return queue.front()
        except EmptyCollectionError:
            return _d

    return front_or


# ---------------------------------------------------------------------------
# Real-world specifications (§V-B)
# ---------------------------------------------------------------------------


def db_time_constraint(limit: int = 60) -> Specification:
    """DBTimeConstraint: db3 inserts must follow db2 inserts within *limit*.

    "If data was added to database db3 then it had to be added to db2
    during the last 60 seconds.  We check this by maintaining a map with
    the insertion times of db2."  Inputs carry record ids; timestamps
    are the event times.
    """
    never = -(10**12)
    get_time = pointwise(
        "ins_time_or(-inf)",
        lambda m, k, _d=never: m.get(k, _d),
        (MapType(INT, INT), INT),
        INT,
        access=(_R, _N),
    )
    within = pointwise(
        f"within{limit}", lambda t3, t2, _l=limit: t3 - t2 <= _l, (INT, INT), BOOL
    )
    db2, db3 = Var("db2"), Var("db3")
    return Specification(
        inputs={"db2": INT, "db3": INT},
        definitions={
            "tick": Merge(db2, db3),
            "t_now": TimeExpr(Var("tick")),
            "m_m": Merge(Var("m"), _empty("map_empty")),
            "m_l": Last(Var("m_m"), Var("tick")),
            "t3": TimeExpr(db3),
            "tins": Lift(get_time, (Var("m_l"), db3)),
            "ok": Lift(within, (Var("t3"), Var("tins"))),
            "m": Lift(builtin("map_put_if"), (Var("m_l"), db2, Var("t_now"))),
        },
        outputs=["ok"],
    )


def db_access_constraint() -> Specification:
    """DBAccessConstraint: no access before insert or after delete.

    "A record may not be accessed before it was inserted or after it was
    deleted in a database.  We use a set of all currently inserted IDs
    to check this."  Inputs: ``ins``/``del_``/``acc`` carry record ids.
    """
    ins, del_, acc = Var("ins"), Var("del_"), Var("acc")
    return Specification(
        inputs={"ins": INT, "del_": INT, "acc": INT},
        definitions={
            "tick": Merge(Merge(ins, del_), acc),
            "s_m": Merge(Var("cur"), _empty("set_empty")),
            "s_l": Last(Var("s_m"), Var("tick")),
            "ok": Lift(builtin("set_contains"), (Var("s_l"), acc)),
            "cur": Lift(builtin("set_update_if"), (Var("s_l"), ins, del_)),
        },
        outputs=["ok"],
    )


def peak_detection(window: int = 30, deviation: float = 0.4) -> Specification:
    """PeakDetection: flag samples deviating >40 % from the moving average.

    "We check if a value is 40 % lower or higher than the medium of the
    values [around it].  For this we require a queue to calculate the
    moving average."  The queue holds the last *window* samples; the
    value leaving the window is compared against the window mean.
    """
    is_full = pointwise(
        f"geq{window}", lambda n, _n=window: n >= _n, (INT,), BOOL
    )
    front_or = pointwise(
        "queue_front_or(0.0)",
        _front_or_default(0.0),
        (QueueType(FLOAT),),
        FLOAT,
        access=(_R,),
    )
    sub_if = pointwise(
        "sub_if",
        lambda total, leaving, full: total - leaving if full else total,
        (FLOAT, FLOAT, BOOL),
        FLOAT,
    )
    mean_of = pointwise(
        "mean_of",
        lambda total, count: total / count if count else 0.0,
        (FLOAT, INT),
        FLOAT,
    )
    deviates = pointwise(
        f"deviates{deviation}",
        lambda value, mean, full, _d=deviation: bool(
            full and abs(value - mean) > _d * max(abs(mean), 1e-9)
        ),
        (FLOAT, FLOAT, BOOL),
        BOOL,
    )
    x = Var("x")
    return Specification(
        inputs={"x": FLOAT},
        definitions={
            "q_m": Merge(Var("q"), _empty("queue_empty")),
            "q_l": Last(Var("q_m"), x),
            "s_m": Merge(Var("s"), Const(0.0)),
            "s_l": Last(Var("s_m"), x),
            "s1": Lift(builtin("fadd"), (Var("s_l"), x)),
            "q1": Lift(builtin("queue_enq"), (Var("q_l"), x)),
            "sz": Lift(builtin("queue_size"), (Var("q1"),)),
            "full": Lift(is_full, (Var("sz"),)),
            "old": Lift(front_or, (Var("q1"),)),
            "q": Lift(builtin("queue_deq_if"), (Var("q1"), Var("full"))),
            "s": Lift(sub_if, (Var("s1"), Var("old"), Var("full"))),
            "szq": Lift(builtin("queue_size"), (Var("q"),)),
            "mean": Lift(mean_of, (Var("s"), Var("szq"))),
            "peak": Lift(deviates, (Var("old"), Var("mean"), Var("full"))),
        },
        outputs=["peak"],
    )


def spectrum_calculation(
    bucket_width: float = 100.0, threshold: float = 5000.0
) -> Specification:
    """SpectrumCalculation: histogram of power values in a map.

    "We calculate a spectrum how the values of the power consumption are
    distributed in a map data structure which are in the end used to
    calculate how often the measured power consumption is above a
    certain threshold."
    """
    bucket = pointwise(
        f"bucket{bucket_width}",
        lambda v, _w=bucket_width: int(v // _w),
        (FLOAT,),
        INT,
    )
    get_count = pointwise(
        "hist_get(0)",
        lambda m, k: m.get(k, 0),
        (MapType(INT, INT), INT),
        INT,
        access=(_R, _N),
    )
    inc = pointwise("inc", lambda c: c + 1, (INT,), INT)
    count_if_above = pointwise(
        f"count_above{threshold}",
        lambda acc, v, _t=threshold: acc + 1 if v > _t else acc,
        (INT, FLOAT),
        INT,
    )
    x = Var("x")
    return Specification(
        inputs={"x": FLOAT},
        definitions={
            "h_m": Merge(Var("h"), _empty("map_empty")),
            "h_l": Last(Var("h_m"), x),
            "b": Lift(bucket, (x,)),
            "c_old": Lift(get_count, (Var("h_l"), Var("b"))),
            "c_new": Lift(inc, (Var("c_old"),)),
            "h": Lift(builtin("map_put"), (Var("h_l"), Var("b"), Var("c_new"))),
            "a_m": Merge(Var("above"), Const(0)),
            "a_l": Last(Var("a_m"), x),
            "above": Lift(count_if_above, (Var("a_l"), x)),
        },
        outputs=["c_new", "above"],
    )
