"""The worked examples of the paper, transcribed as specifications.

These are the specs the paper's analysis sections reason about; unit
tests assert that our implementation reproduces the published analysis
outcomes (edge classes in Fig. 3, mutability sets in Fig. 7, the
persistent verdict for the lower Fig. 4 variant).
"""

from __future__ import annotations

from ..lang import INT, Last, Lift, Merge, Specification, UnitExpr, Var
from ..lang.builtins import builtin


def fig1_spec() -> Specification:
    """Figure 1: aggregate inputs in a set, report repeats.

    .. code-block:: none

        in i: Events[Int]
        def y  := setAdd(merge(last(y, i), Set.empty[Int]), i)   -- via y_l
        def y_l := merge(last(y, i), Set.empty[Int])             -- desugared
        def s  := contains(y_l, i)
        out s

    (Transcribed in the flattened shape the paper uses from §II on:
    ``u = unit``, ``∅ = lift(f_∅)(u)``, ``m = merge(y, ∅)``,
    ``y_l = last(m, i)``, ``y = lift(setAdd)(y_l, i)``,
    ``s = lift(contains)(y_l, i)``.)
    """
    i = Var("i")
    return Specification(
        inputs={"i": INT},
        definitions={
            "m": Merge(Var("y"), Lift(builtin("set_empty"), (UnitExpr(),))),
            "yl": Last(Var("m"), i),
            "y": Lift(builtin("set_add"), (Var("yl"), i)),
            "s": Lift(builtin("set_contains"), (Var("yl"), i)),
        },
        outputs=["s"],
    )


def fig4_upper_spec() -> Specification:
    """Figure 4 (upper): accumulate on ``i1``, query on ``i2``.

    All updates can be done in place: the set on ``y`` is only modified
    to create ``y``'s next event; the old event is never accessed again
    once ``y'`` and ``s`` are computed first.
    """
    i1, i2 = Var("i1"), Var("i2")
    return Specification(
        inputs={"i1": INT, "i2": INT},
        definitions={
            "m": Merge(Var("y"), Lift(builtin("set_empty"), (UnitExpr(),))),
            "yl": Last(Var("m"), i1),
            "y": Lift(builtin("set_add"), (Var("yl"), i1)),
            "yp": Last(Var("y"), i2),
            "s": Lift(builtin("set_contains"), (Var("yp"), i2)),
        },
        outputs=["s"],
    )


def fig4_lower_spec() -> Specification:
    """Figure 4 (lower): the update can NOT be done in place.

    ``s`` results from a *modification* of the reproduced set, while the
    very same set is required again at the next timestamp — the last is
    replicating, so the family must stay persistent.

    .. code-block:: none

        in i1: Events[Int]
        in i2: Events[Int]
        def y  := setAdd(merge(last(y, i1), Set.empty[Int]), i1)
        def y' := last(y, i2)          -- reproduces the same event twice
        def s  := setAdd(y', i2)       -- modifies the reproduced set
        out s
    """
    i1, i2 = Var("i1"), Var("i2")
    return Specification(
        inputs={"i1": INT, "i2": INT},
        definitions={
            "m": Merge(Var("y"), Lift(builtin("set_empty"), (UnitExpr(),))),
            "yl": Last(Var("m"), i1),
            "y": Lift(builtin("set_add"), (Var("yl"), i1)),
            "yp": Last(Var("y"), i2),
            "s": Lift(builtin("set_add"), (Var("yp"), i2)),
        },
        outputs=["s"],
    )
