"""Event-time windows as Fig. 1-shaped macros over the basic operators.

Each window keeps its content in FIFO queues — arrival timestamps
(``tq``) and, when the aggregate needs them, values (``vq``) — in the
paper's Fig. 1 shape: the queue is merged with its empty constructor, a
``last`` samples it at the input, a ``queue_enq`` admits the new event
and a ``win_pop_n`` evicts the expired prefix.  The mutability analysis
certifies both writes as in-place, so the per-event window maintenance
runs without structural copies.

Aggregates split by invertibility (:data:`repro.lang.windows.AGGREGATES`):

* COUNT/SUM/AVG are maintained by an O(1) **delta** — add the new
  event's contribution, subtract what the eviction removed — in a
  scalar Fig. 1 group (``s := s_last + new − expired``).
* MIN/MAX/DISTINCT have no inverse; they are **recomputed** by folding
  over the live value queue (sliding) or the expired prefix (tumbling /
  session) — the guarded O(window) fallback.

The two paths are observable: delta lifts carry the
``window.delta_updates`` metric, fold lifts ``window.recomputes``
(bumped when the monitor runs instrumented, e.g. ``repro run
--metrics``), and the diagnostics pass reports the chosen path per spec
as ``WIN001``/``WIN002`` notes.

Timestamp 0 is the initialization instant of the Fig. 1 groups (the
``last`` samples strictly earlier events), so window inputs follow the
repo-wide convention that payload events start at t ≥ 1.  Windows close
on event arrival: a trailing partial window is not flushed at end of
input — feed a heartbeat event past the horizon to force the flush.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..lang import (
    BOOL,
    FLOAT,
    INT,
    Const,
    Last,
    Lift,
    Merge,
    QueueType,
    Specification,
    TimeExpr,
    UnitExpr,
    Var,
)
from ..lang.builtins import Access, builtin, pointwise
from ..lang.windows import AGGREGATES, WindowParams
from ..obs.metrics import WINDOW_DELTA_UPDATES, WINDOW_RECOMPUTES

_R = Access.READ
_N = Access.NONE
_W = Access.WRITE

_QI = QueueType(INT)


def _empty(constructor: str) -> Lift:
    return Lift(builtin(constructor), (UnitExpr(),))


def _pop_n(q, n):
    for _ in range(n):
        q = q.dequeue()
    return q


#: Evict the expired prefix: pop *n* entries off the front.  The single
#: Write edge of the queue group's second chained update (the first is
#: the ``queue_enq`` admitting the new event).
_WIN_POP_N = pointwise("win_pop_n", _pop_n, (_QI, INT), _QI, access=(_W, _N))


def _expired_count(tq, limit):
    count = 0
    for ts in tq:
        if ts > limit:
            break
        count += 1
    return count


def _expired_sum(tq, vq, limit):
    total = 0
    for ts, value in zip(tq, vq):
        if ts > limit:
            break
        total += value
    return total


#: Number of front entries at or before the eviction limit.  Early-exits
#: at the first surviving timestamp, so the per-event cost is
#: O(expired + 1), not O(window).
_WIN_EXPIRED_COUNT = pointwise(
    "win_expired_count", _expired_count, (_QI, INT), INT, access=(_R, _N)
)
_WIN_EXPIRED_SUM = pointwise(
    "win_expired_sum", _expired_sum, (_QI, _QI, INT), INT, access=(_R, _R, _N)
)

#: O(1) delta maintenance for the invertible aggregates.
_WIN_SUM_DELTA = pointwise(
    "win_sum_delta",
    lambda s, new, expired: s + new - expired,
    (INT, INT, INT),
    INT,
    metric_name=WINDOW_DELTA_UPDATES,
)
_WIN_COUNT_DELTA = pointwise(
    "win_count_delta",
    lambda c, expired: c + 1 - expired,
    (INT, INT),
    INT,
    metric_name=WINDOW_DELTA_UPDATES,
)
_WIN_AVG = pointwise(
    "win_avg",
    lambda s, c: s / c if c else 0.0,
    (INT, INT),
    FLOAT,
)

_GT0 = pointwise("win_gt0", lambda n: n > 0, (INT,), BOOL)


def _fold_fn(aggregate: str):
    if aggregate == "min":
        return min
    if aggregate == "max":
        return max
    return lambda values: len(set(values))


def _live_fold(aggregate: str):
    """Fold over the whole (non-empty) live value queue."""
    fold = _fold_fn(aggregate)
    return pointwise(
        f"win_fold_{aggregate}",
        lambda vq, _fold=fold: _fold(list(vq)),
        (_QI,),
        INT,
        access=(_R,),
        metric_name=WINDOW_RECOMPUTES,
    )


def _expired_fold(aggregate: str):
    """Fold over the expired prefix (0 when nothing expired; the result
    is only emitted behind an ``exp_cnt > 0`` filter)."""
    fold = _fold_fn(aggregate)

    def run(tq, vq, limit, _fold=fold):
        expired = []
        for ts, value in zip(tq, vq):
            if ts > limit:
                break
            expired.append(value)
        return _fold(expired) if expired else 0

    return pointwise(
        f"win_expired_{aggregate}",
        run,
        (_QI, _QI, INT),
        INT,
        access=(_R, _R, _N),
        metric_name=WINDOW_RECOMPUTES,
    )


def _limit_lift(params: WindowParams):
    """The eviction limit: entries with ``ts <= limit`` leave the window."""
    if params.kind == "sliding":
        period = params.period

        def slide(t, _p=period):
            return t - _p

        return pointwise(f"win_limit_slide{period}", slide, (INT,), INT)
    assert params.kind == "tumbling"
    period, watermark = params.period, params.watermark

    def tumble(t, _p=period, _w=watermark):
        # Flush buckets whose end has passed the watermark; bucket k is
        # [k*p, (k+1)*p), so everything before the current bucket start
        # (computed on the watermark-delayed clock) expires.
        return ((t - _w) // _p) * _p - 1 if t >= _w else -1

    return pointwise(f"win_limit_tumble{period}w{watermark}", tumble, (INT,), INT)


def window(
    aggregate: str,
    *,
    kind: str,
    period: Optional[int] = None,
    gap: Optional[int] = None,
    watermark: int = 0,
    min_separation: int = 0,
) -> Specification:
    """An event-time window monitor over one INT input stream ``x``.

    Emits the aggregate on stream ``win``: at every input event for
    sliding windows (optionally rate-limited by *min_separation*), and
    at window close for tumbling and session windows.  A tumbling flush
    that was delayed past several bucket ends (sparse input) coalesces
    those buckets into one emission.
    """
    agg = AGGREGATES.get(aggregate)
    if agg is None:
        raise ValueError(
            f"unknown window aggregate {aggregate!r};"
            f" expected one of {sorted(AGGREGATES)}"
        )
    params = WindowParams(
        kind=kind,
        period=period,
        gap=gap,
        watermark=watermark,
        min_separation=min_separation,
    )

    x = Var("x")
    needs_values = agg.name != "count"
    defs: Dict[str, object] = {"t_now": TimeExpr(x)}
    delta_streams: List[str] = []
    fold_streams: List[str] = []

    # --- eviction limit ---------------------------------------------------
    if params.kind == "session":
        gap_v = params.gap

        def session_limit(t, prev, _g=gap_v):
            return t - 1 if t - prev > _g else -1

        defs["tm"] = Merge(Var("t_now"), Const(-1))
        defs["t_prev"] = Last(Var("tm"), x)
        defs["limit"] = Lift(
            pointwise(f"win_limit_session{gap_v}", session_limit, (INT, INT), INT),
            (Var("t_now"), Var("t_prev")),
        )
    else:
        defs["limit"] = Lift(_limit_lift(params), (Var("t_now"),))

    # --- timestamp queue (Fig. 1 shape, two chained writes) ---------------
    defs["tq_m"] = Merge(Var("tq"), _empty("queue_empty"))
    defs["tq_l"] = Last(Var("tq_m"), x)
    defs["tq1"] = Lift(builtin("queue_enq"), (Var("tq_l"), Var("t_now")))
    defs["exp_cnt"] = Lift(_WIN_EXPIRED_COUNT, (Var("tq1"), Var("limit")))
    defs["tq"] = Lift(_WIN_POP_N, (Var("tq1"), Var("exp_cnt")))

    # --- value queue (only when the aggregate reads values) ---------------
    if needs_values:
        defs["vq_m"] = Merge(Var("vq"), _empty("queue_empty"))
        defs["vq_l"] = Last(Var("vq_m"), x)
        defs["vq1"] = Lift(builtin("queue_enq"), (Var("vq_l"), x))
        defs["vq"] = Lift(_WIN_POP_N, (Var("vq1"), Var("exp_cnt")))

    # --- aggregate value --------------------------------------------------
    if params.kind == "sliding":
        gated = bool(params.min_separation)
        raw = _sliding_aggregate(
            agg.name,
            defs,
            x,
            delta_streams,
            fold_streams,
            out="win_raw" if gated else "win",
        )
        if gated:
            min_sep = params.min_separation
            defs["e_m"] = Merge(Var("e_t"), Const(-min_sep))
            defs["e_l"] = Last(Var("e_m"), x)
            defs["ok"] = Lift(
                pointwise(
                    f"win_minsep{min_sep}",
                    lambda t, e, _m=min_sep: t - e >= _m,
                    (INT, INT),
                    BOOL,
                ),
                (Var("t_now"), Var("e_l")),
            )
            defs["e_t"] = Lift(
                pointwise(
                    "win_emit_t",
                    lambda t, e, ok: t if ok else e,
                    (INT, INT, BOOL),
                    INT,
                ),
                (Var("t_now"), Var("e_l"), Var("ok")),
            )
            defs["win"] = Lift(builtin("filter"), (Var(raw), Var("ok")))
    else:
        raw = _closing_aggregate(agg.name, defs, fold_streams)
        defs["closed"] = Lift(_GT0, (Var("exp_cnt"),))
        defs["win"] = Lift(builtin("filter"), (Var(raw), Var("closed")))

    spec = Specification(
        inputs={"x": INT},
        definitions=defs,
        outputs=["win"],
    )
    spec.window_info = {
        "kind": params.kind,
        "describe": params.describe(),
        "aggregate": agg.name,
        "invertible": agg.invertible,
        "delta_streams": delta_streams,
        "fold_streams": fold_streams,
        "conflicts": list(params.conflicts),
        "queues": ["tq", "vq"] if needs_values else ["tq"],
        "output": "win",
    }
    return spec


def _sliding_aggregate(
    aggregate: str,
    defs: Dict[str, object],
    x: Var,
    delta_streams: List[str],
    fold_streams: List[str],
    out: str,
) -> str:
    """Define the per-event aggregate value on stream *out*."""
    if aggregate == "count":
        defs["c_m"] = Merge(Var(out), Const(0))
        defs["c_l"] = Last(Var("c_m"), x)
        defs[out] = Lift(_WIN_COUNT_DELTA, (Var("c_l"), Var("exp_cnt")))
        delta_streams.append(out)
        return out
    if aggregate in ("sum", "avg"):
        defs["exp_sum"] = Lift(
            _WIN_EXPIRED_SUM, (Var("tq1"), Var("vq1"), Var("limit"))
        )
        sum_name = out if aggregate == "sum" else "win_s"
        defs["s_m"] = Merge(Var(sum_name), Const(0))
        defs["s_l"] = Last(Var("s_m"), x)
        defs[sum_name] = Lift(_WIN_SUM_DELTA, (Var("s_l"), x, Var("exp_sum")))
        delta_streams.append(sum_name)
        if aggregate == "sum":
            return out
        defs["c_m"] = Merge(Var("win_c"), Const(0))
        defs["c_l"] = Last(Var("c_m"), x)
        defs["win_c"] = Lift(_WIN_COUNT_DELTA, (Var("c_l"), Var("exp_cnt")))
        delta_streams.append("win_c")
        defs[out] = Lift(_WIN_AVG, (Var("win_s"), Var("win_c")))
        return out
    # Non-invertible: fold the live window after the eviction write (the
    # post-write read of the Fig. 1 group, like PeakDetection's size
    # probe); the queue always holds at least the current event.
    defs[out] = Lift(_live_fold(aggregate), (Var("vq"),))
    fold_streams.append(out)
    return out


def _closing_aggregate(
    aggregate: str, defs: Dict[str, object], fold_streams: List[str]
) -> str:
    """Define the flushed-window aggregate; return its stream name."""
    if aggregate == "count":
        return "exp_cnt"
    if aggregate in ("sum", "avg"):
        defs["exp_sum"] = Lift(
            _WIN_EXPIRED_SUM, (Var("tq1"), Var("vq1"), Var("limit"))
        )
        if aggregate == "sum":
            return "exp_sum"
        defs["win_a"] = Lift(_WIN_AVG, (Var("exp_sum"), Var("exp_cnt")))
        return "win_a"
    defs["win_f"] = Lift(
        _expired_fold(aggregate), (Var("tq1"), Var("vq1"), Var("limit"))
    )
    fold_streams.append("win_f")
    return "win_f"


def tumbling_window(aggregate: str, period: int, watermark: int = 0) -> Specification:
    """Aligned buckets ``[k*period, (k+1)*period)``; a bucket is flushed
    once an event arrives past its end plus *watermark*."""
    return window(aggregate, kind="tumbling", period=period, watermark=watermark)


def sliding_window(
    aggregate: str, period: int, min_separation: int = 0
) -> Specification:
    """Aggregate over ``(t - period, t]``, emitted at every event — or at
    most once per *min_separation* time units when given."""
    return window(
        aggregate, kind="sliding", period=period, min_separation=min_separation
    )


def session_window(aggregate: str, gap: int) -> Specification:
    """Sessions separated by silences longer than *gap*; the finished
    session's aggregate is emitted on the first event after the silence."""
    return window(aggregate, kind="session", gap=gap)


def running_aggregate(aggregate: str) -> Specification:
    """An unbounded (never-evicting) aggregate: ``win = op(win_last, x)``.

    Lowered in the exact self-seeded scan shape the vector engine
    recognizes (``merge(op(last(win, x), x), x)``), so batches execute as
    a NumPy prefix scan (``np.add.accumulate`` & friends) instead of the
    scalar feedback loop.  Supported: ``sum``, ``max``, ``min``.
    """
    ops = {"sum": "add", "max": "max", "min": "min"}
    op = ops.get(aggregate)
    if op is None:
        raise ValueError(
            f"running_aggregate supports {sorted(ops)}, not {aggregate!r}"
        )
    x = Var("x")
    spec = Specification(
        inputs={"x": INT},
        definitions={
            "h": Last(Var("win"), x),
            "k": Lift(builtin(op), (Var("h"), x)),
            "win": Merge(Var("k"), x),
        },
        outputs=["win"],
    )
    spec.window_info = {
        "kind": "running",
        "describe": f"running({aggregate})",
        "aggregate": aggregate,
        "invertible": True,
        "delta_streams": ["win"],
        "fold_streams": [],
        "conflicts": [],
        "queues": [],
        "output": "win",
    }
    return spec
