"""Data-structure substrate: persistent, mutable and full-copy collections.

Persistent structures (HAMT set/map, banker's queue, bit-partitioned
vector) implement the immutable semantics the paper's *non-optimized*
monitors use; the mutable structures implement the in-place updates of
the *optimized* monitors; the copying structures are a naive-immutable
ablation baseline.  All variants share the ADT protocols from
:mod:`repro.structures.interface`.
"""

from .copying import CopyMap, CopyQueue, CopySet, CopyVector
from .factories import (
    Backend,
    empty_map,
    empty_queue,
    empty_set,
    empty_vector,
    make_map,
    make_queue,
    make_set,
    make_vector,
)
from .guard import (
    AliasGuardError,
    GuardedMap,
    GuardedQueue,
    GuardedSet,
    GuardedVector,
)
from .hamt import EMPTY_HAMT, Hamt, hamt_from
from .interface import (
    EmptyCollectionError,
    MapBase,
    QueueBase,
    SetBase,
    VectorBase,
)
from .mutable import MutableMap, MutableQueue, MutableSet, MutableVector
from .pmap import EMPTY_PERSISTENT_MAP, PersistentMap, persistent_map
from .pqueue import EMPTY_PERSISTENT_QUEUE, PersistentQueue, persistent_queue
from .pset import EMPTY_PERSISTENT_SET, PersistentSet, persistent_set
from .pvector import (
    EMPTY_PERSISTENT_VECTOR,
    PersistentVector,
    persistent_vector,
)

__all__ = [
    "AliasGuardError",
    "Backend",
    "CopyMap",
    "CopyQueue",
    "CopySet",
    "CopyVector",
    "EMPTY_HAMT",
    "GuardedMap",
    "GuardedQueue",
    "GuardedSet",
    "GuardedVector",
    "EMPTY_PERSISTENT_MAP",
    "EMPTY_PERSISTENT_QUEUE",
    "EMPTY_PERSISTENT_SET",
    "EMPTY_PERSISTENT_VECTOR",
    "EmptyCollectionError",
    "Hamt",
    "MapBase",
    "MutableMap",
    "MutableQueue",
    "MutableSet",
    "MutableVector",
    "PersistentMap",
    "PersistentQueue",
    "PersistentSet",
    "PersistentVector",
    "QueueBase",
    "SetBase",
    "VectorBase",
    "empty_map",
    "empty_queue",
    "empty_set",
    "empty_vector",
    "hamt_from",
    "make_map",
    "make_queue",
    "make_set",
    "make_vector",
    "persistent_map",
    "persistent_queue",
    "persistent_set",
    "persistent_vector",
]
