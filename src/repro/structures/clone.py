"""Structure cloning for monitor checkpoints.

Persistent and copying collections are immutable — sharing them is
safe.  Mutable collections must be duplicated, otherwise a checkpoint
would alias live monitor state and be corrupted by subsequent in-place
updates.  Guarded collections (the alias-guard sanitizer) are cloned
into a fresh structure with its own generation cell, so restoring a
checkpoint never resurrects stale handles.
"""

from __future__ import annotations

from typing import Any

from .guard import GuardedMap, GuardedQueue, GuardedSet, GuardedVector
from .mutable import MutableMap, MutableQueue, MutableSet, MutableVector


def clone_value(value: Any) -> Any:
    """A snapshot-safe copy of a stream value.

    Mutable aggregates are duplicated (shallowly — element values are
    scalars by the type system's no-nesting rule); lists (the plan
    engine's slot state) are cloned element-wise; everything else is
    returned as-is.
    """
    if isinstance(value, list):
        return [clone_value(v) for v in value]
    if isinstance(value, MutableSet):
        return MutableSet(value)
    if isinstance(value, MutableMap):
        return MutableMap(value.items())
    if isinstance(value, MutableQueue):
        return MutableQueue(value)
    if isinstance(value, MutableVector):
        return MutableVector(value)
    if isinstance(value, GuardedSet):
        return GuardedSet(value)
    if isinstance(value, GuardedMap):
        return GuardedMap(value.items())
    if isinstance(value, GuardedQueue):
        return GuardedQueue(value)
    if isinstance(value, GuardedVector):
        return GuardedVector(value)
    return value
