"""Full-copy collections: the naive immutable implementation.

These copy the entire underlying container on every update.  They are not
used by the compiler; they exist as the *ablation baseline* the paper
alludes to in §I ("a straight-forward implementation would do so as
well") — copying instead of sharing — so benchmarks can show that the
persistent structures already beat naive copying, and in-place updates
beat both.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Tuple

from .interface import (
    EmptyCollectionError,
    MapBase,
    QueueBase,
    SetBase,
    VectorBase,
)


class CopySet(SetBase):
    """Immutable set that copies all elements on every update."""

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._items = frozenset(items)

    def add(self, item: Any) -> "CopySet":
        return CopySet(self._items | {item})

    def remove(self, item: Any) -> "CopySet":
        return CopySet(self._items - {item})

    def __contains__(self, item: Any) -> bool:
        return item in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)


class CopyMap(MapBase):
    """Immutable map that copies all entries on every update."""

    __slots__ = ("_items",)

    def __init__(self, pairs: Iterable[Tuple[Any, Any]] = ()) -> None:
        self._items = dict(pairs)

    def put(self, key: Any, value: Any) -> "CopyMap":
        items = dict(self._items)
        items[key] = value
        return CopyMap(items.items())

    def remove(self, key: Any) -> "CopyMap":
        items = dict(self._items)
        items.pop(key, None)
        return CopyMap(items.items())

    def get(self, key: Any, default: Any = None) -> Any:
        return self._items.get(key, default)

    def __contains__(self, key: Any) -> bool:
        return key in self._items

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return iter(self._items.items())


class CopyQueue(QueueBase):
    """Immutable FIFO queue that copies all elements on every update."""

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._items = tuple(items)

    def enqueue(self, item: Any) -> "CopyQueue":
        return CopyQueue(self._items + (item,))

    def dequeue(self) -> "CopyQueue":
        if not self._items:
            raise EmptyCollectionError("dequeue() on empty queue")
        return CopyQueue(self._items[1:])

    def front(self) -> Any:
        if not self._items:
            raise EmptyCollectionError("front() on empty queue")
        return self._items[0]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)


class CopyVector(VectorBase):
    """Immutable indexed sequence that copies on every update."""

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._items = tuple(items)

    def append(self, item: Any) -> "CopyVector":
        return CopyVector(self._items + (item,))

    def set(self, index: int, item: Any) -> "CopyVector":
        if not 0 <= index < len(self._items):
            raise EmptyCollectionError(
                f"index {index} out of range [0, {len(self._items)})"
            )
        return CopyVector(
            self._items[:index] + (item,) + self._items[index + 1:]
        )

    def get(self, index: int) -> Any:
        if not 0 <= index < len(self._items):
            raise EmptyCollectionError(
                f"index {index} out of range [0, {len(self._items)})"
            )
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

