"""Construction-site dispatch between persistent and mutable collections.

The mutability analysis (paper §IV) assigns each stream-variable family a
*backend*: mutable if the family is in the mutability set, persistent
otherwise (plus a full-copy backend for ablation benchmarks).  Because
all variants share one ADT surface, the backend only needs to be chosen
where a collection is **created** — which is exactly how the generated
monitors inject the optimization.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Iterable, Tuple

from . import copying, guard, mutable
from .pmap import EMPTY_PERSISTENT_MAP, persistent_map
from .pqueue import EMPTY_PERSISTENT_QUEUE, persistent_queue
from .pset import EMPTY_PERSISTENT_SET, persistent_set
from .pvector import EMPTY_PERSISTENT_VECTOR, persistent_vector


class Backend(enum.Enum):
    """Which collection family a construction site should use."""

    PERSISTENT = "persistent"
    MUTABLE = "mutable"
    COPYING = "copying"
    #: Mutable semantics plus the runtime alias-guard sanitizer (see
    #: :mod:`repro.structures.guard`) — a debug mode that validates the
    #: static mutability analysis while the monitor runs.
    GUARDED = "guarded"


_SET_FACTORIES: Dict[Backend, Callable[..., Any]] = {
    Backend.PERSISTENT: persistent_set,
    Backend.MUTABLE: mutable.MutableSet,
    Backend.COPYING: copying.CopySet,
    Backend.GUARDED: guard.GuardedSet,
}

_MAP_FACTORIES: Dict[Backend, Callable[..., Any]] = {
    Backend.PERSISTENT: persistent_map,
    Backend.MUTABLE: mutable.MutableMap,
    Backend.COPYING: copying.CopyMap,
    Backend.GUARDED: guard.GuardedMap,
}

_QUEUE_FACTORIES: Dict[Backend, Callable[..., Any]] = {
    Backend.PERSISTENT: persistent_queue,
    Backend.MUTABLE: mutable.MutableQueue,
    Backend.COPYING: copying.CopyQueue,
    Backend.GUARDED: guard.GuardedQueue,
}

_VECTOR_FACTORIES: Dict[Backend, Callable[..., Any]] = {
    Backend.PERSISTENT: persistent_vector,
    Backend.MUTABLE: mutable.MutableVector,
    Backend.COPYING: copying.CopyVector,
    Backend.GUARDED: guard.GuardedVector,
}


def make_set(backend: Backend, items: Iterable[Any] = ()) -> Any:
    """Create a set of the given backend."""
    return _SET_FACTORIES[backend](items)


def make_map(backend: Backend, pairs: Iterable[Tuple[Any, Any]] = ()) -> Any:
    """Create a map of the given backend."""
    return _MAP_FACTORIES[backend](pairs)


def make_queue(backend: Backend, items: Iterable[Any] = ()) -> Any:
    """Create a queue of the given backend."""
    return _QUEUE_FACTORIES[backend](items)


def make_vector(backend: Backend, items: Iterable[Any] = ()) -> Any:
    """Create a vector of the given backend."""
    return _VECTOR_FACTORIES[backend](items)


def empty_set(backend: Backend) -> Any:
    """Empty set; persistent backend reuses a shared singleton."""
    if backend is Backend.PERSISTENT:
        return EMPTY_PERSISTENT_SET
    return make_set(backend)


def empty_map(backend: Backend) -> Any:
    """Empty map; persistent backend reuses a shared singleton."""
    if backend is Backend.PERSISTENT:
        return EMPTY_PERSISTENT_MAP
    return make_map(backend)


def empty_queue(backend: Backend) -> Any:
    """Empty queue; persistent backend reuses a shared singleton."""
    if backend is Backend.PERSISTENT:
        return EMPTY_PERSISTENT_QUEUE
    return make_queue(backend)


def empty_vector(backend: Backend) -> Any:
    """Empty vector; persistent backend reuses a shared singleton."""
    if backend is Backend.PERSISTENT:
        return EMPTY_PERSISTENT_VECTOR
    return make_vector(backend)
