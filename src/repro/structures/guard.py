"""Alias-guard collections: a runtime sanitizer for the static analysis.

The mutability analysis (paper §IV-B/D) promises that when a stream
variable is placed in the mutability set, no alias of a pre-update
value is ever accessed after the in-place update.  These collections
*check that promise at runtime*: they behave like the mutable variants,
but every update returns a **new handle** onto the shared storage and
bumps a generation counter; any later access through an old handle — a
read the static analysis claims cannot happen — raises
:class:`AliasGuardError` immediately, naming both generations.

Compile with ``compile_spec(spec, alias_guard=True)`` to replace every
analysis-chosen mutable backend with its guarded twin.  A spec suite
that runs clean under the guard is runtime evidence that the analysis
classified its streams soundly; a raised guard is a reproducer for an
analysis (or access-metadata) bug, caught at the faulty access instead
of as silent output corruption.

The guard costs one integer comparison per access plus one small object
per update, so it is a debug mode — production monitors use the plain
mutable variants.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Iterator, Tuple

from .interface import (
    EmptyCollectionError,
    MapBase,
    QueueBase,
    SetBase,
    VectorBase,
)


class AliasGuardError(AssertionError):
    """An access through a stale (pre-mutation) aggregate reference.

    This means the static mutability analysis was wrong for the running
    specification — or a custom lifted function declared wrong access
    metadata.  It is an :class:`AssertionError` on purpose: it signals a
    bug in the monitor, never a data fault, and the error-propagation
    machinery deliberately refuses to convert it into a stream error.
    """


class _Cell:
    """Shared generation counter for all handles onto one storage."""

    __slots__ = ("gen",)

    def __init__(self) -> None:
        self.gen = 0


class _GuardedBase:
    """Handle onto shared storage, valid for exactly one generation."""

    # Guarded updates mutate shared storage even though each update hands
    # back a *new* handle object; the observability layer must therefore
    # classify them by this flag, never by result identity.
    IN_PLACE = True
    __slots__ = ("_items", "_cell", "_gen")

    def __init__(self, items: Any, cell: _Cell, gen: int) -> None:
        self._items = items
        self._cell = cell
        self._gen = gen

    def _check(self) -> None:
        if self._gen != self._cell.gen:
            raise AliasGuardError(
                f"stale {type(self).__name__} reference: handle of"
                f" generation {self._gen} accessed after the structure"
                f" advanced to generation {self._cell.gen} — the static"
                " mutability analysis misclassified this stream (or a"
                " lifted function's access metadata is wrong)"
            )

    def _advance(self) -> Tuple[Any, _Cell]:
        """Validate, bump the generation, and hand back the storage."""
        self._check()
        cell = self._cell
        cell.gen += 1
        return self._items, cell

    @classmethod
    def _handle(cls, items: Any, cell: _Cell) -> "_GuardedBase":
        """A fresh handle at the storage's current generation."""
        obj = cls.__new__(cls)
        _GuardedBase.__init__(obj, items, cell, cell.gen)
        return obj


class GuardedSet(_GuardedBase, SetBase):
    """In-place set whose stale handles raise on any access."""

    __slots__ = ()

    def __init__(self, items: Iterable[Any] = ()) -> None:
        _GuardedBase.__init__(self, set(items), _Cell(), 0)

    def add(self, item: Any) -> "GuardedSet":
        storage, cell = self._advance()
        storage.add(item)
        return GuardedSet._handle(storage, cell)

    def remove(self, item: Any) -> "GuardedSet":
        storage, cell = self._advance()
        storage.discard(item)
        return GuardedSet._handle(storage, cell)

    def __contains__(self, item: Any) -> bool:
        self._check()
        return item in self._items

    def __len__(self) -> int:
        self._check()
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        self._check()
        return iter(self._items)


class GuardedMap(_GuardedBase, MapBase):
    """In-place map whose stale handles raise on any access."""

    __slots__ = ()

    def __init__(self, pairs: Iterable[Tuple[Any, Any]] = ()) -> None:
        _GuardedBase.__init__(self, dict(pairs), _Cell(), 0)

    def put(self, key: Any, value: Any) -> "GuardedMap":
        storage, cell = self._advance()
        storage[key] = value
        return GuardedMap._handle(storage, cell)

    def remove(self, key: Any) -> "GuardedMap":
        storage, cell = self._advance()
        storage.pop(key, None)
        return GuardedMap._handle(storage, cell)

    def get(self, key: Any, default: Any = None) -> Any:
        self._check()
        return self._items.get(key, default)

    def __getitem__(self, key: Any) -> Any:
        self._check()
        return self._items[key]

    def __contains__(self, key: Any) -> bool:
        self._check()
        return key in self._items

    def __len__(self) -> int:
        self._check()
        return len(self._items)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        self._check()
        return iter(self._items.items())


class GuardedQueue(_GuardedBase, QueueBase):
    """In-place FIFO queue whose stale handles raise on any access."""

    __slots__ = ()

    def __init__(self, items: Iterable[Any] = ()) -> None:
        _GuardedBase.__init__(self, deque(items), _Cell(), 0)

    def enqueue(self, item: Any) -> "GuardedQueue":
        storage, cell = self._advance()
        storage.append(item)
        return GuardedQueue._handle(storage, cell)

    def dequeue(self) -> "GuardedQueue":
        storage, cell = self._advance()
        if not storage:
            raise EmptyCollectionError("dequeue() on empty queue")
        storage.popleft()
        return GuardedQueue._handle(storage, cell)

    def front(self) -> Any:
        self._check()
        if not self._items:
            raise EmptyCollectionError("front() on empty queue")
        return self._items[0]

    def __len__(self) -> int:
        self._check()
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        self._check()
        return iter(self._items)


class GuardedVector(_GuardedBase, VectorBase):
    """In-place indexed sequence whose stale handles raise on access."""

    __slots__ = ()

    def __init__(self, items: Iterable[Any] = ()) -> None:
        _GuardedBase.__init__(self, list(items), _Cell(), 0)

    def append(self, item: Any) -> "GuardedVector":
        storage, cell = self._advance()
        storage.append(item)
        return GuardedVector._handle(storage, cell)

    def set(self, index: int, item: Any) -> "GuardedVector":
        storage, cell = self._advance()
        if not 0 <= index < len(storage):
            raise EmptyCollectionError(
                f"index {index} out of range [0, {len(storage)})"
            )
        storage[index] = item
        return GuardedVector._handle(storage, cell)

    def get(self, index: int) -> Any:
        self._check()
        if not 0 <= index < len(self._items):
            raise EmptyCollectionError(
                f"index {index} out of range [0, {len(self._items)})"
            )
        return self._items[index]

    def __len__(self) -> int:
        self._check()
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        self._check()
        return iter(self._items)
