"""Bit-partitioned Hash-Array-Mapped-Trie (HAMT).

This is the persistent backbone of the library, mirroring the role the
Scala immutable collections play in the paper's artifact: the persistent
``Set`` and ``Map`` used by the *non-optimized* generated monitors are
"adjusted Hash-Array Mapped Tries" (paper §V-A, citing Steindorfer/Vinju
and Bagwell).  Each update returns a new trie sharing all untouched
sub-trees with the original, so updates are O(log32 n) time and space.

The trie maps keys to values; the persistent set is a map to a sentinel.
Three node kinds exist:

* ``_Bitmap`` — an interior node holding up to 32 children indexed by a
  5-bit hash fragment, compressed via a 32-bit bitmap.
* ``_Collision`` — a bucket of entries whose hashes collide entirely.
* entries themselves are stored inline as ``(key, value)`` pairs.

Only :class:`Hamt` is public here; see :mod:`repro.structures.pset` and
:mod:`repro.structures.pmap` for the user-facing collections.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

_SHIFT = 5
_MASK = (1 << _SHIFT) - 1  # 0b11111
_MAX_SHIFT = 30  # 6 levels of 5 bits cover the 32-bit hash we use


def _hash(key: Any) -> int:
    """Return a 32-bit non-negative hash for *key*."""
    return hash(key) & 0xFFFFFFFF


def _popcount(x: int) -> int:
    return bin(x).count("1")


class _Entry:
    """A single key/value pair stored in the trie."""

    __slots__ = ("key", "value", "khash")

    def __init__(self, key: Any, value: Any, khash: int) -> None:
        self.key = key
        self.value = value
        self.khash = khash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Entry({self.key!r}, {self.value!r})"


class _Collision:
    """A bucket of entries whose 32-bit hashes are identical."""

    __slots__ = ("khash", "entries")

    def __init__(self, khash: int, entries: Tuple[_Entry, ...]) -> None:
        self.khash = khash
        self.entries = entries

    def get(self, key: Any) -> Optional[_Entry]:
        for entry in self.entries:
            if entry.key == key:
                return entry
        return None

    def set(self, key: Any, value: Any) -> "_Collision":
        for index, entry in enumerate(self.entries):
            if entry.key == key:
                new = _Entry(key, value, self.khash)
                return _Collision(
                    self.khash,
                    self.entries[:index] + (new,) + self.entries[index + 1:],
                )
        return _Collision(
            self.khash, self.entries + (_Entry(key, value, self.khash),)
        )

    def remove(self, key: Any):
        for index, entry in enumerate(self.entries):
            if entry.key == key:
                rest = self.entries[:index] + self.entries[index + 1:]
                if len(rest) == 1:
                    return rest[0]
                return _Collision(self.khash, rest)
        return self


class _Bitmap:
    """Interior node: bitmap-compressed array of up to 32 children."""

    __slots__ = ("bitmap", "children")

    def __init__(self, bitmap: int, children: Tuple[Any, ...]) -> None:
        self.bitmap = bitmap
        self.children = children

    def _index(self, bit: int) -> int:
        return _popcount(self.bitmap & (bit - 1))


def _node_get(node: Any, shift: int, khash: int, key: Any) -> Optional[_Entry]:
    while True:
        if isinstance(node, _Entry):
            if node.khash == khash and node.key == key:
                return node
            return None
        if isinstance(node, _Collision):
            if node.khash != khash:
                return None
            return node.get(key)
        # _Bitmap
        bit = 1 << ((khash >> shift) & _MASK)
        if not (node.bitmap & bit):
            return None
        node = node.children[node._index(bit)]
        shift += _SHIFT


def _merge_entries(shift: int, a: Any, b: _Entry) -> Any:
    """Build the smallest subtree containing existing node *a* and entry *b*.

    *a* is an ``_Entry`` or ``_Collision`` whose hash differs from or
    equals *b*'s; both live below the same slot at ``shift``.
    """
    ahash = a.khash
    if ahash == b.khash:
        if isinstance(a, _Collision):
            return a.set(b.key, b.value)
        return _Collision(ahash, (a, b))
    if shift > _MAX_SHIFT:  # pragma: no cover - unreachable with 32-bit hash
        raise AssertionError("hash exhausted without divergence")
    abit = 1 << ((ahash >> shift) & _MASK)
    bbit = 1 << ((b.khash >> shift) & _MASK)
    if abit == bbit:
        child = _merge_entries(shift + _SHIFT, a, b)
        return _Bitmap(abit, (child,))
    if abit < bbit:
        return _Bitmap(abit | bbit, (a, b))
    return _Bitmap(abit | bbit, (b, a))


def _node_set(node: Any, shift: int, entry: _Entry) -> Tuple[Any, bool]:
    """Insert/replace *entry*; return (new node, whether size grew)."""
    if isinstance(node, _Entry):
        if node.khash == entry.khash and node.key == entry.key:
            return entry, False
        return _merge_entries(shift, node, entry), True
    if isinstance(node, _Collision):
        if node.khash == entry.khash:
            new = node.set(entry.key, entry.value)
            return new, len(new.entries) > len(node.entries)
        return _merge_entries(shift, node, entry), True
    # _Bitmap
    bit = 1 << ((entry.khash >> shift) & _MASK)
    index = node._index(bit)
    if node.bitmap & bit:
        child, grew = _node_set(node.children[index], shift + _SHIFT, entry)
        children = (
            node.children[:index] + (child,) + node.children[index + 1:]
        )
        return _Bitmap(node.bitmap, children), grew
    children = node.children[:index] + (entry,) + node.children[index:]
    return _Bitmap(node.bitmap | bit, children), True


def _node_remove(node: Any, shift: int, khash: int, key: Any) -> Tuple[Any, bool]:
    """Remove *key*; return (new node or None if empty, whether removed)."""
    if isinstance(node, _Entry):
        if node.khash == khash and node.key == key:
            return None, True
        return node, False
    if isinstance(node, _Collision):
        if node.khash != khash:
            return node, False
        new = node.remove(key)
        return new, new is not node
    bit = 1 << ((khash >> shift) & _MASK)
    if not (node.bitmap & bit):
        return node, False
    index = node._index(bit)
    child, removed = _node_remove(node.children[index], shift + _SHIFT, khash, key)
    if not removed:
        return node, False
    if child is None:
        bitmap = node.bitmap & ~bit
        if not bitmap:
            return None, True
        children = node.children[:index] + node.children[index + 1:]
        if len(children) == 1 and not isinstance(children[0], _Bitmap):
            # Collapse a single leaf upward to keep the trie canonical.
            return children[0], True
        return _Bitmap(bitmap, children), True
    children = node.children[:index] + (child,) + node.children[index + 1:]
    if len(children) == 1 and not isinstance(child, _Bitmap):
        return child, True
    return _Bitmap(node.bitmap, children), True


def _node_iter(node: Any) -> Iterator[_Entry]:
    if node is None:
        return
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, _Entry):
            yield current
        elif isinstance(current, _Collision):
            for entry in current.entries:
                yield entry
        else:
            stack.extend(reversed(current.children))


class Hamt:
    """An immutable hash map with structural sharing.

    All "modification" methods return a new :class:`Hamt`; the receiver is
    never changed.  Equality is value equality over the key/value pairs.
    """

    __slots__ = ("_root", "_size")

    def __init__(self, _root: Any = None, _size: int = 0) -> None:
        self._root = _root
        self._size = _size

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        if self._root is None:
            return False
        return _node_get(self._root, 0, _hash(key), key) is not None

    def get(self, key: Any, default: Any = None) -> Any:
        if self._root is None:
            return default
        entry = _node_get(self._root, 0, _hash(key), key)
        if entry is None:
            return default
        return entry.value

    def __getitem__(self, key: Any) -> Any:
        if self._root is not None:
            entry = _node_get(self._root, 0, _hash(key), key)
            if entry is not None:
                return entry.value
        raise KeyError(key)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        for entry in _node_iter(self._root):
            yield entry.key, entry.value

    def keys(self) -> Iterator[Any]:
        for entry in _node_iter(self._root):
            yield entry.key

    def values(self) -> Iterator[Any]:
        for entry in _node_iter(self._root):
            yield entry.value

    def __iter__(self) -> Iterator[Any]:
        return self.keys()

    # -- updates (persistent) --------------------------------------------

    def set(self, key: Any, value: Any) -> "Hamt":
        entry = _Entry(key, value, _hash(key))
        if self._root is None:
            return Hamt(entry, 1)
        root, grew = _node_set(self._root, 0, entry)
        return Hamt(root, self._size + 1 if grew else self._size)

    def remove(self, key: Any) -> "Hamt":
        if self._root is None:
            return self
        root, removed = _node_remove(self._root, 0, _hash(key), key)
        if not removed:
            return self
        return Hamt(root, self._size - 1)

    # -- comparisons -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hamt):
            return NotImplemented
        if self._size != other._size:
            return False
        sentinel = object()
        for key, value in self.items():
            if other.get(key, sentinel) != value:
                return False
        return True

    def __hash__(self) -> int:
        return hash(frozenset((k, v) for k, v in self.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in self.items())
        return f"Hamt({{{inner}}})"


EMPTY_HAMT = Hamt()


def hamt_from(pairs) -> Hamt:
    """Build a :class:`Hamt` from an iterable of ``(key, value)`` pairs."""
    result = EMPTY_HAMT
    for key, value in pairs:
        result = result.set(key, value)
    return result
