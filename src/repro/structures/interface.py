"""Common ADT surface shared by persistent and mutable collections.

The paper's generated monitors use *the same* operations regardless of
whether a stream variable was placed in the mutability set; what differs
is only the data-structure implementation behind the variable (§IV, §V).
We mirror that with a uniform protocol: every update method returns "the
updated collection" — a **new** object for the persistent variants, and
``self`` (destructively updated) for the mutable variants.  Generated
code therefore always reads ``y = setAdd(y_last, i)`` and the
mutable/persistent decision is made once, at the construction site
(``set_empty`` etc.), driven by the analysis.

Equality is *value* equality across variants, so differential tests can
compare the outputs of optimized and non-optimized monitors directly.
"""

from __future__ import annotations

from typing import Any, Iterator


class SetBase:
    """Protocol shared by :class:`PersistentSet` and :class:`MutableSet`."""

    #: True on backends whose updates land in shared storage (mutable and
    #: guarded variants).  The observability layer classifies an update as
    #: in-place or a structural copy by this attribute rather than result
    #: identity, because guarded backends return a fresh generation handle
    #: even though the storage was updated destructively.
    IN_PLACE = False

    def add(self, item: Any) -> "SetBase":
        raise NotImplementedError

    def remove(self, item: Any) -> "SetBase":
        raise NotImplementedError

    def __contains__(self, item: Any) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Any]:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetBase):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(item in other for item in self)

    def __hash__(self) -> int:
        return hash(frozenset(self))

    def __repr__(self) -> str:
        inner = ", ".join(repr(item) for item in sorted(self, key=repr))
        return f"{type(self).__name__}({{{inner}}})"


class MapBase:
    """Protocol shared by :class:`PersistentMap` and :class:`MutableMap`."""

    #: See :attr:`SetBase.IN_PLACE`.
    IN_PLACE = False

    def put(self, key: Any, value: Any) -> "MapBase":
        raise NotImplementedError

    def remove(self, key: Any) -> "MapBase":
        raise NotImplementedError

    def get(self, key: Any, default: Any = None) -> Any:
        raise NotImplementedError

    def __contains__(self, key: Any) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def items(self) -> Iterator[Any]:
        raise NotImplementedError

    def keys(self) -> Iterator[Any]:
        for key, _ in self.items():
            yield key

    def values(self) -> Iterator[Any]:
        for _, value in self.items():
            yield value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MapBase):
            return NotImplemented
        if len(self) != len(other):
            return False
        sentinel = object()
        return all(other.get(k, sentinel) == v for k, v in self.items())

    def __hash__(self) -> int:
        return hash(frozenset((k, v) for k, v in self.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in self.items())
        return f"{type(self).__name__}({{{inner}}})"


class QueueBase:
    """Protocol shared by :class:`PersistentQueue` and :class:`MutableQueue`.

    FIFO discipline: ``enqueue`` appends at the back, ``front`` peeks and
    ``dequeue`` removes at the front.
    """

    #: See :attr:`SetBase.IN_PLACE`.
    IN_PLACE = False

    def enqueue(self, item: Any) -> "QueueBase":
        raise NotImplementedError

    def dequeue(self) -> "QueueBase":
        raise NotImplementedError

    def front(self) -> Any:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Any]:
        """Iterate front-to-back."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueueBase):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(a == b for a, b in zip(self, other))

    def __hash__(self) -> int:
        return hash(tuple(self))

    def __repr__(self) -> str:
        inner = ", ".join(repr(item) for item in self)
        return f"{type(self).__name__}([{inner}])"


class VectorBase:
    """Protocol shared by :class:`PersistentVector` and :class:`MutableVector`.

    An indexed sequence supporting append, functional index update and
    positional reads.
    """

    #: See :attr:`SetBase.IN_PLACE`.
    IN_PLACE = False

    def append(self, item: Any) -> "VectorBase":
        raise NotImplementedError

    def set(self, index: int, item: Any) -> "VectorBase":
        raise NotImplementedError

    def get(self, index: int) -> Any:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Any]:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorBase):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(a == b for a, b in zip(self, other))

    def __hash__(self) -> int:
        return hash(tuple(self))

    def __repr__(self) -> str:
        inner = ", ".join(repr(item) for item in self)
        return f"{type(self).__name__}([{inner}])"


class EmptyCollectionError(LookupError):
    """Raised by ``front``/``dequeue``/``get`` on an empty collection."""
