"""Mutable counterparts used for variables in the mutability set.

These wrap Python's built-in ``set``/``dict``/``collections.deque``/
``list`` (which play the role of Scala's ``mutable`` collections in the
paper's optimized monitors) behind the same ADT surface as the
persistent variants: every update method performs the change **in place**
and returns ``self``, so generated monitor code is oblivious to the
mutable/persistent decision.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Iterator, Tuple

from .interface import (
    EmptyCollectionError,
    MapBase,
    QueueBase,
    SetBase,
    VectorBase,
)


class MutableSet(SetBase):
    """Destructively-updated set; ``add``/``remove`` return ``self``."""

    IN_PLACE = True
    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._items = set(items)

    def add(self, item: Any) -> "MutableSet":
        self._items.add(item)
        return self

    def remove(self, item: Any) -> "MutableSet":
        self._items.discard(item)
        return self

    def __contains__(self, item: Any) -> bool:
        return item in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)


class MutableMap(MapBase):
    """Destructively-updated map; ``put``/``remove`` return ``self``."""

    IN_PLACE = True
    __slots__ = ("_items",)

    def __init__(self, pairs: Iterable[Tuple[Any, Any]] = ()) -> None:
        self._items = dict(pairs)

    def put(self, key: Any, value: Any) -> "MutableMap":
        self._items[key] = value
        return self

    def remove(self, key: Any) -> "MutableMap":
        self._items.pop(key, None)
        return self

    def get(self, key: Any, default: Any = None) -> Any:
        return self._items.get(key, default)

    def __getitem__(self, key: Any) -> Any:
        return self._items[key]

    def __contains__(self, key: Any) -> bool:
        return key in self._items

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return iter(self._items.items())


class MutableQueue(QueueBase):
    """Destructively-updated FIFO queue backed by ``collections.deque``."""

    IN_PLACE = True
    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._items = deque(items)

    def enqueue(self, item: Any) -> "MutableQueue":
        self._items.append(item)
        return self

    def dequeue(self) -> "MutableQueue":
        if not self._items:
            raise EmptyCollectionError("dequeue() on empty queue")
        self._items.popleft()
        return self

    def front(self) -> Any:
        if not self._items:
            raise EmptyCollectionError("front() on empty queue")
        return self._items[0]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)


class MutableVector(VectorBase):
    """Destructively-updated indexed sequence backed by ``list``."""

    IN_PLACE = True
    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._items = list(items)

    def append(self, item: Any) -> "MutableVector":
        self._items.append(item)
        return self

    def set(self, index: int, item: Any) -> "MutableVector":
        if not 0 <= index < len(self._items):
            raise EmptyCollectionError(
                f"index {index} out of range [0, {len(self._items)})"
            )
        self._items[index] = item
        return self

    def get(self, index: int) -> Any:
        if not 0 <= index < len(self._items):
            raise EmptyCollectionError(
                f"index {index} out of range [0, {len(self._items)})"
            )
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)
