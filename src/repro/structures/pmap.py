"""Persistent map backed by the HAMT (matches Scala's immutable ``Map``
used by the paper's non-optimized monitors)."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Tuple

from .hamt import EMPTY_HAMT, Hamt
from .interface import MapBase


class PersistentMap(MapBase):
    """Immutable map; every update returns a new map sharing structure."""

    __slots__ = ("_trie",)

    def __init__(self, _trie: Hamt = EMPTY_HAMT) -> None:
        self._trie = _trie

    def put(self, key: Any, value: Any) -> "PersistentMap":
        return PersistentMap(self._trie.set(key, value))

    def remove(self, key: Any) -> "PersistentMap":
        trie = self._trie.remove(key)
        if trie is self._trie:
            return self
        return PersistentMap(trie)

    def get(self, key: Any, default: Any = None) -> Any:
        return self._trie.get(key, default)

    def __getitem__(self, key: Any) -> Any:
        return self._trie[key]

    def __contains__(self, key: Any) -> bool:
        return key in self._trie

    def __len__(self) -> int:
        return len(self._trie)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return self._trie.items()


EMPTY_PERSISTENT_MAP = PersistentMap()


def persistent_map(pairs: Iterable[Tuple[Any, Any]] = ()) -> PersistentMap:
    """Build a :class:`PersistentMap` from ``(key, value)`` pairs."""
    result = EMPTY_PERSISTENT_MAP
    for key, value in pairs:
        result = result.put(key, value)
    return result
