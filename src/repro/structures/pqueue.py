"""Persistent FIFO queue as a banker's queue (two lists).

The paper explains its Queue Window results with exactly this
representation (§V-A): "The persistent queue is realized as two lists,
one is used for appending elements, the other one for removing elements;
if the list for removing elements runs empty the other one is reverted."
Keeping the same structure preserves the paper's observation that
persistent queues lose less against their mutable counterpart than
persistent HAMT sets do.

The two lists are stored as Lisp-style cons chains (nested tuples) so
that ``enqueue`` is O(1) with structural sharing; the occasional reversal
gives amortized O(1) ``dequeue`` under single-threaded (non-persistent)
use and O(n) worst case when old versions are re-used — matching Scala's
``immutable.Queue``.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Tuple

from .interface import EmptyCollectionError, QueueBase

_Cons = Optional[Tuple[Any, Any]]  # (head, tail) or None


def _cons_reverse(cell: _Cons) -> _Cons:
    result: _Cons = None
    while cell is not None:
        head, cell = cell
        result = (head, result)
    return result


def _cons_iter(cell: _Cons) -> Iterator[Any]:
    while cell is not None:
        head, cell = cell
        yield head


class PersistentQueue(QueueBase):
    """Immutable FIFO queue with amortized O(1) operations."""

    __slots__ = ("_front", "_back", "_size")

    def __init__(self, _front: _Cons = None, _back: _Cons = None, _size: int = 0) -> None:
        self._front = _front  # dequeue side, in order
        self._back = _back  # enqueue side, reversed
        self._size = _size

    def enqueue(self, item: Any) -> "PersistentQueue":
        return PersistentQueue(self._front, (item, self._back), self._size + 1)

    def _normalized(self) -> Tuple[_Cons, _Cons]:
        """Return (front, back) with a non-empty front unless size == 0."""
        if self._front is None and self._back is not None:
            return _cons_reverse(self._back), None
        return self._front, self._back

    def front(self) -> Any:
        if self._size == 0:
            raise EmptyCollectionError("front() on empty queue")
        front, _ = self._normalized()
        assert front is not None
        return front[0]

    def dequeue(self) -> "PersistentQueue":
        if self._size == 0:
            raise EmptyCollectionError("dequeue() on empty queue")
        front, back = self._normalized()
        assert front is not None
        return PersistentQueue(front[1], back, self._size - 1)

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Any]:
        yield from _cons_iter(self._front)
        yield from _cons_iter(_cons_reverse(self._back))


EMPTY_PERSISTENT_QUEUE = PersistentQueue()


def persistent_queue(items: Iterable[Any] = ()) -> PersistentQueue:
    """Build a :class:`PersistentQueue` from an iterable (front first)."""
    result = EMPTY_PERSISTENT_QUEUE
    for item in items:
        result = result.enqueue(item)
    return result
