"""Persistent set backed by the HAMT (cf. paper §V-A: Scala's immutable
``Set`` is a Hash-Array-Mapped-Trie; ours is too, so the persistent-side
cost profile matches the paper's baseline)."""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from .hamt import EMPTY_HAMT, Hamt
from .interface import SetBase

_PRESENT = object()


class PersistentSet(SetBase):
    """Immutable set; every update returns a new set sharing structure."""

    __slots__ = ("_trie",)

    def __init__(self, _trie: Hamt = EMPTY_HAMT) -> None:
        self._trie = _trie

    def add(self, item: Any) -> "PersistentSet":
        trie = self._trie.set(item, _PRESENT)
        if trie is self._trie:
            return self
        return PersistentSet(trie)

    def remove(self, item: Any) -> "PersistentSet":
        trie = self._trie.remove(item)
        if trie is self._trie:
            return self
        return PersistentSet(trie)

    def __contains__(self, item: Any) -> bool:
        return item in self._trie

    def __len__(self) -> int:
        return len(self._trie)

    def __iter__(self) -> Iterator[Any]:
        return self._trie.keys()


EMPTY_PERSISTENT_SET = PersistentSet()


def persistent_set(items: Iterable[Any] = ()) -> PersistentSet:
    """Build a :class:`PersistentSet` from an iterable."""
    result = EMPTY_PERSISTENT_SET
    for item in items:
        result = result.add(item)
    return result
