"""Persistent vector: bit-partitioned trie with a tail buffer.

Mirrors Scala/Clojure's immutable ``Vector``: a 32-way branching trie of
fixed-size leaf arrays plus a "tail" of up to 32 pending elements, giving
effectively-constant append, read and functional update with structural
sharing.  Used for list/window workloads where the paper's monitors keep
indexed sequences.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Tuple

from .interface import EmptyCollectionError, VectorBase

_BITS = 5
_WIDTH = 1 << _BITS  # 32
_MASK = _WIDTH - 1


class PersistentVector(VectorBase):
    """Immutable indexed sequence with O(log32 n) update and append."""

    __slots__ = ("_size", "_shift", "_root", "_tail")

    def __init__(
        self,
        _size: int = 0,
        _shift: int = _BITS,
        _root: Tuple[Any, ...] = (),
        _tail: Tuple[Any, ...] = (),
    ) -> None:
        self._size = _size
        self._shift = _shift
        self._root = _root
        self._tail = _tail

    # -- internal helpers --------------------------------------------------

    def _tail_offset(self) -> int:
        if self._size < _WIDTH:
            return 0
        return ((self._size - 1) >> _BITS) << _BITS

    def _leaf_for(self, index: int) -> Tuple[Any, ...]:
        if index >= self._tail_offset():
            return self._tail
        node = self._root
        shift = self._shift
        while shift > 0:
            node = node[(index >> shift) & _MASK]
            shift -= _BITS
        return node

    @staticmethod
    def _new_path(shift: int, node: Tuple[Any, ...]) -> Tuple[Any, ...]:
        while shift > 0:
            node = (node,)
            shift -= _BITS
        return node

    @classmethod
    def _push_tail(
        cls, size: int, shift: int, parent: Tuple[Any, ...], tail: Tuple[Any, ...]
    ) -> Tuple[Any, ...]:
        sub_index = ((size - 1) >> shift) & _MASK
        if shift == _BITS:
            child = tail
        elif sub_index < len(parent):
            child = cls._push_tail(size, shift - _BITS, parent[sub_index], tail)
        else:
            child = cls._new_path(shift - _BITS, tail)
        if sub_index < len(parent):
            return parent[:sub_index] + (child,) + parent[sub_index + 1:]
        return parent + (child,)

    # -- public API --------------------------------------------------------

    def append(self, item: Any) -> "PersistentVector":
        if self._size - self._tail_offset() < _WIDTH:
            return PersistentVector(
                self._size + 1, self._shift, self._root, self._tail + (item,)
            )
        # Tail is full: push it into the trie and start a fresh tail.
        if (self._size >> _BITS) > (1 << self._shift):
            root: Tuple[Any, ...] = (
                self._root,
                self._new_path(self._shift, self._tail),
            )
            shift = self._shift + _BITS
        else:
            root = self._push_tail(self._size, self._shift, self._root, self._tail)
            shift = self._shift
        return PersistentVector(self._size + 1, shift, root, (item,))

    def get(self, index: int) -> Any:
        if not 0 <= index < self._size:
            raise EmptyCollectionError(f"index {index} out of range [0, {self._size})")
        return self._leaf_for(index)[index & _MASK]

    def set(self, index: int, item: Any) -> "PersistentVector":
        if not 0 <= index < self._size:
            raise EmptyCollectionError(f"index {index} out of range [0, {self._size})")
        if index >= self._tail_offset():
            slot = index & _MASK
            tail = self._tail[:slot] + (item,) + self._tail[slot + 1:]
            return PersistentVector(self._size, self._shift, self._root, tail)

        def assoc(shift: int, node: Tuple[Any, ...]) -> Tuple[Any, ...]:
            slot = (index >> shift) & _MASK
            if shift == 0:
                return node[:slot] + (item,) + node[slot + 1:]
            child = assoc(shift - _BITS, node[slot])
            return node[:slot] + (child,) + node[slot + 1:]

        return PersistentVector(
            self._size, self._shift, assoc(self._shift, self._root), self._tail
        )

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Any]:
        def walk(node: Any, shift: int) -> Iterator[Any]:
            if shift == 0:
                yield from node
            else:
                for child in node:
                    yield from walk(child, shift - _BITS)

        if self._tail_offset() > 0:
            yield from walk(self._root, self._shift)
        yield from self._tail


EMPTY_PERSISTENT_VECTOR = PersistentVector()


def persistent_vector(items: Iterable[Any] = ()) -> PersistentVector:
    """Build a :class:`PersistentVector` from an iterable."""
    result = EMPTY_PERSISTENT_VECTOR
    for item in items:
        result = result.append(item)
    return result
