"""Differential-testing and fault-injection utilities (public API).

The library's correctness story is that the optimized monitor, the
persistent baseline, the naive-copy monitor and the reference
interpreter agree on every output event of every specification.  This
module packages that check for downstream users extending the language
(custom lifted functions are exactly the place to get access metadata
wrong — and wrong metadata shows up as divergence between backends).

::

    from repro.testing import assert_equivalent
    assert_equivalent(my_spec, {"x": [(1, 3), (2, 5)]})

It also hosts the chaos harness for the hardened runtime: seeded event
perturbation (drop / duplicate / corrupt / reorder), deterministic
flaky-lift injection, and a mid-run crash-plus-recovery driver — the
executable form of the robustness claims in ``docs/runtime.md``::

    from repro.testing import ChaosPlan, chaos_run
    result = chaos_run(my_spec, events, ChaosPlan(seed=7, corrupt_rate=0.1))
    assert result.report.faults_absorbed() > 0
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from .compiler import (
    CompiledSpec,
    MonitorRunner,
    RunReport,
    build_compiled_spec,
    freeze,
)
from .lang.flatten import flatten
from .lang.spec import FlatSpec, Specification
from .semantics import IngestPolicy, IngestStats, Stream, TolerantReader, interpret
from .structures import Backend

OutputTraces = Dict[str, List[Tuple[int, Any]]]


class EquivalenceError(AssertionError):
    """Raised when two evaluation strategies disagree."""


def reference_outputs(
    spec: Union[Specification, FlatSpec],
    inputs: Mapping[str, Iterable],
    end_time: Optional[int] = None,
) -> OutputTraces:
    """Output traces per the reference interpreter (frozen values)."""
    flat = spec if isinstance(spec, FlatSpec) else flatten(spec)
    streams = {name: Stream(list(trace)) for name, trace in inputs.items()}
    results = interpret(flat, streams, end_time=end_time)
    return {
        name: [(ts, freeze(value)) for ts, value in results[name]]
        for name in flat.outputs
    }


def compiled_outputs(
    spec: Union[Specification, FlatSpec],
    inputs: Mapping[str, Iterable],
    end_time: Optional[int] = None,
    **compile_kwargs: Any,
) -> OutputTraces:
    """Output traces of a compiled monitor (frozen values)."""
    compiled = build_compiled_spec(spec, **compile_kwargs)
    results = compiled.run_traces(inputs, end_time=end_time)
    return {name: stream.events for name, stream in results.items()}


#: The three compilation strategies checked by default.
DEFAULT_STRATEGIES: Dict[str, dict] = {
    "optimized": {"optimize": True},
    "persistent": {"optimize": False},
    "copying": {"backend_override": Backend.COPYING},
}


def assert_equivalent(
    spec: Union[Specification, FlatSpec],
    inputs: Mapping[str, Iterable],
    end_time: Optional[int] = None,
    strategies: Optional[Mapping[str, dict]] = None,
) -> OutputTraces:
    """Check that all strategies match the reference interpreter.

    Returns the agreed output traces; raises :class:`EquivalenceError`
    naming the diverging strategy and output stream otherwise.  Note
    that specifications must be *re-flattened* per strategy internally,
    which this function handles (compiled monitors may share a FlatSpec
    safely; monitors never mutate it).
    """
    flat = spec if isinstance(spec, FlatSpec) else flatten(spec)
    reference = reference_outputs(flat, inputs, end_time)
    for name, kwargs in (strategies or DEFAULT_STRATEGIES).items():
        candidate = compiled_outputs(flat, inputs, end_time, **kwargs)
        if candidate != reference:
            detail = _first_difference(reference, candidate)
            raise EquivalenceError(
                f"strategy {name!r} diverges from the reference"
                f" interpreter: {detail}"
            )
    return reference


# -- fault injection (chaos harness) -----------------------------------------


class ChaosFault(Exception):
    """The exception deterministically injected into flaky lifts."""


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded description of how to perturb an event sequence.

    Rates are independent per-event probabilities; the same seed always
    produces the same perturbation, so every chaos failure reproduces.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    reorder_rate: float = 0.0

    def replay(self) -> str:
        """The ``(seed, plan)`` replay key stamped into failure messages."""
        return f"seed={self.seed} plan={self!r}"


@dataclass
class FaultLog:
    """What :func:`perturb_events` actually did to a sequence."""

    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0
    reordered: int = 0

    def total(self) -> int:
        return self.dropped + self.duplicated + self.corrupted + self.reordered


#: Junk values substituted for corrupted events: wrong types, extreme
#: magnitudes, NaN — each should fail input validation or make a lift
#: raise, never crash a hardened monitor.
CORRUPTION_PALETTE: Tuple[Any, ...] = (
    "☠corrupted☠",
    float("nan"),
    -(2**63),
    (),
    [1, 2],
)


def perturb_events(
    events: Iterable[Tuple[int, str, Any]],
    plan: ChaosPlan,
) -> Tuple[List[Tuple[int, str, Any]], FaultLog]:
    """Apply *plan* to ``(ts, stream, value)`` events, deterministically.

    Reordering swaps adjacent events; only swaps that change the
    timestamp order count as faults (same-timestamp swaps are
    semantically invisible).
    """
    rng = random.Random(plan.seed)
    log = FaultLog()
    out: List[Tuple[int, str, Any]] = []
    for ts, name, value in events:
        if rng.random() < plan.drop_rate:
            log.dropped += 1
            continue
        if rng.random() < plan.corrupt_rate:
            value = rng.choice(CORRUPTION_PALETTE)
            log.corrupted += 1
        out.append((ts, name, value))
        if rng.random() < plan.duplicate_rate:
            out.append((ts, name, value))
            log.duplicated += 1
    for index in range(len(out) - 1):
        if rng.random() < plan.reorder_rate:
            if out[index][0] != out[index + 1][0]:
                log.reordered += 1
            out[index], out[index + 1] = out[index + 1], out[index]
    return out, log


def flaky(impl, failure_rate: float, seed: int = 0, exception=ChaosFault):
    """Wrap a lift implementation to raise deterministically at random.

    Use inside a custom :class:`~repro.lang.builtins.LiftedFunction`'s
    ``make_impl`` to inject lift exceptions into a compiled monitor.
    The injected message carries the ``(seed, failure_rate)`` pair, so
    any failure it surfaces names its own replay.
    """
    rng = random.Random(seed)

    def wrapped(*args):
        if rng.random() < failure_rate:
            raise exception(
                f"injected fault in {getattr(impl, '__name__', 'lift')}"
                f" (replay: seed={seed} failure_rate={failure_rate})"
            )
        return impl(*args)

    return wrapped


class ChaosReplayError(Exception):
    """A chaos-induced failure, stamped with its replay key.

    Raised (chained from the original exception) when a
    :func:`chaos_run` escapes its never-raise contract: the message
    always carries the ``(seed, plan)`` pair, so the exact perturbation
    can be replayed deterministically.
    """


@dataclass
class ChaosResult:
    """Everything a chaos run produced, for assertions."""

    outputs: List[Tuple[str, int, Any]]
    report: RunReport
    faults: FaultLog
    ingest: IngestStats
    #: The plan that produced this run (replay with ``plan.replay()``).
    plan: Optional[ChaosPlan] = None


#: Ingestion policy used by :func:`chaos_run`: swallow every bad-input
#: category, record everything.
CHAOS_INGEST = IngestPolicy(
    on_malformed="skip", on_unknown_stream="skip", on_out_of_order="skip"
)


def chaos_run(
    spec: Union[Specification, FlatSpec, CompiledSpec],
    events: Iterable[Tuple[int, str, Any]],
    plan: Optional[ChaosPlan] = None,
    *,
    error_policy: str = "propagate",
    validate_inputs: bool = True,
    ingest: Optional[IngestPolicy] = None,
    end_time: Optional[int] = None,
    **runner_kwargs: Any,
) -> ChaosResult:
    """Perturb *events* per *plan* and run a hardened monitor over them.

    The acceptance property for the hardened runtime: under the default
    ``propagate`` + skip-everything configuration this never raises, no
    matter the plan, and every absorbed fault is accounted in the
    returned report.
    """
    if isinstance(spec, CompiledSpec):
        compiled = spec
    else:
        compiled = build_compiled_spec(spec, error_policy=error_policy)
    plan = plan if plan is not None else ChaosPlan()
    perturbed, fault_log = perturb_events(events, plan)
    reader = TolerantReader(
        ingest if ingest is not None else CHAOS_INGEST,
        known_streams=compiled.flat.inputs,
    )
    outputs: List[Tuple[str, int, Any]] = []
    runner = MonitorRunner(
        compiled,
        lambda name, ts, value: outputs.append((name, ts, value)),
        validate_inputs=validate_inputs,
        **runner_kwargs,
    )
    try:
        runner.feed(reader.events(perturbed, lambda event: event))
        runner.finish(end_time=end_time)
    except Exception as exc:
        # The hardened runtime's contract is that this never happens
        # under the default configuration; when it does, the failure
        # must name its own reproduction.
        raise ChaosReplayError(
            f"{type(exc).__name__}: {exc} (chaos replay: {plan.replay()})"
        ) from exc
    runner.report.absorb_ingest(reader.stats)
    return ChaosResult(
        outputs=outputs,
        report=runner.report,
        faults=fault_log,
        ingest=reader.stats,
        plan=plan,
    )


def crash_and_resume(
    spec: Union[Specification, FlatSpec, CompiledSpec],
    events: Iterable[Tuple[int, str, Any]],
    *,
    crash_after: int,
    checkpoint_dir: str,
    checkpoint_every: int = 1,
    end_time: Optional[int] = None,
    **compile_kwargs: Any,
) -> Tuple[List[Tuple[str, int, Any]], List[Tuple[str, int, Any]]]:
    """Simulate a mid-run crash and recovery; return both output lists.

    Runs the full trace uninterrupted, then replays it with a simulated
    crash after *crash_after* input events (the runner is simply
    abandoned — no finish, no flush) followed by a resume from the
    newest checkpoint.  Returns ``(expected, recovered)``; the hardened
    runtime's durability guarantee is that they are equal.
    """
    if isinstance(spec, CompiledSpec):
        compiled = spec
    else:
        compiled = build_compiled_spec(spec, **compile_kwargs)
    events = list(events)

    expected: List[Tuple[str, int, Any]] = []
    full = MonitorRunner(
        compiled, lambda name, ts, value: expected.append((name, ts, value))
    )
    full.feed(events)
    full.finish(end_time=end_time)

    pre_crash: List[Tuple[str, int, Any]] = []
    crashed = MonitorRunner(
        compiled,
        lambda name, ts, value: pre_crash.append((name, ts, value)),
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
    )
    crashed.feed(events[:crash_after])
    # ... and the process dies here: no finish(), state abandoned.

    post_crash: List[Tuple[str, int, Any]] = []
    resumed, meta = MonitorRunner.resume(
        compiled,
        checkpoint_dir,
        on_output=lambda name, ts, value: post_crash.append((name, ts, value)),
    )
    kept = meta["outputs_emitted"] if meta else 0
    resumed.feed_from_start(events)
    resumed.finish(end_time=end_time)
    recovered = pre_crash[:kept] + post_crash
    return expected, recovered


# -- worker-pool fault injection ----------------------------------------------
#
# The process-backend MonitorPool is supervised (heartbeats, retries,
# quarantine — see repro.parallel.supervisor); these constructors build
# the deterministic FaultPlans its tests and chaos CI run under.  They
# re-export the plan type from the supervisor so test code needs only
# repro.testing.

from .parallel.supervisor import FaultPlan, PoisonTraceError  # noqa: E402


def kill_worker_after(
    trace_index: int, attempts: int = 1, *, seed: int = 0
) -> FaultPlan:
    """A plan under which the worker running *trace_index* SIGKILLs
    itself mid-trace on its first *attempts* tries (later tries run
    clean) — the supervisor must detect the death, restart a worker,
    and re-dispatch the trace."""
    return FaultPlan(kill={trace_index: attempts}, seed=seed)


def hang_worker(
    trace_index: int,
    attempts: int = 1,
    *,
    hang_seconds: float = 3600.0,
    seed: int = 0,
) -> FaultPlan:
    """A plan under which the worker running *trace_index* freezes
    (heartbeats stop) on its first *attempts* tries — the supervisor
    must detect the missed heartbeats, kill the worker, and re-dispatch
    the trace."""
    return FaultPlan(
        hang={trace_index: attempts}, hang_seconds=hang_seconds, seed=seed
    )


def poison_trace(*trace_indexes: int, seed: int = 0) -> FaultPlan:
    """A plan under which every attempt of the given traces raises
    :class:`~repro.parallel.supervisor.PoisonTraceError` — the
    supervisor must exhaust the retry budget and quarantine (or, under
    fail-fast, abort naming the trace)."""
    return FaultPlan(poison=tuple(sorted(trace_indexes)), seed=seed)


def chaos_pool_run(
    spec: Any,
    traces: Iterable[Iterable[Tuple[int, str, Any]]],
    fault_plan: FaultPlan,
    *,
    compile_options: Any = None,
    jobs: int = 2,
    max_attempts: int = 4,
    heartbeat_interval: float = 0.02,
    heartbeat_timeout: float = 0.3,
    trace_timeout: Optional[float] = None,
    transport: str = "auto",
    **run_kwargs: Any,
):
    """Run the supervised process pool under *fault_plan* with fast
    supervision clocks (tight heartbeats, small backoff) — the chaos
    matrix in one call.  Returns the
    :class:`~repro.parallel.pool.PoolResult`; the acceptance property
    is that its outputs are byte-identical to a fault-free sequential
    run whenever every trace survives its retry budget.
    """
    from .parallel.pool import MonitorPool
    from .parallel.supervisor import RetryPolicy

    pool = MonitorPool(
        spec,
        compile_options=compile_options,
        jobs=jobs,
        backend="process",
        transport=transport,
        retry=RetryPolicy(
            max_attempts=max_attempts, base_delay=0.01, max_delay=0.05
        ),
        heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=heartbeat_timeout,
        trace_timeout=trace_timeout,
        fault_plan=fault_plan,
    )
    return pool.run_many(traces, **run_kwargs)


def _first_difference(reference: OutputTraces, candidate: OutputTraces) -> str:
    for stream in sorted(set(reference) | set(candidate)):
        expected = reference.get(stream, [])
        actual = candidate.get(stream, [])
        if expected == actual:
            continue
        for index in range(max(len(expected), len(actual))):
            want = expected[index] if index < len(expected) else "<no event>"
            got = actual[index] if index < len(actual) else "<no event>"
            if want != got:
                return (
                    f"output {stream!r}, event #{index}:"
                    f" expected {want}, got {got}"
                )
    return "traces differ"  # pragma: no cover - defensive
