"""Differential-testing utilities (public API).

The library's correctness story is that the optimized monitor, the
persistent baseline, the naive-copy monitor and the reference
interpreter agree on every output event of every specification.  This
module packages that check for downstream users extending the language
(custom lifted functions are exactly the place to get access metadata
wrong — and wrong metadata shows up as divergence between backends).

::

    from repro.testing import assert_equivalent
    assert_equivalent(my_spec, {"x": [(1, 3), (2, 5)]})
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from .compiler import compile_spec, freeze
from .lang.flatten import flatten
from .lang.spec import FlatSpec, Specification
from .semantics import Stream, interpret
from .structures import Backend

OutputTraces = Dict[str, List[Tuple[int, Any]]]


class EquivalenceError(AssertionError):
    """Raised when two evaluation strategies disagree."""


def reference_outputs(
    spec: Union[Specification, FlatSpec],
    inputs: Mapping[str, Iterable],
    end_time: Optional[int] = None,
) -> OutputTraces:
    """Output traces per the reference interpreter (frozen values)."""
    flat = spec if isinstance(spec, FlatSpec) else flatten(spec)
    streams = {name: Stream(list(trace)) for name, trace in inputs.items()}
    results = interpret(flat, streams, end_time=end_time)
    return {
        name: [(ts, freeze(value)) for ts, value in results[name]]
        for name in flat.outputs
    }


def compiled_outputs(
    spec: Union[Specification, FlatSpec],
    inputs: Mapping[str, Iterable],
    end_time: Optional[int] = None,
    **compile_kwargs: Any,
) -> OutputTraces:
    """Output traces of a compiled monitor (frozen values)."""
    compiled = compile_spec(spec, **compile_kwargs)
    results = compiled.run(inputs, end_time=end_time)
    return {name: stream.events for name, stream in results.items()}


#: The three compilation strategies checked by default.
DEFAULT_STRATEGIES: Dict[str, dict] = {
    "optimized": {"optimize": True},
    "persistent": {"optimize": False},
    "copying": {"backend_override": Backend.COPYING},
}


def assert_equivalent(
    spec: Union[Specification, FlatSpec],
    inputs: Mapping[str, Iterable],
    end_time: Optional[int] = None,
    strategies: Optional[Mapping[str, dict]] = None,
) -> OutputTraces:
    """Check that all strategies match the reference interpreter.

    Returns the agreed output traces; raises :class:`EquivalenceError`
    naming the diverging strategy and output stream otherwise.  Note
    that specifications must be *re-flattened* per strategy internally,
    which this function handles (compiled monitors may share a FlatSpec
    safely; monitors never mutate it).
    """
    flat = spec if isinstance(spec, FlatSpec) else flatten(spec)
    reference = reference_outputs(flat, inputs, end_time)
    for name, kwargs in (strategies or DEFAULT_STRATEGIES).items():
        candidate = compiled_outputs(flat, inputs, end_time, **kwargs)
        if candidate != reference:
            detail = _first_difference(reference, candidate)
            raise EquivalenceError(
                f"strategy {name!r} diverges from the reference"
                f" interpreter: {detail}"
            )
    return reference


def _first_difference(reference: OutputTraces, candidate: OutputTraces) -> str:
    for stream in sorted(set(reference) | set(candidate)):
        expected = reference.get(stream, [])
        actual = candidate.get(stream, [])
        if expected == actual:
            continue
        for index in range(max(len(expected), len(actual))):
            want = expected[index] if index < len(expected) else "<no event>"
            got = actual[index] if index < len(actual) else "<no event>"
            if want != got:
                return (
                    f"output {stream!r}, event #{index}:"
                    f" expected {want}, got {got}"
                )
    return "traces differ"  # pragma: no cover - defensive
