"""Workload generators: synthetic traces and simulated real-world data."""

from .dblog import db_access_trace, db_time_trace
from .power import power_trace
from .synthetic import SIZES, seen_set_trace, uniform_int_trace, window_trace

__all__ = [
    "SIZES",
    "db_access_trace",
    "db_time_trace",
    "power_trace",
    "seen_set_trace",
    "uniform_int_trace",
    "window_trace",
]
