"""Simulated database operation log (paper §V-B, Nokia / RV-competition).

The paper's first two real-world monitors consume a 14 GB log of
database operations (inserts, deletes, accesses across several
databases) recorded over about a year.  That log is not distributable
here, so we generate a seeded synthetic log with the same *schema* and
the properties the monitors are sensitive to:

* **DBTimeConstraint** reads two insert streams (db2, db3); db3 inserts
  usually follow the matching db2 insert within the 60-second window
  (so most checks pass) with a configurable violation rate.
* **DBAccessConstraint** reads insert/delete/access streams over record
  ids; inserts outpace deletes so the set of live ids *grows over the
  trace* — the property that made the paper's non-optimized monitor
  blow up on the full trace (Table I: > 1 h / swapping).

Timestamps are integer seconds.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

Event = Tuple[int, int]


def db_time_trace(
    length: int,
    seed: int = 0,
    window: int = 60,
    violation_rate: float = 0.05,
    mean_gap: int = 3,
) -> Dict[str, List[Event]]:
    """Interleaved db2/db3 insert streams for DBTimeConstraint.

    Roughly 60 % of events are db2 inserts (building up the map), 40 %
    are db3 inserts of ids that were db2-inserted — mostly within
    *window* seconds, a *violation_rate* fraction too late or never.
    """
    rng = random.Random(seed)
    db2: List[Event] = []
    db3: List[Event] = []
    recent: List[Tuple[int, int]] = []  # (ts, id) of db2 inserts
    next_id = 0
    ts = 1
    for _ in range(length):
        if not recent or rng.random() < 0.6:
            next_id += 1
            db2.append((ts, next_id))
            recent.append((ts, next_id))
            if len(recent) > 500:
                recent.pop(0)
        else:
            if rng.random() < violation_rate:
                # too old (or entirely unknown): violates the constraint
                record = rng.choice(recent)[1] if rng.random() < 0.5 else 10**9
            else:
                fresh = [r for t, r in recent if ts - t <= window]
                record = rng.choice(fresh) if fresh else recent[-1][1]
            db3.append((ts, record))
        ts += rng.randint(1, max(1, 2 * mean_gap - 1))
    return {"db2": db2, "db3": db3}


def db_access_trace(
    length: int,
    seed: int = 0,
    insert_rate: float = 0.5,
    delete_rate: float = 0.1,
    violation_rate: float = 0.02,
) -> Dict[str, List[Event]]:
    """Insert/delete/access streams for DBAccessConstraint.

    ``insert_rate`` > ``delete_rate`` makes the live-id set grow
    linearly with the trace, mirroring the paper's full-trace blow-up;
    accesses mostly hit live ids, a small fraction violates (accessing
    deleted or never-inserted ids).
    """
    rng = random.Random(seed)
    ins: List[Event] = []
    del_: List[Event] = []
    acc: List[Event] = []
    live: List[int] = []
    next_id = 0
    ts = 1
    for _ in range(length):
        roll = rng.random()
        if roll < insert_rate or not live:
            next_id += 1
            live.append(next_id)
            ins.append((ts, next_id))
        elif roll < insert_rate + delete_rate:
            victim = live.pop(rng.randrange(len(live)))
            del_.append((ts, victim))
        else:
            if rng.random() < violation_rate:
                target = next_id + 10**6  # never inserted
            else:
                target = live[rng.randrange(len(live))]
            acc.append((ts, target))
        ts += rng.randint(1, 2)
    return {"ins": ins, "del_": del_, "acc": acc}
