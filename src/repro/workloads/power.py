"""Simulated power-consumption trace (paper §V-B, ReNuBiL).

The paper's PeakDetection and SpectrumCalculation monitors consume one
month of measured building power data, repeated to cover a year.  We
synthesize a seeded trace with the same shape: a daily sinusoidal load
curve plus Gaussian noise plus occasionally injected peaks (the events
PeakDetection exists to find) — and, like the paper, a short measured
period is *repeated* to reach the requested length.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Tuple

Event = Tuple[int, float]


def power_trace(
    length: int,
    seed: int = 0,
    base_load: float = 2500.0,
    daily_swing: float = 1500.0,
    noise: float = 120.0,
    peak_rate: float = 0.01,
    peak_factor: float = 2.5,
    sample_interval: int = 60,
    repeat_period: int = 10_000,
) -> Dict[str, List[Event]]:
    """*length* samples of building power (watts), one per
    *sample_interval* seconds.

    ``repeat_period`` models the paper's "we extended the data to one
    year by repeating the measured data points": after that many
    samples, the same base pattern (but not the injected peaks) repeats.
    """
    rng = random.Random(seed)
    pattern_rng = random.Random(seed + 1)
    pattern = [
        pattern_rng.gauss(0.0, noise) for _ in range(min(length, repeat_period))
    ]
    samples_per_day = max(1, 24 * 3600 // sample_interval)
    events: List[Event] = []
    ts = 1
    for index in range(length):
        phase = 2 * math.pi * (index % samples_per_day) / samples_per_day
        watts = base_load + daily_swing * math.sin(phase)
        watts += pattern[index % len(pattern)]
        if rng.random() < peak_rate:
            watts *= peak_factor
        events.append((ts, round(max(watts, 0.0), 3)))
        ts += sample_interval
    return {"x": events}
