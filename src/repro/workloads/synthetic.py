"""Synthetic workloads (paper §V-A).

"Random input data" for the Seen Set / Map Window / Queue Window
monitors.  The paper controls the data-structure size per variant
(small = 10, medium = 200, large = 10 000 elements); for the Seen Set
the set size is bounded by the input value domain, for the window
monitors by the window length.  All generators are seeded and
deterministic.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

Event = Tuple[int, int]

#: The paper's size variants.  "large" is scaled from the paper's 10 000
#: to keep CPython wall-clock reasonable; see DESIGN.md (substitutions).
SIZES: Dict[str, int] = {"small": 10, "medium": 200, "large": 2000}


def uniform_int_trace(
    length: int, domain: int, seed: int = 0, start_ts: int = 1, step: int = 1
) -> List[Event]:
    """*length* events with uniform values from ``[0, domain)``.

    Timestamps start at *start_ts* (default 1 — the paper's ``last``
    semantics make timestamp 0 a blind spot for sampled streams) and
    advance by *step*.
    """
    rng = random.Random(seed)
    ts = start_ts
    events: List[Event] = []
    for _ in range(length):
        events.append((ts, rng.randrange(domain)))
        ts += step
    return events


def seen_set_trace(length: int, size: int, seed: int = 0) -> Dict[str, List[Event]]:
    """Input for the Seen Set monitor: the toggle semantics bound the
    set size by the value domain, so ``domain = 2 * size`` keeps the
    steady-state set around *size* elements."""
    return {"i": uniform_int_trace(length, max(2 * size, 2), seed)}


def window_trace(length: int, seed: int = 0) -> Dict[str, List[Event]]:
    """Input for Map Window / Queue Window: values are unconstrained
    (the structure size is fixed by the window parameter)."""
    return {"i": uniform_int_trace(length, 1_000_000, seed)}
