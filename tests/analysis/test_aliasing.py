"""Tests for replicating-last detection and aliasing safety (Defs. 5/6)."""

import pytest

from repro.analysis.aliasing import AliasAnalysis
from repro.graph import build_usage_graph
from repro.lang import (
    INT,
    Last,
    Lift,
    Merge,
    Specification,
    UnitExpr,
    Var,
    flatten,
)
from repro.lang.builtins import builtin
from repro.lang.types import SetType
from repro.speclib import (
    fig1_spec,
    fig4_lower_spec,
    fig4_upper_spec,
    seen_set,
)


def analysis_of(spec):
    return AliasAnalysis(build_usage_graph(flatten(spec)))


class TestReplicatingLasts:
    def test_fig1_last_non_replicating(self):
        alias = analysis_of(fig1_spec())
        assert alias.is_replicating_last("yl") is False
        assert alias.replicating_lasts() == []

    def test_fig4_second_last_replicating(self):
        """Both Fig. 4 variants: last(y, i2) may reproduce y's event
        several times between i1 events."""
        for spec in (fig4_upper_spec(), fig4_lower_spec()):
            alias = analysis_of(spec)
            assert alias.is_replicating_last("yl") is False
            assert alias.is_replicating_last("yp") is True
            assert alias.replicating_lasts() == ["yp"]

    def test_non_last_rejected(self):
        alias = analysis_of(fig1_spec())
        with pytest.raises(ValueError, match="not defined by a last"):
            alias.is_replicating_last("y")

    def test_cached(self):
        alias = analysis_of(fig1_spec())
        assert alias.is_replicating_last("yl") == alias.is_replicating_last("yl")


class TestAliasingSafety:
    def test_self_alias(self):
        alias = analysis_of(fig1_spec())
        assert alias.potential_alias("yl", "yl") is True
        assert alias.aliasing_safe("yl", "yl") is False

    def test_fig1_yl_safe_from_m_and_y(self):
        """The Fig. 3 discussion: the event from m always reaches yl one
        timestamp later, so yl is aliasing-safe w.r.t. m and y."""
        alias = analysis_of(fig1_spec())
        assert alias.aliasing_safe("yl", "m") is True
        assert alias.aliasing_safe("yl", "y") is True

    def test_fig1_pass_aliases(self):
        # y may pass unchanged into m: same structure, same timestamp
        alias = analysis_of(fig1_spec())
        assert alias.potential_alias("y", "m") is True

    def test_explicitly_shared_constant_aliases_both_chains(self):
        """A user-shared empty set feeds two accumulator chains; at
        timestamp 0 both lasts reproduce the SAME object, so the sampled
        streams must be reported as potential aliases."""
        spec = Specification(
            inputs={"i": INT, "j": INT},
            definitions={
                "e": Lift(builtin("set_empty"), (UnitExpr(),)),
                "am": Merge(Var("a"), Var("e")),
                "al": Last(Var("am"), Var("i")),
                "a": Lift(builtin("set_add"), (Var("al"), Var("i"))),
                "bm": Merge(Var("b"), Var("e")),
                "bl": Last(Var("bm"), Var("j")),
                "b": Lift(builtin("set_add"), (Var("bl"), Var("j"))),
            },
            type_annotations={"a": SetType(INT), "b": SetType(INT)},
        )
        alias = analysis_of(spec)
        assert alias.potential_alias("al", "bl") is True
        # the written results themselves have no common P/L ancestor
        # (write edges do not propagate events unchanged), so the pair
        # (a, b) is Def-6 safe — rule 1 protects the family via al ≃ bl
        assert alias.aliasing_safe("a", "b") is True

    def test_distinct_constructor_sites_not_shared(self):
        """Two occurrences of Set.empty are distinct construction sites
        (no CSE for aggregate constructors): the chains stay alias-free."""
        spec = Specification(
            inputs={"i": INT, "j": INT},
            definitions={
                "am": Merge(Var("a"), Lift(builtin("set_empty"), (UnitExpr(),))),
                "al": Last(Var("am"), Var("i")),
                "a": Lift(builtin("set_add"), (Var("al"), Var("i"))),
                "bm": Merge(Var("b"), Lift(builtin("set_empty"), (UnitExpr(),))),
                "bl": Last(Var("bm"), Var("j")),
                "b": Lift(builtin("set_add"), (Var("bl"), Var("j"))),
            },
            type_annotations={"a": SetType(INT), "b": SetType(INT)},
        )
        alias = analysis_of(spec)
        assert alias.aliasing_safe("al", "bl") is True

    def test_truly_disjoint_families_safe(self):
        spec = Specification(
            inputs={"sa": SetType(INT), "sb": SetType(INT), "i": INT},
            definitions={
                "ra": Lift(builtin("set_add"), (Var("sa"), Var("i"))),
                "rb": Lift(builtin("set_add"), (Var("sb"), Var("i"))),
            },
        )
        alias = analysis_of(spec)
        assert alias.aliasing_safe("sa", "sb") is True
        assert alias.aliasing_safe("ra", "rb") is True

    def test_fig4_lower_equal_last_counts_alias(self):
        """The core of the Fig. 4 lower rejection: yl and yp sit behind
        paths with EQUAL last counts from their common ancestor y, so
        they may carry the same structure at the same timestamp."""
        alias = analysis_of(fig4_lower_spec())
        assert alias.potential_alias("yl", "yp") is True

    def test_fig4_upper_same_shape_same_aliases(self):
        alias = analysis_of(fig4_upper_spec())
        assert alias.potential_alias("yl", "yp") is True
        # but yl vs y stays safe (one more last on the yl path)
        assert alias.aliasing_safe("yl", "y") is True


class TestFig5Scenario:
    """Figure 5: a two-last chain where triggering implications make the
    variables u (behind 2 lasts) and v (behind 1 last) aliasing-safe —
    and dropping the implication breaks the safety."""

    def _spec(self, u_triggers_subset_of_v: bool):
        # c -L-> u1 -P-> u1m -L-> u  (two lasts)  triggered by t_u
        # c -L-> v                   (one last)   triggered by t_v
        # ev(t_u) ⊆ ev(t_v) is modelled by t_u = t_v + t_v (an ALL-lift
        # over t_v only, so ev'(t_u) = t_v ∧ t_v = t_v).  Two *distinct*
        # empty-set constructors keep the chains from sharing a constant
        # ancestor via CSE.
        from repro.lang.builtins import Access, EventPattern, LiftedFunction
        from repro.lang.types import UNIT
        from repro.structures import empty_set

        def fresh_empty(tag):
            return LiftedFunction(
                f"set_empty_{tag}",
                EventPattern.ALL,
                (Access.NONE,),
                (UNIT,),
                SetType(INT),
                lambda backend: (lambda _u, _b=backend: empty_set(_b)),
            )

        defs = {
            "c": Merge(Var("u_chain"), Lift(fresh_empty("a"), (UnitExpr(),))),
            # Keep c alive through a writer so the graph is realistic.
            "u1": Last(Var("c"), Var("t_u")),
            "u1m": Merge(Var("u1"), Lift(fresh_empty("b"), (UnitExpr(),))),
            "u": Last(Var("u1m"), Var("t_u")),
            "v": Last(Var("c"), Var("t_v")),
            "u_chain": Lift(builtin("set_add"), (Var("u"), Var("t_v"))),
        }
        if u_triggers_subset_of_v:
            defs["t_u"] = Lift(builtin("add"), (Var("t_v"), Var("t_v")))
            inputs = {"t_v": INT}
        else:
            inputs = {"t_v": INT, "t_u": INT}
        return Specification(
            inputs=inputs,
            definitions=defs,
            type_annotations={"c": SetType(INT)},
        )

    def test_safe_with_implication(self):
        alias = analysis_of(self._spec(True))
        assert alias.aliasing_safe("u", "v") is True

    def test_unsafe_without_implication(self):
        alias = analysis_of(self._spec(False))
        assert alias.potential_alias("u", "v") is True


class TestSeenSet:
    def test_seen_l_safe_from_writer(self):
        alias = analysis_of(seen_set())
        assert alias.aliasing_safe("seen_l", "seen") is True
        assert alias.potential_alias("seen_l", "seen_l") is True
