"""Soundness under resource caps: when the analysis cannot decide, it
must degrade toward persistence, never toward unsound mutability."""

from repro.analysis import AliasAnalysis, MutabilityAnalysis, analyze_mutability
from repro.analysis.formula import Atom, conj, disj, implies
from repro.compiler import build_compiled_spec
from repro.graph import build_usage_graph
from repro.lang import (
    INT,
    Last,
    Lift,
    Merge,
    Specification,
    UnitExpr,
    Var,
    check_types,
    flatten,
)
from repro.lang.builtins import builtin


def diamond_spec(layers: int) -> Specification:
    """A pass-edge diamond lattice: the number of P/L paths between the
    two ends doubles per layer (2^layers total), overflowing any path
    cap for large *layers*."""
    definitions = {
        "root": Merge(Var("acc"), Lift(builtin("set_empty"), (UnitExpr(),))),
    }
    previous = ["root", "root"]
    for layer in range(layers):
        a, b = f"l{layer}a", f"l{layer}b"
        definitions[a] = Merge(Var(previous[0]), Var(previous[1]))
        definitions[b] = Merge(Var(previous[1]), Var(previous[0]))
        previous = [a, b]
    definitions["join"] = Merge(Var(previous[0]), Var(previous[1]))
    definitions["jl"] = Last(Var("join"), Var("i"))
    definitions["acc"] = Lift(builtin("set_add"), (Var("jl"), Var("i")))
    definitions["r"] = Lift(builtin("set_contains"), (Var("jl"), Var("i")))
    return Specification({"i": INT}, definitions, ["r"])


class TestPathEnumerationCap:
    def test_small_diamond_analyzed_precisely(self):
        result = analyze_mutability(flatten(diamond_spec(2)))
        assert "acc" in result.mutable  # still decidable precisely

    def test_path_enumeration_overflow_detected(self):
        flat = flatten(diamond_spec(16))  # 2^16 paths >> any cap
        check_types(flat)
        graph = build_usage_graph(flat)
        assert graph.pl_paths("root", "join", limit=100) is None

    def test_huge_diamond_degrades_to_persistent(self):
        flat = flatten(diamond_spec(10))  # 2^10 paths > the 256 cap
        check_types(flat)
        graph = build_usage_graph(flat)
        alias = AliasAnalysis(graph)
        # path enumeration overflows -> conservative potential alias
        assert alias.potential_alias("jl", "join") is True
        result = analyze_mutability(flat)
        # and still produces a CORRECT (all-persistent) compilation
        assert "acc" in result.persistent

    def test_huge_diamond_still_compiles_and_runs(self):
        compiled = build_compiled_spec(diamond_spec(10))
        out = compiled.run_traces({"i": [(1, 4), (2, 4)]})
        assert out["r"] == [(1, False), (2, True)]


class TestFormulaCapConservatism:
    def test_unknown_implication_counts_as_not_implied(self):
        # build formulas whose implicant expansion overflows
        parts = [disj([Atom(f"x{k}"), Atom(f"y{k}")]) for k in range(15)]
        big = conj(parts)
        assert implies(big, Atom("z"), cap=32) is None  # undecided
        # TriggeringAnalysis.implies_events maps None -> False: verified
        # through the public API by the assume-all-alias equivalence:
        from repro.lang import flatten as _flatten
        from repro.speclib import fig1_spec

        flat = _flatten(fig1_spec())
        precise = MutabilityAnalysis(flat).run()
        blunt = MutabilityAnalysis(flat, assume_all_alias=True).run()
        # blunt (everything aliases) is the worst case any cap can reach;
        # it must still compile to a valid (all-persistent) result
        assert blunt.mutable == frozenset()
        assert precise.mutable >= blunt.mutable


class TestLargeSpecStress:
    def test_two_hundred_stream_spec_compiles_and_runs(self):
        definitions = {}
        outputs = []
        previous = "i"
        for k in range(200):
            name = f"t{k}"
            definitions[name] = Merge(Var(previous), Var("i"))
            previous = name
        definitions["fam_m"] = Merge(
            Var("fam"), Lift(builtin("set_empty"), (UnitExpr(),))
        )
        definitions["fam_l"] = Last(Var("fam_m"), Var("i"))
        definitions["fam"] = Lift(
            builtin("set_add"), (Var("fam_l"), Var(previous))
        )
        definitions["chk"] = Lift(
            builtin("set_size"), (Var("fam_l"),)
        )
        outputs = [previous, "chk"]
        spec = Specification({"i": INT}, definitions, outputs)
        compiled = build_compiled_spec(spec)
        assert "fam" in compiled.mutable_streams
        out = compiled.run_traces({"i": [(t, t) for t in range(1, 50)]})
        assert len(out[previous]) == 49
        assert out["chk"].events[-1] == (49, 48)


def _double_last_chain_spec():
    """Two stacked lasts over the same accumulator.

    Proving ``yl1``/``yl2`` replicating needs the implication
    ``ev'(t) -> ev'(m)`` whose prime-implicant expansion exceeds a cap
    of 1, so a tiny cap degrades the whole family to persistent.
    """
    empty = lambda: Lift(builtin("set_empty"), (UnitExpr(),))
    return Specification(
        inputs={"i1": INT, "i2": INT},
        definitions={
            "t": Merge(Var("i1"), Var("i2")),
            "m": Merge(Var("y"), empty()),
            "yl1": Last(Var("m"), Var("t")),
            "ml": Merge(Var("yl1"), empty()),
            "yl2": Last(Var("ml"), Var("t")),
            "y": Lift(builtin("set_add"), (Var("yl2"), Var("t"))),
            "r": Lift(builtin("set_size"), (Var("yl2"),)),
        },
        outputs=["r"],
    )


class TestImplicationCapRegression:
    """A cap overflow must only ever *shrink* the mutable set.

    ``implies()`` returns None when the prime-implicant expansion
    overflows; every caller must treat that as "no implication", which
    demotes streams to persistent — never the reverse.
    """

    def _run(self, cap):
        flat = flatten(_double_last_chain_spec())
        check_types(flat)
        return analyze_mutability(flat, implicant_cap=cap)

    def test_overflow_cannot_flip_stream_into_mutable_set(self):
        precise = self._run(4096)
        for cap in (1, 2, 8):
            capped = self._run(cap)
            assert capped.mutable <= precise.mutable

    def test_default_cap_proves_family_mutable(self):
        precise = self._run(4096)
        assert precise.persistent == frozenset()
        assert precise.implication_unknowns == []

    def test_tiny_cap_demotes_family_with_provenance(self):
        capped = self._run(1)
        # fully persistent — and the precision loss is recorded
        assert capped.mutable == frozenset()
        assert ("yl1", "m", 1) in capped.implication_unknowns
        assert ("yl2", "ml", 1) in capped.implication_unknowns
        # every demoted stream still carries a concrete witness
        for stream in capped.persistent:
            assert capped.witness_for(stream), stream

    def test_capped_analysis_surfaces_mut004_warnings(self):
        from repro.analysis import Severity, mutability_diagnostics

        capped = self._run(1)
        unknowns = [
            d for d in mutability_diagnostics(capped) if d.code == "MUT004"
        ]
        assert len(unknowns) == len(capped.implication_unknowns)
        assert all(d.severity is Severity.WARNING for d in unknowns)
        assert all(d.witness["cap"] == 1 for d in unknowns)

    def test_capped_monitor_still_correct(self):
        # semantics must not depend on the backend choice the cap forced
        flat = flatten(_double_last_chain_spec())
        check_types(flat)
        trace = {"i1": [(t, t) for t in range(1, 20, 2)],
                 "i2": [(t, t) for t in range(2, 20, 2)]}
        reference = build_compiled_spec(flat, optimize=False).run_traces(trace)
        flat2 = flatten(_double_last_chain_spec())
        check_types(flat2)
        optimized = build_compiled_spec(flat2).run_traces(trace)
        assert reference["r"].events == optimized["r"].events


class TestImpliesNoneAudit:
    """Satellite audit: every ``implies()`` call site must survive None."""

    def test_implies_none_only_on_overflow(self):
        from repro.analysis.formula import clear_caches

        clear_caches()
        a, b = Atom("a"), Atom("b")
        big = disj(
            [conj([Atom(f"x{k}"), Atom(f"y{k}")]) for k in range(6)]
        )
        assert implies(a, disj([a, b]), cap=4096) is True
        assert implies(a, b, cap=4096) is False
        assert implies(big, big, cap=1) is True  # identity fast path
        assert implies(big, disj([big, a]), cap=1) is None

    def test_triggering_records_unknowns(self):
        flat = flatten(_double_last_chain_spec())
        check_types(flat)
        from repro.analysis.triggering import TriggeringAnalysis

        trig = TriggeringAnalysis(flat, implicant_cap=1)
        # force both queries the alias analysis would issue
        assert trig.implies_events("yl1", "m") is False  # conservative
        assert trig.implies_events("yl2", "ml") is False
        assert set(trig.implication_unknowns()) == {
            ("yl1", "m", 1),
            ("yl2", "ml", 1),
        }
