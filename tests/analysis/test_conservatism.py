"""Soundness under resource caps: when the analysis cannot decide, it
must degrade toward persistence, never toward unsound mutability."""

from repro.analysis import AliasAnalysis, MutabilityAnalysis, analyze_mutability
from repro.analysis.formula import Atom, conj, disj, implies
from repro.compiler import compile_spec
from repro.graph import build_usage_graph
from repro.lang import (
    INT,
    Last,
    Lift,
    Merge,
    Specification,
    UnitExpr,
    Var,
    check_types,
    flatten,
)
from repro.lang.builtins import builtin


def diamond_spec(layers: int) -> Specification:
    """A pass-edge diamond lattice: the number of P/L paths between the
    two ends doubles per layer (2^layers total), overflowing any path
    cap for large *layers*."""
    definitions = {
        "root": Merge(Var("acc"), Lift(builtin("set_empty"), (UnitExpr(),))),
    }
    previous = ["root", "root"]
    for layer in range(layers):
        a, b = f"l{layer}a", f"l{layer}b"
        definitions[a] = Merge(Var(previous[0]), Var(previous[1]))
        definitions[b] = Merge(Var(previous[1]), Var(previous[0]))
        previous = [a, b]
    definitions["join"] = Merge(Var(previous[0]), Var(previous[1]))
    definitions["jl"] = Last(Var("join"), Var("i"))
    definitions["acc"] = Lift(builtin("set_add"), (Var("jl"), Var("i")))
    definitions["r"] = Lift(builtin("set_contains"), (Var("jl"), Var("i")))
    return Specification({"i": INT}, definitions, ["r"])


class TestPathEnumerationCap:
    def test_small_diamond_analyzed_precisely(self):
        result = analyze_mutability(flatten(diamond_spec(2)))
        assert "acc" in result.mutable  # still decidable precisely

    def test_path_enumeration_overflow_detected(self):
        flat = flatten(diamond_spec(16))  # 2^16 paths >> any cap
        check_types(flat)
        graph = build_usage_graph(flat)
        assert graph.pl_paths("root", "join", limit=100) is None

    def test_huge_diamond_degrades_to_persistent(self):
        flat = flatten(diamond_spec(10))  # 2^10 paths > the 256 cap
        check_types(flat)
        graph = build_usage_graph(flat)
        alias = AliasAnalysis(graph)
        # path enumeration overflows -> conservative potential alias
        assert alias.potential_alias("jl", "join") is True
        result = analyze_mutability(flat)
        # and still produces a CORRECT (all-persistent) compilation
        assert "acc" in result.persistent

    def test_huge_diamond_still_compiles_and_runs(self):
        compiled = compile_spec(diamond_spec(10))
        out = compiled.run({"i": [(1, 4), (2, 4)]})
        assert out["r"] == [(1, False), (2, True)]


class TestFormulaCapConservatism:
    def test_unknown_implication_counts_as_not_implied(self):
        # build formulas whose implicant expansion overflows
        parts = [disj([Atom(f"x{k}"), Atom(f"y{k}")]) for k in range(15)]
        big = conj(parts)
        assert implies(big, Atom("z"), cap=32) is None  # undecided
        # TriggeringAnalysis.implies_events maps None -> False: verified
        # through the public API by the assume-all-alias equivalence:
        from repro.lang import flatten as _flatten
        from repro.speclib import fig1_spec

        flat = _flatten(fig1_spec())
        precise = MutabilityAnalysis(flat).run()
        blunt = MutabilityAnalysis(flat, assume_all_alias=True).run()
        # blunt (everything aliases) is the worst case any cap can reach;
        # it must still compile to a valid (all-persistent) result
        assert blunt.mutable == frozenset()
        assert precise.mutable >= blunt.mutable


class TestLargeSpecStress:
    def test_two_hundred_stream_spec_compiles_and_runs(self):
        definitions = {}
        outputs = []
        previous = "i"
        for k in range(200):
            name = f"t{k}"
            definitions[name] = Merge(Var(previous), Var("i"))
            previous = name
        definitions["fam_m"] = Merge(
            Var("fam"), Lift(builtin("set_empty"), (UnitExpr(),))
        )
        definitions["fam_l"] = Last(Var("fam_m"), Var("i"))
        definitions["fam"] = Lift(
            builtin("set_add"), (Var("fam_l"), Var(previous))
        )
        definitions["chk"] = Lift(
            builtin("set_size"), (Var("fam_l"),)
        )
        outputs = [previous, "chk"]
        spec = Specification({"i": INT}, definitions, outputs)
        compiled = compile_spec(spec)
        assert "fam" in compiled.mutable_streams
        out = compiled.run({"i": [(t, t) for t in range(1, 50)]})
        assert len(out[previous]) == 49
        assert out["chk"].events[-1] == (49, 48)
